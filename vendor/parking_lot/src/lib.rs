//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! Only the API surface this workspace uses is provided: [`RwLock`] and
//! [`Mutex`] with panic-free (`parking_lot`-style, non-poisoning) locking.
//! Swap the path dependency in `[workspace.dependencies]` for the registry
//! crate once network access is available.
//!
//! # Debug-build lock-order assertion
//!
//! On top of the stand-in API, debug builds carry a dynamic lock-order
//! checker — the runtime complement to `eq_lint`'s lexical `lock` rule.
//! Locks constructed with [`Mutex::with_name`] / [`RwLock::with_name`]
//! participate; anonymous locks ([`Mutex::new`] / [`RwLock::new`]) opt
//! out.  Each thread keeps a stack of the named locks it currently holds,
//! and a process-wide table records every (outer, inner) acquisition order
//! ever observed.  Acquiring `B` while holding `A` after some thread has
//! acquired `A` while holding `B` is an order inversion — the classic
//! ABBA deadlock — and **panics immediately**, before blocking on the
//! lock, naming both locks.  The check needs no actual contention to fire:
//! a single-threaded test that exercises both code paths is enough, which
//! is what makes it cheap insurance for the serving tier's lock table.
//!
//! Release builds compile the whole mechanism out: no name field, no
//! thread-local, no bookkeeping — `with_name` degrades to `new`.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
mod order {
    //! The debug-only held-lock stack and observed-order table.

    use std::cell::RefCell;
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};

    thread_local! {
        /// Names of the locks this thread currently holds, in acquisition
        /// order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Every (outer, inner) pair ever observed, process-wide.
    fn observed() -> &'static Mutex<HashSet<(&'static str, &'static str)>> {
        static OBSERVED: OnceLock<Mutex<HashSet<(&'static str, &'static str)>>> = OnceLock::new();
        OBSERVED.get_or_init(|| Mutex::new(HashSet::new()))
    }

    /// RAII record of one held (named) lock; pops the stack on drop.
    pub(crate) struct HeldToken {
        name: Option<&'static str>,
    }

    /// Runs the inversion check and pushes `name` onto this thread's held
    /// stack.  Called *before* blocking on the real lock, so an inversion
    /// panics with a diagnosis instead of deadlocking silently.
    pub(crate) fn acquire(name: Option<&'static str>) -> HeldToken {
        if let Some(inner) = name {
            HELD.with(|held| {
                let held = held.borrow();
                if held.is_empty() {
                    return;
                }
                let mut observed = match observed().lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                for &outer in held.iter() {
                    // Re-acquiring the same name (e.g. two shards of one
                    // sharded structure) is outside this checker's scope.
                    if outer == inner {
                        continue;
                    }
                    assert!(
                        !observed.contains(&(inner, outer)),
                        "lock-order inversion: acquiring `{inner}` while holding `{outer}`, \
                         but the opposite order (`{inner}` then `{outer}`) was already observed \
                         — this is an ABBA deadlock waiting for contention"
                    );
                    observed.insert((outer, inner));
                }
            });
            HELD.with(|held| held.borrow_mut().push(inner));
        }
        HeldToken { name }
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            if let Some(name) = self.name {
                HELD.with(|held| {
                    let mut held = held.borrow_mut();
                    if let Some(pos) = held.iter().rposition(|&n| n == name) {
                        held.remove(pos);
                    }
                });
            }
        }
    }
}

/// RAII guard for [`Mutex::lock`]; releases the lock (and, in debug
/// builds, pops the held-lock stack) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: order::HeldToken,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: order::HeldToken,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: order::HeldToken,
}

macro_rules! guard_deref {
    ($guard:ident, mut) => {
        guard_deref!($guard);
        impl<T: ?Sized> DerefMut for $guard<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                &mut self.inner
            }
        }
    };
    ($guard:ident) => {
        impl<T: ?Sized> Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }
    };
}

guard_deref!(MutexGuard, mut);
guard_deref!(RwLockReadGuard);
guard_deref!(RwLockWriteGuard, mut);

/// A reader–writer lock with `parking_lot`'s non-poisoning API.
///
/// Unlike `std::sync::RwLock`, `read`/`write` return guards directly rather
/// than a `Result`: a panic while holding the lock does not poison it.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    name: Option<&'static str>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new anonymous lock around `value` (not order-checked).
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            name: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock that participates in the debug-build lock-order
    /// assertion under `name`.  Several locks may share a name (e.g. the
    /// shards of one sharded structure); same-name nesting is not checked.
    /// In release builds this is exactly [`RwLock::new`].
    pub fn with_name(value: T, name: &'static str) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        RwLock {
            #[cfg(debug_assertions)]
            name: Some(name),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    ///
    /// # Panics
    /// In debug builds, panics on a lock-order inversion (see the crate
    /// docs).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::acquire(self.name);
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard {
            inner,
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Acquires exclusive write access, blocking until available.
    ///
    /// # Panics
    /// In debug builds, panics on a lock-order inversion (see the crate
    /// docs).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::acquire(self.name);
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard {
            inner,
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
///
/// Unlike `std::sync::Mutex`, `lock` returns the guard directly rather than
/// a `Result`: a panic while holding the lock does not poison it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    name: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new anonymous mutex around `value` (not order-checked).
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            name: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex that participates in the debug-build lock-order
    /// assertion under `name`.  In release builds this is exactly
    /// [`Mutex::new`].
    pub fn with_name(value: T, name: &'static str) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        Mutex {
            #[cfg(debug_assertions)]
            name: Some(name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    /// In debug builds, panics on a lock-order inversion (see the crate
    /// docs).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::acquire(self.name);
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
    }

    #[test]
    fn mutex_roundtrip_and_panic_recovery() {
        let mutex = std::sync::Arc::new(Mutex::new(1));
        *mutex.lock() += 41;
        assert_eq!(*mutex.lock(), 42);
        let m2 = mutex.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the mutex is still usable afterwards.
        assert_eq!(*mutex.lock(), 42);
        let mut owned = Mutex::new(7);
        *owned.get_mut() += 1;
        assert_eq!(owned.into_inner(), 8);
    }

    #[test]
    fn survives_a_panicked_writer() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn concurrent_writers_serialise() {
        let lock = std::sync::Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 8000);
    }

    #[cfg(debug_assertions)]
    mod order_assertion {
        use super::{Mutex, RwLock};

        // Each test uses its own lock names: the observed-order table is
        // process-wide and tests run concurrently.

        #[test]
        fn consistent_order_is_silent() {
            let a = RwLock::with_name(0, "t-consistent-a");
            let b = Mutex::with_name(0, "t-consistent-b");
            for _ in 0..3 {
                let ga = a.write();
                let gb = b.lock();
                drop(gb);
                drop(ga);
            }
        }

        #[test]
        fn inversion_panics_with_both_names() {
            let a = Mutex::with_name(0, "t-invert-a");
            let b = Mutex::with_name(0, "t-invert-b");
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock(); // ABBA
            }));
            let message = match result {
                Err(payload) => match payload.downcast::<String>() {
                    Ok(s) => *s,
                    Err(other) => {
                        *other.downcast::<&str>().map(|s| Box::new(s.to_string())).unwrap()
                    }
                },
                Ok(()) => panic!("the inverted acquisition must panic"),
            };
            assert!(message.contains("lock-order inversion"), "{message}");
            assert!(message.contains("t-invert-a") && message.contains("t-invert-b"), "{message}");
        }

        #[test]
        fn drop_releases_for_the_checker() {
            let a = Mutex::with_name(0, "t-release-a");
            let b = Mutex::with_name(0, "t-release-b");
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // Not an inversion: `a` was released before re-acquiring `b`.
            let gb = b.lock();
            drop(gb);
            let _ga = a.lock();
        }

        #[test]
        fn same_name_nesting_is_exempt() {
            let shard1 = RwLock::with_name(1, "t-shard");
            let shard2 = RwLock::with_name(2, "t-shard");
            let g1 = shard1.read();
            let g2 = shard2.read();
            assert_eq!(*g1 + *g2, 3);
        }

        #[test]
        fn anonymous_locks_are_not_tracked() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            let _ga = a.lock();
            let _gb = b.lock();
            drop(_gb);
            drop(_ga);
            let _gb = b.lock();
            let _ga = a.lock(); // would be ABBA if tracked
        }
    }
}
