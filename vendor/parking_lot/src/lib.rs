//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! Only the API surface this workspace uses is provided: [`RwLock`] and
//! [`Mutex`] with panic-free (`parking_lot`-style, non-poisoning) locking.
//! Swap the path dependency in `[workspace.dependencies]` for the registry
//! crate once network access is available.

#![warn(missing_docs)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock with `parking_lot`'s non-poisoning API.
///
/// Unlike `std::sync::RwLock`, `read`/`write` return guards directly rather
/// than a `Result`: a panic while holding the lock does not poison it.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
///
/// Unlike `std::sync::Mutex`, `lock` returns the guard directly rather than
/// a `Result`: a panic while holding the lock does not poison it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
    }

    #[test]
    fn mutex_roundtrip_and_panic_recovery() {
        let mutex = std::sync::Arc::new(Mutex::new(1));
        *mutex.lock() += 41;
        assert_eq!(*mutex.lock(), 42);
        let m2 = mutex.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the mutex is still usable afterwards.
        assert_eq!(*mutex.lock(), 42);
        let mut owned = Mutex::new(7);
        *owned.get_mut() += 1;
        assert_eq!(owned.into_inner(), 8);
    }

    #[test]
    fn survives_a_panicked_writer() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn concurrent_writers_serialise() {
        let lock = std::sync::Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 8000);
    }
}
