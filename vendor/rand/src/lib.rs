//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the *subset* of the `rand 0.8` API its crates actually
//! use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`].
//!
//! The generator is a SplitMix64 — deterministic, seedable, and of ample
//! quality for synthetic-data generation and tests.  It is **not** the CSPRNG
//! the real `StdRng` is; swap this path dependency for the registry crate in
//! `[workspace.dependencies]` once network access is available.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `f64` uniformly drawn from `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample a `T` from.
///
/// The element type is a trait *parameter* (as in the real `rand`), so the
/// expected output type can drive integer/float literal inference at call
/// sites like `rng.gen_range(0..120)`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let v = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // The cast/multiply can round up to the exclusive bound
                // (notably for f32, whose mantissa is narrower than the
                // drawn f64); clamp to preserve the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014) — the de-facto seeding
            // generator; passes BigCrush at this output size.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed (murmur3 fmix64) so that related seeds —
            // e.g. `base ^ k·id` schemes used to derive per-item streams —
            // do not produce correlated output streams.  The real `rand`
            // gets this for free by expanding the seed through SplitMix64
            // into a ChaCha key.
            let mut z = seed;
            z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            StdRng { state: z ^ (z >> 33) }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(1..=28u8);
            assert!((1..=28).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn float_sampling_covers_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..1000 {
            let v = rng.gen_range(0.0f64..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }
}
