//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates-registry access, so this crate
//! provides the subset of the Criterion 0.5 API the `eq_bench` experiments
//! use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`criterion_group!`] and [`criterion_main!`] — on top of a simple
//! wall-clock measurement loop (warm-up, then timed samples, median-of-means
//! reporting).  There is no statistical regression analysis or HTML report;
//! swap the path dependency in `[workspace.dependencies]` for the registry
//! crate to get the real harness.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// The top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
            default_warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for the timed samples of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the wall-clock budget for the warm-up phase of each benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.render(), &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing it a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.render(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.  (The stand-in reports per-benchmark, so this only
    /// exists for API parity.)
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher =
            Bencher { mode: Mode::WarmUp { budget: self.warm_up_time }, samples: Vec::new() };
        f(&mut bencher);
        bencher.mode = Mode::Measure { budget: self.measurement_time, samples: self.sample_size };
        f(&mut bencher);
        let mean = bencher.mean_sample();
        eprintln!("  {}/{id}  time: [{}]", self.name, format_duration(mean));
    }
}

enum Mode {
    WarmUp { budget: Duration },
    Measure { budget: Duration, samples: usize },
}

impl fmt::Debug for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::WarmUp { .. } => f.write_str("WarmUp"),
            Mode::Measure { .. } => f.write_str("Measure"),
        }
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { budget } => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    std::hint::black_box(routine());
                }
            }
            Mode::Measure { budget, samples } => {
                let per_sample = budget / samples.max(1) as u32;
                // Calibrate a batch size whose total runtime fills one
                // sample window, so each sample is two clock reads around a
                // fixed-size batch — reading the clock inside the timed loop
                // would add its own cost to every nanosecond-scale iteration.
                let mut batch: u32 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= per_sample / 2 || batch >= u32::MAX / 2 {
                        break;
                    }
                    batch *= 2;
                }
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    self.samples.push(start.elapsed() / batch);
                }
            }
        }
    }

    fn mean_sample(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A benchmark identifier, optionally parameterised (`name/param`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.name),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, parameter: None }
    }
}

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function that runs each listed benchmark target in order,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`), mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags such as `--bench`; nothing to parse
            // in the stand-in.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(6));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("scan", 64).render(), "scan/64");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).render(), "7");
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(4));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("sq", 12), &12u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.finish();
    }
}
