//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates-registry access, so this crate
//! implements the subset of the proptest 1.x API the workspace's property
//! suites use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map`, implemented
//!   for numeric ranges, tuples, `Just`, `Vec<impl Strategy>` and
//!   [`collection::vec`],
//! * [`arbitrary::any`] (for `bool`),
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`prop_oneof!`],
//! * [`test_runner::ProptestConfig`] with `with_cases`, and the
//!   `PROPTEST_CASES` environment variable override.
//!
//! Differences from the real crate, by design of a CI-deterministic stub:
//! inputs are drawn from a fixed per-test seed (derived from the test name,
//! overridable via `PROPTEST_SEED`), so runs are reproducible without a
//! `proptest-regressions/` directory, and failing cases are reported but
//! **not shrunk**.  Swap the path dependency in `[workspace.dependencies]`
//! for the registry crate to get shrinking and persistence.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Definitions of property-test functions.
///
/// Each `#[test] fn name(arg in strategy, ..) { body }` item expands to a
/// `#[test]` that draws `cases` inputs from a deterministic per-test RNG and
/// evaluates the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::resolve_cases(config.cases);
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > cases * 16 {
                                panic!(
                                    "proptest `{}`: too many prop_assume! rejections ({rejected})",
                                    stringify!($name),
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {case}/{cases} (seed {}): {msg}",
                                stringify!($name),
                                $crate::test_runner::TestRng::seed_for(stringify!($name)),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` ({left:?} vs {right:?})",
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both {left:?})",
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Discards the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly between several strategies of the same type, mirroring
/// the common (homogeneous) use of `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}
