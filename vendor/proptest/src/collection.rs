//! Collection strategies, mirroring `proptest::collection`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec`](fn@vec): either exact or a half-open range,
/// mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec length range");
        SizeRange { min: range.start, max: range.end }
    }
}

/// The strategy returned by [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.max - self.size.min <= 1 {
            self.size.min
        } else {
            self.size.min + rng.next_index(self.size.max - self.size.min)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s whose elements are drawn from `element` and
/// whose length is drawn from `size` (a `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn exact_size_is_respected() {
        let mut rng = TestRng::for_test("exact_size_is_respected");
        let s = vec(Just(1u8), 5usize);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng).len(), 5);
        }
    }

    #[test]
    fn ranged_size_stays_in_bounds_and_varies() {
        let mut rng = TestRng::for_test("ranged_size_stays_in_bounds_and_varies");
        let s = vec(Just('x'), 1..4);
        let lens: Vec<usize> = (0..200).map(|_| s.generate(&mut rng).len()).collect();
        assert!(lens.iter().all(|l| (1..4).contains(l)));
        assert!(lens.iter().collect::<std::collections::BTreeSet<_>>().len() == 3);
    }
}
