//! Test configuration, case outcomes, and the deterministic RNG.

use rand::prelude::*;

/// Per-suite configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Resolves the effective case count: the `PROPTEST_CASES` environment
/// variable, when set, overrides the in-source configuration (this is how CI
/// bounds runtime).
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}")),
        Err(_) => configured,
    }
}

/// Why a single drawn case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (not a failure).
    Reject(&'static str),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome with `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// The deterministic generator behind every property test.
///
/// The seed is derived from the test name (FNV-1a), XORed with the optional
/// `PROPTEST_SEED` environment variable, so each test draws a distinct but
/// fully reproducible input stream — no `proptest-regressions/` files needed.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn for_test(test_name: &str) -> Self {
        TestRng { inner: StdRng::seed_from_u64(Self::seed_for(test_name)) }
    }

    /// The seed `for_test` would use — reported on failure so a run can be
    /// reproduced exactly.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        match std::env::var("PROPTEST_SEED") {
            Ok(v) => {
                let user: u64 = v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("PROPTEST_SEED must be an integer, got {v:?}"));
                hash ^ user
            }
            Err(_) => hash,
        }
    }

    /// The next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform sample from `range`, delegating to the vendored `rand`.
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }

    /// The next pseudo-random `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// A uniform index in `0..len`.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn next_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty set");
        self.inner.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_test_name_gives_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_test_names_give_different_streams() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("y");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn resolve_cases_defaults_to_configured() {
        // The PROPTEST_CASES override itself is exercised in CI, where the
        // variable is set process-wide; here we only pin the default path.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(resolve_cases(77), 77);
        }
    }
}
