//! The [`Strategy`] trait and the combinators the workspace suites use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here produces plain values (no
/// shrinking trees); `generate` draws one value from `rng`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`, mirroring `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Builds a second strategy from every generated value, mirroring
    /// `prop_flat_map`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, make: f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.make)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value, mirroring `Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.next_index(self.options.len());
        self.options[i].generate(rng)
    }
}

// Range sampling delegates to the vendored `rand` (one implementation of
// the span/rounding subtleties, not two).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// A `Vec` of strategies generates one value per element (proptest's
/// "every element is a strategy" impl, used with `prop_flat_map`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..500 {
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let i = (1usize..=10).generate(&mut rng);
            assert!((1..=10).contains(&i));
            let f = (-180.0f64..180.0).generate(&mut rng);
            assert!((-180.0..180.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("map_and_flat_map_compose");
        let doubled = (1u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let nested = (1usize..4).prop_flat_map(|n| vec![Just(7u8); n]);
        for _ in 0..100 {
            let v = nested.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }

    #[test]
    fn union_picks_every_option() {
        let mut rng = TestRng::for_test("union_picks_every_option");
        let u = Union::new(vec![Just('a'), Just('b'), Just('c')]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::for_test("tuples_generate_elementwise");
        let (a, b, c) = (Just(1u8), 0u32..5, -1.0f64..1.0).generate(&mut rng);
        assert_eq!(a, 1);
        assert!(b < 5);
        assert!((-1.0..1.0).contains(&c));
    }
}
