//! The `any::<T>()` entry point for types with a canonical strategy.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy producing any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = TestRng::for_test("any_bool_produces_both_values");
        let s = any::<bool>();
        let drawn: Vec<bool> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(drawn.iter().any(|&b| b) && drawn.iter().any(|&b| !b));
    }
}
