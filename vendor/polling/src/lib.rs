//! Offline stand-in for a `poll(2)` readiness shim.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the *subset* of a polling API its network tier
//! actually uses: a `#[repr(C)]` [`PollFd`] mirroring `struct pollfd`,
//! the readiness flag constants, and a safe [`poll_fds`] wrapper around
//! the raw syscall binding.  Swap this path dependency for a registry crate
//! (`polling`, `mio`, …) in `[workspace.dependencies]` once network
//! access is available.
//!
//! The wrapper is deliberately thin: it owns no file descriptors and
//! keeps no registration state.  Callers rebuild the interest set per
//! call — the level-triggered `poll(2)` model — which keeps the event
//! loop's state machine entirely in the caller's connection table.

#![warn(missing_docs)]

use std::io;
use std::os::fd::RawFd;

/// Readiness event: data can be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Readiness event: data can be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Result-only event: an error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// Result-only event: the peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Result-only event: the descriptor is not open.
pub const POLLNVAL: i16 = 0x020;

/// One entry of the interest set passed to [`poll_fds`], layout-compatible
/// with the C `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (a negative value is skipped by the
    /// kernel, reporting `revents == 0`).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` ORed together).
    pub events: i16,
    /// Returned events; filled in by the kernel, may include the
    /// result-only flags (`POLLERR`, `POLLHUP`, `POLLNVAL`).
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest flags and cleared
    /// `revents`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// True when the kernel reported any of `flags` for this entry.
    pub fn has(&self, flags: i16) -> bool {
        self.revents & flags != 0
    }

    /// True when the descriptor is readable *or* in a terminal state
    /// (error / hang-up / invalid) — every case where a read attempt
    /// will make progress instead of blocking.
    pub fn readable_or_closed(&self) -> bool {
        self.has(POLLIN | POLLERR | POLLHUP | POLLNVAL)
    }
}

extern "C" {
    /// The raw libc syscall wrapper; `nfds_t` is `c_ulong` on every
    /// platform this workspace targets.
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Blocks until at least one entry of `fds` is ready, `timeout_ms`
/// elapses (`-1` blocks indefinitely, `0` polls), or a signal arrives.
///
/// Returns the number of entries with non-zero `revents`.  `EINTR` is
/// folded into `Ok(0)` — an event loop treats a signal wake-up exactly
/// like a timeout tick — so `Err` is reserved for genuine failures
/// (`EINVAL`, `ENOMEM`).
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `PollFd` is #[repr(C)] and layout-compatible with the C
    // `struct pollfd`; the pointer/length pair comes from a live slice.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn timeout_returns_zero_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn pending_accept_reports_pollin() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLIN));
        assert!(fds[0].readable_or_closed());
    }

    #[test]
    fn connected_socket_reports_pollout_and_then_pollin() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();

        // An idle connected socket with buffer space is writable but not
        // readable.
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLOUT));
        assert!(!fds[0].has(POLLIN));

        served.write_all(b"x").unwrap();
        served.flush().unwrap();
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLIN));
    }

    #[test]
    fn peer_hangup_is_readable_or_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        drop(served);
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        // Linux reports a closed peer as POLLIN (EOF read) and/or POLLHUP.
        assert!(fds[0].readable_or_closed());
    }

    #[test]
    fn negative_fd_entries_are_skipped() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        let n = poll_fds(&mut fds, 0).unwrap();
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }
}
