//! Property-based tests for the geospatial substrate.

use eq_geo::{decode_bbox, encode, haversine_km, BBox, Circle, GeoShape, Point, Polygon};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-180.0f64..180.0, -90.0f64..90.0).prop_map(|(lon, lat)| Point::new(lon, lat).unwrap())
}

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (arb_point(), arb_point()).prop_map(|(a, b)| BBox::from_corners(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn geohash_roundtrip_contains_point(p in arb_point(), prec in 1usize..=10) {
        let h = encode(p, prec).unwrap();
        prop_assert_eq!(h.len(), prec);
        let cell = decode_bbox(&h).unwrap();
        prop_assert!(cell.contains(p));
    }

    #[test]
    fn geohash_prefix_nesting(p in arb_point(), prec in 2usize..=10) {
        let long = encode(p, prec).unwrap();
        let short = encode(p, prec - 1).unwrap();
        prop_assert!(long.starts_with(&short));
        let long_cell = decode_bbox(&long).unwrap();
        let short_cell = decode_bbox(&short).unwrap();
        prop_assert!(short_cell.contains_bbox(&long_cell));
    }

    #[test]
    fn haversine_is_a_metric_sample(a in arb_point(), b in arb_point(), c in arb_point()) {
        let dab = haversine_km(a, b);
        let dba = haversine_km(b, a);
        prop_assert!((dab - dba).abs() < 1e-6);
        prop_assert!(dab >= 0.0);
        // Triangle inequality with a generous numerical slack.
        let dac = haversine_km(a, c);
        let dcb = haversine_km(c, b);
        prop_assert!(dab <= dac + dcb + 1e-6);
    }

    #[test]
    fn bbox_union_contains_both(a in arb_bbox(), b in arb_bbox()) {
        let u = a.union(&b);
        prop_assert!(u.contains_bbox(&a));
        prop_assert!(u.contains_bbox(&b));
    }

    #[test]
    fn bbox_intersection_is_contained_in_both(a in arb_bbox(), b in arb_bbox()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_bbox(&i));
            prop_assert!(b.contains_bbox(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn bbox_contains_center(b in arb_bbox()) {
        prop_assert!(b.contains(b.center()));
    }

    #[test]
    fn circle_contains_implies_bbox_contains(center in arb_point(), r in 1.0f64..500.0, p in arb_point()) {
        let c = Circle::new(center, r).unwrap();
        if c.contains(p) {
            // The bounding region wraps at the antimeridian, so no longitude
            // restriction is needed any more; only the polar regions are
            // skipped (lon degrees shrink towards the poles faster than the
            // centre-latitude approximation accounts for).
            prop_assume!(center.lat.abs() < 80.0);
            prop_assert!(c.bounding_box().expand(0.1).contains(p));
        }
    }

    #[test]
    fn polygon_contains_implies_bbox_contains(pts in proptest::collection::vec(arb_point(), 3..8), q in arb_point()) {
        if let Ok(poly) = Polygon::new(pts) {
            if poly.contains(q) {
                prop_assert!(poly.bounding_box().contains(q));
            }
        }
    }

    #[test]
    fn geoshape_rect_contains_matches_bbox(b in arb_bbox(), p in arb_point()) {
        let shape = GeoShape::Rect(b);
        prop_assert_eq!(shape.contains(p), b.contains(p));
    }
}
