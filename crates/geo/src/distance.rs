//! Great-circle distance.

use crate::Point;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6_371.008_8;

/// Haversine great-circle distance between two WGS-84 points, in kilometres.
///
/// The haversine formulation is numerically stable for the short distances
/// (tens to hundreds of kilometres) that dominate EarthQube queries.
pub fn haversine_km(a: Point, b: Point) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// Approximate degrees of longitude spanned by `km` kilometres at latitude `lat`.
///
/// Used to turn circle radii into bounding boxes for index pre-filtering.
pub fn km_to_lon_degrees(km: f64, lat: f64) -> f64 {
    let cos_lat = lat.to_radians().cos().max(1e-9);
    km / (111.319_49 * cos_lat)
}

/// Approximate degrees of latitude spanned by `km` kilometres.
pub fn km_to_lat_degrees(km: f64) -> f64 {
    km / 110.574
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lon: f64, lat: f64) -> Point {
        Point::new(lon, lat).unwrap()
    }

    #[test]
    fn berlin_to_lisbon_is_about_2313_km() {
        // Berlin (13.405, 52.52), Lisbon (-9.1393, 38.7223)
        let d = haversine_km(p(13.405, 52.52), p(-9.1393, 38.7223));
        assert!((d - 2313.0).abs() < 25.0, "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = p(10.0, 45.0);
        let b = p(24.0, 60.0);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn zero_for_identical_points() {
        let a = p(5.0, 5.0);
        assert_eq!(haversine_km(a, a), 0.0);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let d = haversine_km(p(0.0, 0.0), p(180.0, 0.0));
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
    }

    #[test]
    fn one_degree_of_latitude_is_about_111_km() {
        let d = haversine_km(p(0.0, 0.0), p(0.0, 1.0));
        assert!((d - 111.2).abs() < 1.0, "got {d}");
    }

    #[test]
    fn km_degree_conversions_are_consistent() {
        // 111 km of latitude ~ 1 degree.
        assert!((km_to_lat_degrees(110.574) - 1.0).abs() < 1e-9);
        // At the equator, 111.3 km of longitude ~ 1 degree.
        assert!((km_to_lon_degrees(111.319_49, 0.0) - 1.0).abs() < 1e-9);
        // At 60N, longitude degrees are twice as "cheap".
        assert!((km_to_lon_degrees(111.319_49, 60.0) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn triangle_inequality_holds_for_sample_points() {
        let a = p(5.0, 50.0);
        let b = p(6.0, 51.0);
        let c = p(7.0, 49.5);
        assert!(haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-9);
    }
}
