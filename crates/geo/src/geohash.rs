//! Base-32 geohash encoding.
//!
//! EarthQube stores patch locations in MongoDB and indexes them with
//! MongoDB's built-in 2-D geohashing index (§3.2 of the paper).  The
//! document store substrate in this workspace uses the same technique: each
//! location is encoded to a geohash string, stored in an ordered index, and
//! rectangle queries become a small set of prefix scans.

use crate::{BBox, Point};

/// Standard geohash base-32 alphabet.
const BASE32: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Maximum supported geohash precision (characters).
pub const MAX_PRECISION: usize = 12;

/// Errors returned by the geohash codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeohashError {
    /// Requested precision was zero or above [`MAX_PRECISION`].
    InvalidPrecision(usize),
    /// The string contained a character outside the geohash alphabet.
    InvalidCharacter(char),
    /// The string was empty.
    Empty,
}

impl std::fmt::Display for GeohashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeohashError::InvalidPrecision(p) => write!(f, "invalid geohash precision {p}"),
            GeohashError::InvalidCharacter(c) => write!(f, "invalid geohash character {c:?}"),
            GeohashError::Empty => write!(f, "empty geohash"),
        }
    }
}

impl std::error::Error for GeohashError {}

fn char_index(c: char) -> Result<u8, GeohashError> {
    let lower = c.to_ascii_lowercase();
    BASE32
        .iter()
        .position(|&b| b as char == lower)
        .map(|i| i as u8)
        .ok_or(GeohashError::InvalidCharacter(c))
}

/// Encodes a point into a geohash string of the given precision (1..=12).
pub fn encode(p: Point, precision: usize) -> Result<String, GeohashError> {
    if precision == 0 || precision > MAX_PRECISION {
        return Err(GeohashError::InvalidPrecision(precision));
    }
    let mut lon_range = (-180.0f64, 180.0f64);
    let mut lat_range = (-90.0f64, 90.0f64);
    let mut out = String::with_capacity(precision);
    let mut bit = 0u8;
    let mut ch = 0u8;
    let mut even = true; // even bits encode longitude
    while out.len() < precision {
        if even {
            let mid = (lon_range.0 + lon_range.1) / 2.0;
            if p.lon >= mid {
                ch = (ch << 1) | 1;
                lon_range.0 = mid;
            } else {
                ch <<= 1;
                lon_range.1 = mid;
            }
        } else {
            let mid = (lat_range.0 + lat_range.1) / 2.0;
            if p.lat >= mid {
                ch = (ch << 1) | 1;
                lat_range.0 = mid;
            } else {
                ch <<= 1;
                lat_range.1 = mid;
            }
        }
        even = !even;
        bit += 1;
        if bit == 5 {
            out.push(BASE32[ch as usize] as char);
            bit = 0;
            ch = 0;
        }
    }
    Ok(out)
}

/// Decodes a geohash into the bounding box of its cell.
pub fn decode_bbox(hash: &str) -> Result<BBox, GeohashError> {
    if hash.is_empty() {
        return Err(GeohashError::Empty);
    }
    let mut lon_range = (-180.0f64, 180.0f64);
    let mut lat_range = (-90.0f64, 90.0f64);
    let mut even = true;
    for c in hash.chars() {
        let idx = char_index(c)?;
        for shift in (0..5).rev() {
            let bit = (idx >> shift) & 1;
            if even {
                let mid = (lon_range.0 + lon_range.1) / 2.0;
                if bit == 1 {
                    lon_range.0 = mid;
                } else {
                    lon_range.1 = mid;
                }
            } else {
                let mid = (lat_range.0 + lat_range.1) / 2.0;
                if bit == 1 {
                    lat_range.0 = mid;
                } else {
                    lat_range.1 = mid;
                }
            }
            even = !even;
        }
    }
    Ok(BBox {
        min_lon: lon_range.0,
        min_lat: lat_range.0,
        max_lon: lon_range.1,
        max_lat: lat_range.1,
    })
}

/// Decodes a geohash into the centre point of its cell.
pub fn decode(hash: &str) -> Result<Point, GeohashError> {
    Ok(decode_bbox(hash)?.center())
}

/// Returns the eight neighbouring geohash cells (and excludes cells that
/// would fall outside the valid coordinate range, e.g. north of the pole).
pub fn neighbors(hash: &str) -> Result<Vec<String>, GeohashError> {
    let bbox = decode_bbox(hash)?;
    let precision = hash.len();
    let w = bbox.width();
    let h = bbox.height();
    let c = bbox.center();
    let mut out = Vec::with_capacity(8);
    for dy in [-1.0, 0.0, 1.0] {
        for dx in [-1.0, 0.0, 1.0] {
            if dx == 0.0 && dy == 0.0 {
                continue;
            }
            let lon = c.lon + dx * w;
            let lat = c.lat + dy * h;
            if !(-180.0..=180.0).contains(&lon) || !(-90.0..=90.0).contains(&lat) {
                continue;
            }
            let n = encode(Point::new_unchecked(lon, lat), precision)?;
            if !out.contains(&n) && n != hash {
                out.push(n);
            }
        }
    }
    Ok(out)
}

/// Computes a small set of geohash prefixes of the given precision that
/// together cover `bbox`.
///
/// The result is clamped to at most `max_cells` prefixes; if the box is too
/// large for the precision, the precision is reduced until the cover fits.
/// This mirrors how a geohash-backed 2-D index turns a rectangle query into
/// a handful of ordered prefix scans.
pub fn cover_bbox(
    bbox: &BBox,
    precision: usize,
    max_cells: usize,
) -> Result<Vec<String>, GeohashError> {
    if precision == 0 || precision > MAX_PRECISION {
        return Err(GeohashError::InvalidPrecision(precision));
    }
    let max_cells = max_cells.max(1);
    let mut prec = precision;
    loop {
        let cell = decode_bbox(&encode(bbox.center(), prec)?)?;
        let cols = (bbox.width() / cell.width()).ceil() as usize + 2;
        let rows = (bbox.height() / cell.height()).ceil() as usize + 2;
        if cols.saturating_mul(rows) > max_cells && prec > 1 {
            prec -= 1;
            continue;
        }
        let mut cells = Vec::new();
        let mut lat = bbox.min_lat;
        // Step through the box one cell at a time, starting half a cell in so
        // that we sample cell centres.
        while lat <= bbox.max_lat + cell.height() {
            let mut lon = bbox.min_lon;
            while lon <= bbox.max_lon + cell.width() {
                let p = Point::new_unchecked(lon.clamp(-180.0, 180.0), lat.clamp(-90.0, 90.0));
                let h = encode(p, prec)?;
                if !cells.contains(&h) {
                    cells.push(h);
                }
                lon += cell.width();
            }
            lat += cell.height();
        }
        cells.sort();
        return Ok(cells);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lon: f64, lat: f64) -> Point {
        Point::new(lon, lat).unwrap()
    }

    #[test]
    fn known_geohash_values() {
        // Reference values from the original geohash.org implementation.
        assert_eq!(encode(p(-5.6, 42.6), 5).unwrap(), "ezs42");
        assert_eq!(encode(p(13.361389, 38.115556), 7).unwrap(), "sqc8b49");
        assert_eq!(encode(p(-0.08, 51.51), 4).unwrap(), "gcpv");
    }

    #[test]
    fn encode_rejects_bad_precision() {
        assert!(encode(p(0.0, 0.0), 0).is_err());
        assert!(encode(p(0.0, 0.0), 13).is_err());
        assert!(encode(p(0.0, 0.0), 12).is_ok());
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(decode(""), Err(GeohashError::Empty));
        assert!(matches!(decode("ez!42"), Err(GeohashError::InvalidCharacter('!'))));
        // 'a', 'i', 'l', 'o' are not in the geohash alphabet.
        assert!(decode("a").is_err());
        assert!(decode("i").is_err());
    }

    #[test]
    fn decode_is_case_insensitive() {
        assert_eq!(decode_bbox("EZS42").unwrap(), decode_bbox("ezs42").unwrap());
    }

    #[test]
    fn roundtrip_point_stays_in_cell() {
        for &(lon, lat) in &[
            (13.4, 52.5),
            (-9.14, 38.72),
            (24.94, 60.17),
            (0.0, 0.0),
            (-179.9, -89.9),
            (179.9, 89.9),
        ] {
            let point = p(lon, lat);
            for prec in 1..=9 {
                let h = encode(point, prec).unwrap();
                let bb = decode_bbox(&h).unwrap();
                assert!(bb.contains(point), "point {point} not in cell {h} ({bb})");
            }
        }
    }

    #[test]
    fn longer_prefix_means_smaller_cell_and_prefix_nesting() {
        let point = p(13.4, 52.5);
        let h8 = encode(point, 8).unwrap();
        let h4 = encode(point, 4).unwrap();
        assert!(h8.starts_with(&h4));
        let b8 = decode_bbox(&h8).unwrap();
        let b4 = decode_bbox(&h4).unwrap();
        assert!(b4.contains_bbox(&b8));
        assert!(b4.area_deg2() > b8.area_deg2());
    }

    #[test]
    fn neighbors_are_adjacent_and_distinct() {
        let h = encode(p(13.4, 52.5), 5).unwrap();
        let ns = neighbors(&h).unwrap();
        assert_eq!(ns.len(), 8);
        let home = decode_bbox(&h).unwrap();
        for n in &ns {
            assert_ne!(n, &h);
            let nb = decode_bbox(n).unwrap();
            // Adjacent cells must touch or overlap the slightly expanded home cell.
            let margin = home.width().max(home.height());
            assert!(home.expand(margin).intersects(&nb));
        }
    }

    #[test]
    fn neighbors_at_pole_are_fewer() {
        let h = encode(p(0.0, 89.99), 3).unwrap();
        let ns = neighbors(&h).unwrap();
        assert!(ns.len() < 8, "expected clipped neighbour set at the pole, got {}", ns.len());
    }

    #[test]
    fn cover_bbox_covers_sample_points() {
        let bbox = BBox::new(12.0, 51.0, 14.0, 53.0).unwrap();
        let cover = cover_bbox(&bbox, 4, 256).unwrap();
        assert!(!cover.is_empty());
        // Every sampled point inside the bbox must be covered by some prefix.
        for i in 0..10 {
            for j in 0..10 {
                let point =
                    p(12.0 + 2.0 * (i as f64 + 0.5) / 10.0, 51.0 + 2.0 * (j as f64 + 0.5) / 10.0);
                let h = encode(point, 4).unwrap();
                assert!(
                    cover.iter().any(|c| h.starts_with(c.as_str())),
                    "point {point} (hash {h}) not covered by {cover:?}"
                );
            }
        }
    }

    #[test]
    fn cover_bbox_respects_max_cells_by_coarsening() {
        let bbox = BBox::new(-10.0, 35.0, 30.0, 65.0).unwrap(); // most of Europe
        let cover = cover_bbox(&bbox, 6, 64).unwrap();
        assert!(cover.len() <= 64, "cover has {} cells", cover.len());
    }

    #[test]
    fn cover_bbox_rejects_bad_precision() {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(cover_bbox(&bbox, 0, 10).is_err());
        assert!(cover_bbox(&bbox, 99, 10).is_err());
    }
}
