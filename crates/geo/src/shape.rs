//! Query shapes supported by the EarthQube query panel: rectangle, circle
//! and free-form polygon (§3.1 of the paper).

use crate::bbox::SplitBBox;
use crate::{distance, BBox, GeoError, Point};

/// A circle defined by a centre and a radius in kilometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Circle centre.
    pub center: Point,
    /// Radius in kilometres; strictly positive.
    pub radius_km: f64,
}

impl Circle {
    /// Creates a circle, validating the radius.
    pub fn new(center: Point, radius_km: f64) -> Result<Self, GeoError> {
        if !(radius_km.is_finite() && radius_km > 0.0) {
            return Err(GeoError::InvalidRadius(radius_km));
        }
        Ok(Self { center, radius_km })
    }

    /// Whether the point lies within the circle (great-circle distance).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        distance::haversine_km(self.center, p) <= self.radius_km
    }

    /// A bounding region that encloses the circle; used for index
    /// pre-filtering.  A circle near the antimeridian wraps into two boxes
    /// (see [`SplitBBox`]) so the far side of the date line is not lost.
    pub fn bounding_box(&self) -> SplitBBox {
        BBox::square_around(self.center, self.radius_km * 2.0)
    }
}

/// A simple (non self-intersecting) polygon in WGS-84 degree space.
///
/// The vertex ring does not need to be explicitly closed: the last vertex is
/// implicitly connected back to the first.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, GeoError> {
        // Drop an explicit closing vertex if present.
        if vertices.len() >= 2 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 3 {
            return Err(GeoError::DegeneratePolygon);
        }
        Ok(Self { vertices })
    }

    /// The polygon's vertices (without a duplicated closing vertex).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Ray-casting point-in-polygon test (even-odd rule).
    ///
    /// Points exactly on an edge may be classified either way; this matches
    /// the behaviour of typical GIS engines for degree-space polygons and is
    /// irrelevant at the 10 m resolution of the archive.
    pub fn contains(&self, p: Point) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            let intersects = ((vi.lat > p.lat) != (vj.lat > p.lat))
                && (p.lon < (vj.lon - vi.lon) * (p.lat - vi.lat) / (vj.lat - vi.lat) + vi.lon);
            if intersects {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// The axis-aligned bounding box of the polygon.
    pub fn bounding_box(&self) -> BBox {
        let mut min_lon = f64::INFINITY;
        let mut min_lat = f64::INFINITY;
        let mut max_lon = f64::NEG_INFINITY;
        let mut max_lat = f64::NEG_INFINITY;
        for v in &self.vertices {
            min_lon = min_lon.min(v.lon);
            min_lat = min_lat.min(v.lat);
            max_lon = max_lon.max(v.lon);
            max_lat = max_lat.max(v.lat);
        }
        BBox { min_lon, min_lat, max_lon, max_lat }
    }

    /// Signed area in square degrees (positive for counter-clockwise rings).
    pub fn signed_area_deg2(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.lon * b.lat - b.lon * a.lat;
        }
        acc / 2.0
    }
}

/// The union of the query shapes a user can draw or type in the EarthQube
/// query panel: rectangle, circle, or arbitrary polygon.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoShape {
    /// An axis-aligned rectangle.
    Rect(BBox),
    /// A circle with a radius in kilometres.
    Circle(Circle),
    /// A free-form polygon.
    Polygon(Polygon),
}

impl GeoShape {
    /// Whether the shape contains the given point.
    pub fn contains(&self, p: Point) -> bool {
        match self {
            GeoShape::Rect(b) => b.contains(p),
            GeoShape::Circle(c) => c.contains(p),
            GeoShape::Polygon(poly) => poly.contains(p),
        }
    }

    /// A bounding region enclosing the shape, used by indexes for
    /// pre-filtering.  Rectangles and polygons are built from in-range
    /// coordinates and never wrap; a circle near the antimeridian yields
    /// two boxes (see [`SplitBBox`]).
    pub fn bounding_box(&self) -> SplitBBox {
        match self {
            GeoShape::Rect(b) => SplitBBox::One(*b),
            GeoShape::Circle(c) => c.bounding_box(),
            GeoShape::Polygon(poly) => SplitBBox::One(poly.bounding_box()),
        }
    }

    /// Whether the shape (conservatively, via its exact geometry for rects
    /// and via bounding boxes for circles/polygons) intersects the given box.
    pub fn intersects_bbox(&self, bbox: &BBox) -> bool {
        match self {
            GeoShape::Rect(b) => b.intersects(bbox),
            _ => {
                let cover = self.bounding_box();
                if !cover.intersects(bbox) {
                    return false;
                }
                // Exact-ish test: any corner or the centre of the candidate
                // box inside the shape, or the centre of a covering piece
                // inside the candidate box.
                let corners = [
                    Point::new_unchecked(bbox.min_lon, bbox.min_lat),
                    Point::new_unchecked(bbox.min_lon, bbox.max_lat),
                    Point::new_unchecked(bbox.max_lon, bbox.min_lat),
                    Point::new_unchecked(bbox.max_lon, bbox.max_lat),
                    bbox.center(),
                ];
                corners.iter().any(|c| self.contains(*c))
                    || cover.boxes().iter().any(|piece| bbox.contains(piece.center()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lon: f64, lat: f64) -> Point {
        Point::new(lon, lat).unwrap()
    }

    #[test]
    fn circle_rejects_bad_radius() {
        assert!(Circle::new(p(0.0, 0.0), 0.0).is_err());
        assert!(Circle::new(p(0.0, 0.0), -5.0).is_err());
        assert!(Circle::new(p(0.0, 0.0), f64::NAN).is_err());
        assert!(Circle::new(p(0.0, 0.0), 10.0).is_ok());
    }

    #[test]
    fn circle_contains_center_and_excludes_far_points() {
        let c = Circle::new(p(13.0, 52.0), 50.0).unwrap();
        assert!(c.contains(p(13.0, 52.0)));
        assert!(c.contains(p(13.2, 52.1)));
        assert!(!c.contains(p(20.0, 60.0)));
    }

    #[test]
    fn circle_bounding_box_encloses_circle_boundary() {
        let c = Circle::new(p(13.0, 52.0), 10.0).unwrap();
        let bb = c.bounding_box();
        // Points 10 km due north/south/east/west must be inside the box.
        let north = p(13.0, 52.0 + distance::km_to_lat_degrees(10.0) * 0.999);
        let east = p(13.0 + distance::km_to_lon_degrees(10.0, 52.0) * 0.999, 52.0);
        assert!(bb.contains(north));
        assert!(bb.contains(east));
    }

    #[test]
    fn circle_on_the_antimeridian_covers_both_sides() {
        // A 50 km circle centred right on the date line: its bounding
        // region must include points on both sides of ±180°.
        let c = Circle::new(p(179.99, 10.0), 50.0).unwrap();
        let cover = c.bounding_box();
        assert!(cover.is_split());
        assert!(cover.contains(p(179.8, 10.0)));
        assert!(cover.contains(p(-179.8, 10.0)), "eastern side of the date line lost");
        let shape = GeoShape::Circle(c);
        assert!(shape.intersects_bbox(&BBox::new(-180.0, 9.0, -179.0, 11.0).unwrap()));
        assert!(shape.intersects_bbox(&BBox::new(179.0, 9.0, 180.0, 11.0).unwrap()));
        assert!(!shape.intersects_bbox(&BBox::new(0.0, 9.0, 1.0, 11.0).unwrap()));
    }

    #[test]
    fn polygon_needs_three_vertices() {
        assert!(Polygon::new(vec![p(0.0, 0.0), p(1.0, 1.0)]).is_err());
        assert!(Polygon::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)]).is_ok());
    }

    #[test]
    fn polygon_drops_explicit_closing_vertex() {
        let poly =
            Polygon::new(vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0), p(0.0, 0.0)])
                .unwrap();
        assert_eq!(poly.vertices().len(), 4);
    }

    #[test]
    fn square_polygon_point_in_polygon() {
        let poly = Polygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        assert!(poly.contains(p(2.0, 2.0)));
        assert!(!poly.contains(p(5.0, 2.0)));
        assert!(!poly.contains(p(2.0, -1.0)));
    }

    #[test]
    fn concave_polygon_point_in_polygon() {
        // An L-shaped polygon.
        let poly = Polygon::new(vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 2.0),
            p(2.0, 2.0),
            p(2.0, 4.0),
            p(0.0, 4.0),
        ])
        .unwrap();
        assert!(poly.contains(p(1.0, 3.0)));
        assert!(poly.contains(p(3.0, 1.0)));
        assert!(!poly.contains(p(3.0, 3.0))); // inside the notch
    }

    #[test]
    fn polygon_bbox_and_area() {
        let poly = Polygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        let bb = poly.bounding_box();
        assert_eq!((bb.min_lon, bb.min_lat, bb.max_lon, bb.max_lat), (0.0, 0.0, 4.0, 4.0));
        assert!((poly.signed_area_deg2() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn geoshape_dispatches_contains() {
        let rect = GeoShape::Rect(BBox::new(0.0, 0.0, 2.0, 2.0).unwrap());
        let circ = GeoShape::Circle(Circle::new(p(10.0, 10.0), 100.0).unwrap());
        let poly = GeoShape::Polygon(
            Polygon::new(vec![p(20.0, 20.0), p(22.0, 20.0), p(21.0, 22.0)]).unwrap(),
        );
        assert!(rect.contains(p(1.0, 1.0)));
        assert!(!rect.contains(p(3.0, 1.0)));
        assert!(circ.contains(p(10.1, 10.1)));
        assert!(poly.contains(p(21.0, 20.5)));
        assert!(!poly.contains(p(25.0, 25.0)));
    }

    #[test]
    fn geoshape_intersects_bbox() {
        let rect = GeoShape::Rect(BBox::new(0.0, 0.0, 2.0, 2.0).unwrap());
        let hit = BBox::new(1.0, 1.0, 3.0, 3.0).unwrap();
        let miss = BBox::new(5.0, 5.0, 6.0, 6.0).unwrap();
        assert!(rect.intersects_bbox(&hit));
        assert!(!rect.intersects_bbox(&miss));

        let circ = GeoShape::Circle(Circle::new(p(10.0, 10.0), 50.0).unwrap());
        let near = BBox::new(9.9, 9.9, 10.1, 10.1).unwrap();
        let far = BBox::new(40.0, 40.0, 41.0, 41.0).unwrap();
        assert!(circ.intersects_bbox(&near));
        assert!(!circ.intersects_bbox(&far));
    }
}
