//! WGS-84 points.

use crate::GeoError;

/// A WGS-84 coordinate: longitude (x) and latitude (y), in degrees.
///
/// The type is `Copy` and very small on purpose: millions of patch centroids
/// are manipulated when ingesting an archive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
}

impl Point {
    /// Creates a point, validating the coordinate ranges.
    pub fn new(lon: f64, lat: f64) -> Result<Self, GeoError> {
        if !(-180.0..=180.0).contains(&lon) || !lon.is_finite() {
            return Err(GeoError::OutOfRange { what: format!("lon={lon}") });
        }
        if !(-90.0..=90.0).contains(&lat) || !lat.is_finite() {
            return Err(GeoError::OutOfRange { what: format!("lat={lat}") });
        }
        Ok(Self { lon, lat })
    }

    /// Creates a point without validation.
    ///
    /// Useful in hot loops where the inputs are already known to be valid
    /// (e.g. values decoded from a geohash). Invalid values will produce
    /// nonsensical — but memory-safe — results downstream.
    #[inline]
    pub fn new_unchecked(lon: f64, lat: f64) -> Self {
        Self { lon, lat }
    }

    /// Returns the great-circle distance to `other` in kilometres.
    #[inline]
    pub fn distance_km(&self, other: &Point) -> f64 {
        crate::distance::haversine_km(*self, *other)
    }

    /// Returns the midpoint (arithmetic in degree space) between `self` and `other`.
    ///
    /// This is accurate enough for the small (kilometre-scale) patch
    /// footprints that BigEarthNet deals with and avoids spherical math in
    /// hot ingestion paths.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point { lon: (self.lon + other.lon) / 2.0, lat: (self.lat + other.lat) / 2.0 }
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lon, self.lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_points_are_accepted() {
        assert!(Point::new(0.0, 0.0).is_ok());
        assert!(Point::new(-180.0, -90.0).is_ok());
        assert!(Point::new(180.0, 90.0).is_ok());
        assert!(Point::new(13.4, 52.5).is_ok()); // Berlin
    }

    #[test]
    fn out_of_range_points_are_rejected() {
        assert!(Point::new(181.0, 0.0).is_err());
        assert!(Point::new(-181.0, 0.0).is_err());
        assert!(Point::new(0.0, 91.0).is_err());
        assert!(Point::new(0.0, -91.0).is_err());
        assert!(Point::new(f64::NAN, 0.0).is_err());
        assert!(Point::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn midpoint_is_between() {
        let a = Point::new(10.0, 50.0).unwrap();
        let b = Point::new(12.0, 52.0).unwrap();
        let m = a.midpoint(&b);
        assert!((m.lon - 11.0).abs() < 1e-12);
        assert!((m.lat - 51.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(10.0, 50.0).unwrap();
        assert!(a.distance_km(&a) < 1e-9);
    }

    #[test]
    fn display_has_six_decimals() {
        let p = Point::new(13.4, 52.5).unwrap();
        assert_eq!(format!("{p}"), "(13.400000, 52.500000)");
    }
}
