//! Geospatial substrate for the EarthQube / AgoraEO reproduction.
//!
//! This crate provides the geospatial primitives that the rest of the
//! workspace relies on:
//!
//! * [`Point`] — a WGS-84 longitude/latitude coordinate,
//! * [`BBox`] — an axis-aligned bounding rectangle,
//! * [`Circle`] and [`Polygon`] — the additional query shapes supported by
//!   the EarthQube query panel (§3.1 of the paper),
//! * [`GeoShape`] — the union of the three query shapes,
//! * [`geohash`] — a base-32 geohash codec used by the document store's
//!   2-D index, mirroring MongoDB's built-in geohashing index (§3.2),
//! * [`haversine_km`] — great-circle distance.
//!
//! All angles are degrees; longitudes are in `[-180, 180]`, latitudes in
//! `[-90, 90]`.

#![deny(missing_docs)]

pub mod bbox;
pub mod distance;
pub mod geohash;
pub mod point;
pub mod shape;

pub use bbox::{BBox, SplitBBox};
pub use distance::{haversine_km, EARTH_RADIUS_KM};
pub use geohash::{decode, decode_bbox, encode, neighbors, GeohashError};
pub use point::Point;
pub use shape::{Circle, GeoShape, Polygon};

/// Errors produced by geospatial constructors and predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A longitude was outside `[-180, 180]` or a latitude outside `[-90, 90]`.
    OutOfRange {
        /// Human readable description of the offending value.
        what: String,
    },
    /// A polygon had fewer than three distinct vertices.
    DegeneratePolygon,
    /// A circle radius was not strictly positive and finite.
    InvalidRadius(f64),
    /// A bounding box had min > max on some axis.
    InvertedBBox,
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::OutOfRange { what } => write!(f, "coordinate out of range: {what}"),
            GeoError::DegeneratePolygon => write!(f, "polygon needs at least 3 vertices"),
            GeoError::InvalidRadius(r) => write!(f, "invalid circle radius: {r}"),
            GeoError::InvertedBBox => write!(f, "bounding box has min > max"),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GeoError::OutOfRange { what: "lat=95".into() };
        assert!(e.to_string().contains("lat=95"));
        assert!(GeoError::DegeneratePolygon.to_string().contains("3 vertices"));
        assert!(GeoError::InvalidRadius(-1.0).to_string().contains("-1"));
        assert!(GeoError::InvertedBBox.to_string().contains("min > max"));
    }
}
