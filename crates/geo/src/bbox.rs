//! Axis-aligned bounding boxes.

use crate::{GeoError, Point};

/// An axis-aligned WGS-84 bounding rectangle.
///
/// BigEarthNet metadata stores the bounding rectangle of every image patch
/// (the `location` attribute in the paper's metadata collection, §3.2), and
/// EarthQube's query panel lets users draw rectangles on the map (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Western edge (minimum longitude).
    pub min_lon: f64,
    /// Southern edge (minimum latitude).
    pub min_lat: f64,
    /// Eastern edge (maximum longitude).
    pub max_lon: f64,
    /// Northern edge (maximum latitude).
    pub max_lat: f64,
}

impl BBox {
    /// Creates a bounding box, validating coordinate ranges and ordering.
    pub fn new(min_lon: f64, min_lat: f64, max_lon: f64, max_lat: f64) -> Result<Self, GeoError> {
        Point::new(min_lon, min_lat)?;
        Point::new(max_lon, max_lat)?;
        if min_lon > max_lon || min_lat > max_lat {
            return Err(GeoError::InvertedBBox);
        }
        Ok(Self { min_lon, min_lat, max_lon, max_lat })
    }

    /// Creates a bounding box from two opposite corner points (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            min_lon: a.lon.min(b.lon),
            min_lat: a.lat.min(b.lat),
            max_lon: a.lon.max(b.lon),
            max_lat: a.lat.max(b.lat),
        }
    }

    /// Creates a square box of `side_km` kilometres centred at `center`.
    ///
    /// This is how synthetic BigEarthNet patch footprints are derived: a
    /// 120 × 120 px patch at 10 m resolution covers 1.2 × 1.2 km.
    pub fn square_around(center: Point, side_km: f64) -> Self {
        let half_lat = crate::distance::km_to_lat_degrees(side_km / 2.0);
        let half_lon = crate::distance::km_to_lon_degrees(side_km / 2.0, center.lat);
        Self {
            min_lon: (center.lon - half_lon).max(-180.0),
            min_lat: (center.lat - half_lat).max(-90.0),
            max_lon: (center.lon + half_lon).min(180.0),
            max_lat: (center.lat + half_lat).min(90.0),
        }
    }

    /// The centre of the box.
    pub fn center(&self) -> Point {
        Point::new_unchecked(
            (self.min_lon + self.max_lon) / 2.0,
            (self.min_lat + self.max_lat) / 2.0,
        )
    }

    /// Width in degrees of longitude.
    pub fn width(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Height in degrees of latitude.
    pub fn height(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Whether `p` lies inside or on the edge of the box.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.lon >= self.min_lon
            && p.lon <= self.max_lon
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// Whether `other` is fully contained in `self` (edges included).
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        other.min_lon >= self.min_lon
            && other.max_lon <= self.max_lon
            && other.min_lat >= self.min_lat
            && other.max_lat <= self.max_lat
    }

    /// Whether the two boxes share any point.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
            && self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
    }

    /// The smallest box containing both boxes.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min_lon: self.min_lon.min(other.min_lon),
            min_lat: self.min_lat.min(other.min_lat),
            max_lon: self.max_lon.max(other.max_lon),
            max_lat: self.max_lat.max(other.max_lat),
        }
    }

    /// The intersection of two boxes, or `None` if they do not overlap.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BBox {
            min_lon: self.min_lon.max(other.min_lon),
            min_lat: self.min_lat.max(other.min_lat),
            max_lon: self.max_lon.min(other.max_lon),
            max_lat: self.max_lat.min(other.max_lat),
        })
    }

    /// Grows the box by `margin_deg` degrees on every side, clamped to the
    /// valid coordinate range.
    pub fn expand(&self, margin_deg: f64) -> BBox {
        BBox {
            min_lon: (self.min_lon - margin_deg).max(-180.0),
            min_lat: (self.min_lat - margin_deg).max(-90.0),
            max_lon: (self.max_lon + margin_deg).min(180.0),
            max_lat: (self.max_lat + margin_deg).min(90.0),
        }
    }

    /// Area of the box in square degrees (used only for selectivity estimates).
    pub fn area_deg2(&self) -> f64 {
        self.width() * self.height()
    }
}

impl std::fmt::Display for BBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.4},{:.4} .. {:.4},{:.4}]",
            self.min_lon, self.min_lat, self.max_lon, self.max_lat
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(a: f64, b_: f64, c: f64, d: f64) -> BBox {
        BBox::new(a, b_, c, d).unwrap()
    }

    #[test]
    fn new_rejects_inverted_boxes() {
        assert_eq!(BBox::new(10.0, 0.0, 5.0, 1.0), Err(GeoError::InvertedBBox));
        assert_eq!(BBox::new(0.0, 10.0, 1.0, 5.0), Err(GeoError::InvertedBBox));
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(BBox::new(-200.0, 0.0, 0.0, 1.0).is_err());
        assert!(BBox::new(0.0, 0.0, 0.0, 100.0).is_err());
    }

    #[test]
    fn from_corners_normalizes_order() {
        let p1 = Point::new(10.0, 50.0).unwrap();
        let p2 = Point::new(5.0, 55.0).unwrap();
        let bb = BBox::from_corners(p1, p2);
        assert_eq!(bb, b(5.0, 50.0, 10.0, 55.0));
    }

    #[test]
    fn contains_point_edges_inclusive() {
        let bb = b(0.0, 0.0, 10.0, 10.0);
        assert!(bb.contains(Point::new_unchecked(0.0, 0.0)));
        assert!(bb.contains(Point::new_unchecked(10.0, 10.0)));
        assert!(bb.contains(Point::new_unchecked(5.0, 5.0)));
        assert!(!bb.contains(Point::new_unchecked(10.1, 5.0)));
        assert!(!bb.contains(Point::new_unchecked(5.0, -0.1)));
    }

    #[test]
    fn intersects_and_intersection_agree() {
        let a = b(0.0, 0.0, 10.0, 10.0);
        let c = b(5.0, 5.0, 15.0, 15.0);
        let d = b(11.0, 11.0, 12.0, 12.0);
        assert!(a.intersects(&c));
        assert_eq!(a.intersection(&c), Some(b(5.0, 5.0, 10.0, 10.0)));
        assert!(!a.intersects(&d));
        assert_eq!(a.intersection(&d), None);
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = b(0.0, 0.0, 5.0, 5.0);
        let c = b(5.0, 0.0, 10.0, 5.0);
        assert!(a.intersects(&c));
        let i = a.intersection(&c).unwrap();
        assert_eq!(i.width(), 0.0);
    }

    #[test]
    fn union_contains_both() {
        let a = b(0.0, 0.0, 5.0, 5.0);
        let c = b(7.0, 7.0, 9.0, 9.0);
        let u = a.union(&c);
        assert!(u.contains_bbox(&a));
        assert!(u.contains_bbox(&c));
    }

    #[test]
    fn square_around_has_roughly_requested_size() {
        let center = Point::new(13.0, 52.0).unwrap();
        let bb = BBox::square_around(center, 1.2);
        // Height should be ~1.2 km in latitude degrees.
        let h_km = bb.height() * 110.574;
        assert!((h_km - 1.2).abs() < 0.01, "height_km={h_km}");
        assert!(bb.contains(center));
        let c = bb.center();
        assert!((c.lon - 13.0).abs() < 1e-9 && (c.lat - 52.0).abs() < 1e-9);
    }

    #[test]
    fn expand_grows_and_clamps() {
        let a = b(-179.5, 88.0, 179.5, 89.5);
        let e = a.expand(1.0);
        assert_eq!(e.min_lon, -180.0);
        assert_eq!(e.max_lon, 180.0);
        assert_eq!(e.max_lat, 90.0);
        assert!(e.contains_bbox(&a));
    }

    #[test]
    fn contains_bbox_is_reflexive_and_antisymmetric_for_strict_nesting() {
        let outer = b(0.0, 0.0, 10.0, 10.0);
        let inner = b(2.0, 2.0, 8.0, 8.0);
        assert!(outer.contains_bbox(&outer));
        assert!(outer.contains_bbox(&inner));
        assert!(!inner.contains_bbox(&outer));
    }

    #[test]
    fn area_is_width_times_height() {
        let a = b(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area_deg2(), 6.0);
    }
}
