//! Axis-aligned bounding boxes.

use crate::{GeoError, Point};

/// An axis-aligned WGS-84 bounding rectangle.
///
/// BigEarthNet metadata stores the bounding rectangle of every image patch
/// (the `location` attribute in the paper's metadata collection, §3.2), and
/// EarthQube's query panel lets users draw rectangles on the map (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Western edge (minimum longitude).
    pub min_lon: f64,
    /// Southern edge (minimum latitude).
    pub min_lat: f64,
    /// Eastern edge (maximum longitude).
    pub max_lon: f64,
    /// Northern edge (maximum latitude).
    pub max_lat: f64,
}

impl BBox {
    /// Creates a bounding box, validating coordinate ranges and ordering.
    pub fn new(min_lon: f64, min_lat: f64, max_lon: f64, max_lat: f64) -> Result<Self, GeoError> {
        Point::new(min_lon, min_lat)?;
        Point::new(max_lon, max_lat)?;
        if min_lon > max_lon || min_lat > max_lat {
            return Err(GeoError::InvertedBBox);
        }
        Ok(Self { min_lon, min_lat, max_lon, max_lat })
    }

    /// Creates a bounding box from two opposite corner points (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            min_lon: a.lon.min(b.lon),
            min_lat: a.lat.min(b.lat),
            max_lon: a.lon.max(b.lon),
            max_lat: a.lat.max(b.lat),
        }
    }

    /// Creates a square box of `side_km` kilometres centred at `center`.
    ///
    /// This is how synthetic BigEarthNet patch footprints are derived: a
    /// 120 × 120 px patch at 10 m resolution covers 1.2 × 1.2 km.
    ///
    /// A box whose longitude span crosses the antimeridian **wraps** into
    /// two disjoint boxes (see [`SplitBBox`]) instead of being clamped to
    /// `[-180, 180]` — clamping silently dropped the far side of the query
    /// region.  Latitude is still clamped at the poles: there is nothing
    /// beyond ±90°, so a polar clamp never loses area.
    pub fn square_around(center: Point, side_km: f64) -> SplitBBox {
        let half_lat = crate::distance::km_to_lat_degrees(side_km / 2.0);
        let half_lon = crate::distance::km_to_lon_degrees(side_km / 2.0, center.lat);
        SplitBBox::from_lon_span(
            center.lon - half_lon,
            center.lon + half_lon,
            (center.lat - half_lat).max(-90.0),
            (center.lat + half_lat).min(90.0),
        )
    }

    /// The centre of the box.
    pub fn center(&self) -> Point {
        Point::new_unchecked(
            (self.min_lon + self.max_lon) / 2.0,
            (self.min_lat + self.max_lat) / 2.0,
        )
    }

    /// Width in degrees of longitude.
    pub fn width(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Height in degrees of latitude.
    pub fn height(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Whether `p` lies inside or on the edge of the box.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.lon >= self.min_lon
            && p.lon <= self.max_lon
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// Whether `other` is fully contained in `self` (edges included).
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        other.min_lon >= self.min_lon
            && other.max_lon <= self.max_lon
            && other.min_lat >= self.min_lat
            && other.max_lat <= self.max_lat
    }

    /// Whether the two boxes share any point.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
            && self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
    }

    /// The smallest box containing both boxes.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min_lon: self.min_lon.min(other.min_lon),
            min_lat: self.min_lat.min(other.min_lat),
            max_lon: self.max_lon.max(other.max_lon),
            max_lat: self.max_lat.max(other.max_lat),
        }
    }

    /// The intersection of two boxes, or `None` if they do not overlap.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BBox {
            min_lon: self.min_lon.max(other.min_lon),
            min_lat: self.min_lat.max(other.min_lat),
            max_lon: self.max_lon.min(other.max_lon),
            max_lat: self.max_lat.min(other.max_lat),
        })
    }

    /// Grows the box by `margin_deg` degrees (non-negative) on every side.
    ///
    /// Latitude is clamped at the poles; a longitude span that crosses the
    /// antimeridian **wraps** into two boxes (see [`SplitBBox`]) rather
    /// than being clamped, so no part of the grown region is lost.
    pub fn expand(&self, margin_deg: f64) -> SplitBBox {
        SplitBBox::from_lon_span(
            self.min_lon - margin_deg,
            self.max_lon + margin_deg,
            (self.min_lat - margin_deg).max(-90.0),
            (self.max_lat + margin_deg).min(90.0),
        )
    }

    /// Area of the box in square degrees (used only for selectivity estimates).
    pub fn area_deg2(&self) -> f64 {
        self.width() * self.height()
    }
}

/// A bounding region that may cross the antimeridian: either a single box
/// or — when a constructor's longitude span runs past ±180° — two disjoint
/// boxes, one ending at +180° and one starting at −180°.
///
/// This is the *wrap* resolution of the antimeridian problem: constructors
/// like [`BBox::square_around`] and [`BBox::expand`] used to clamp the
/// longitude span into `[-180, 180]`, which silently dropped the far side
/// of a query region near the date line.  Wrapping keeps both sides; index
/// code scans each piece and callers test containment against the union.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitBBox {
    /// The region fits within `[-180, 180]` as one box.
    One(BBox),
    /// The region crosses the antimeridian.  Pieces are ordered by
    /// longitude: `[0]` starts at −180° and `[1]` ends at +180°.  The
    /// pieces share their latitude band and are disjoint in longitude.
    Two([BBox; 2]),
}

impl SplitBBox {
    /// Normalises a raw (possibly out-of-range) longitude span into a
    /// wrapped region.  Latitudes must already be clamped to `[-90, 90]`.
    pub(crate) fn from_lon_span(min_lon: f64, max_lon: f64, min_lat: f64, max_lat: f64) -> Self {
        let full = BBox { min_lon: -180.0, min_lat, max_lon: 180.0, max_lat };
        let span = max_lon - min_lon;
        // A span covering the whole circle (including the degenerate
        // infinite span produced at the poles, where one degree of
        // longitude is zero kilometres) collapses to the full lon range.
        if !span.is_finite() || span >= 360.0 {
            return SplitBBox::One(full);
        }
        if min_lon < -180.0 {
            // Wraps westwards: [min_lon + 360, 180] ∪ [-180, max_lon].
            SplitBBox::Two([
                BBox { min_lon: -180.0, min_lat, max_lon, max_lat },
                BBox { min_lon: min_lon + 360.0, min_lat, max_lon: 180.0, max_lat },
            ])
        } else if max_lon > 180.0 {
            // Wraps eastwards: [min_lon, 180] ∪ [-180, max_lon - 360].
            SplitBBox::Two([
                BBox { min_lon: -180.0, min_lat, max_lon: max_lon - 360.0, max_lat },
                BBox { min_lon, min_lat, max_lon: 180.0, max_lat },
            ])
        } else {
            SplitBBox::One(BBox { min_lon, min_lat, max_lon, max_lat })
        }
    }

    /// The boxes making up the region: one box, or two (ordered by
    /// longitude) when the region crosses the antimeridian.
    pub fn boxes(&self) -> &[BBox] {
        match self {
            SplitBBox::One(b) => std::slice::from_ref(b),
            SplitBBox::Two(pair) => pair,
        }
    }

    /// The single box, if the region does not cross the antimeridian.
    pub fn single(&self) -> Option<&BBox> {
        match self {
            SplitBBox::One(b) => Some(b),
            SplitBBox::Two(_) => None,
        }
    }

    /// Whether the region crosses the antimeridian.
    pub fn is_split(&self) -> bool {
        matches!(self, SplitBBox::Two(_))
    }

    /// Whether any piece of the region contains the point.
    pub fn contains(&self, p: Point) -> bool {
        self.boxes().iter().any(|b| b.contains(p))
    }

    /// Whether any piece of the region intersects the box.
    pub fn intersects(&self, other: &BBox) -> bool {
        self.boxes().iter().any(|b| b.intersects(other))
    }

    /// Grows every piece by `margin_deg` degrees (non-negative).
    ///
    /// A single box may wrap into two; the pieces of an already-split
    /// region stay clamped at the antimeridian (the other side is covered
    /// by the sibling piece, which grows symmetrically).
    pub fn expand(&self, margin_deg: f64) -> SplitBBox {
        match self {
            SplitBBox::One(b) => b.expand(margin_deg),
            SplitBBox::Two([lo, hi]) => SplitBBox::Two([
                BBox {
                    min_lon: -180.0,
                    min_lat: (lo.min_lat - margin_deg).max(-90.0),
                    max_lon: (lo.max_lon + margin_deg).min(180.0),
                    max_lat: (lo.max_lat + margin_deg).min(90.0),
                },
                BBox {
                    min_lon: (hi.min_lon - margin_deg).max(-180.0),
                    min_lat: (hi.min_lat - margin_deg).max(-90.0),
                    max_lon: 180.0,
                    max_lat: (hi.max_lat + margin_deg).min(90.0),
                },
            ]),
        }
    }
}

impl From<BBox> for SplitBBox {
    fn from(b: BBox) -> Self {
        SplitBBox::One(b)
    }
}

impl std::fmt::Display for SplitBBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitBBox::One(b) => write!(f, "{b}"),
            SplitBBox::Two([lo, hi]) => write!(f, "{hi} ∪ {lo}"),
        }
    }
}

impl std::fmt::Display for BBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.4},{:.4} .. {:.4},{:.4}]",
            self.min_lon, self.min_lat, self.max_lon, self.max_lat
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(a: f64, b_: f64, c: f64, d: f64) -> BBox {
        BBox::new(a, b_, c, d).unwrap()
    }

    #[test]
    fn new_rejects_inverted_boxes() {
        assert_eq!(BBox::new(10.0, 0.0, 5.0, 1.0), Err(GeoError::InvertedBBox));
        assert_eq!(BBox::new(0.0, 10.0, 1.0, 5.0), Err(GeoError::InvertedBBox));
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(BBox::new(-200.0, 0.0, 0.0, 1.0).is_err());
        assert!(BBox::new(0.0, 0.0, 0.0, 100.0).is_err());
    }

    #[test]
    fn from_corners_normalizes_order() {
        let p1 = Point::new(10.0, 50.0).unwrap();
        let p2 = Point::new(5.0, 55.0).unwrap();
        let bb = BBox::from_corners(p1, p2);
        assert_eq!(bb, b(5.0, 50.0, 10.0, 55.0));
    }

    #[test]
    fn contains_point_edges_inclusive() {
        let bb = b(0.0, 0.0, 10.0, 10.0);
        assert!(bb.contains(Point::new_unchecked(0.0, 0.0)));
        assert!(bb.contains(Point::new_unchecked(10.0, 10.0)));
        assert!(bb.contains(Point::new_unchecked(5.0, 5.0)));
        assert!(!bb.contains(Point::new_unchecked(10.1, 5.0)));
        assert!(!bb.contains(Point::new_unchecked(5.0, -0.1)));
    }

    #[test]
    fn intersects_and_intersection_agree() {
        let a = b(0.0, 0.0, 10.0, 10.0);
        let c = b(5.0, 5.0, 15.0, 15.0);
        let d = b(11.0, 11.0, 12.0, 12.0);
        assert!(a.intersects(&c));
        assert_eq!(a.intersection(&c), Some(b(5.0, 5.0, 10.0, 10.0)));
        assert!(!a.intersects(&d));
        assert_eq!(a.intersection(&d), None);
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = b(0.0, 0.0, 5.0, 5.0);
        let c = b(5.0, 0.0, 10.0, 5.0);
        assert!(a.intersects(&c));
        let i = a.intersection(&c).unwrap();
        assert_eq!(i.width(), 0.0);
    }

    #[test]
    fn union_contains_both() {
        let a = b(0.0, 0.0, 5.0, 5.0);
        let c = b(7.0, 7.0, 9.0, 9.0);
        let u = a.union(&c);
        assert!(u.contains_bbox(&a));
        assert!(u.contains_bbox(&c));
    }

    #[test]
    fn square_around_has_roughly_requested_size() {
        let center = Point::new(13.0, 52.0).unwrap();
        let split = BBox::square_around(center, 1.2);
        let bb = *split.single().expect("far from the antimeridian");
        // Height should be ~1.2 km in latitude degrees.
        let h_km = bb.height() * 110.574;
        assert!((h_km - 1.2).abs() < 0.01, "height_km={h_km}");
        assert!(bb.contains(center));
        let c = bb.center();
        assert!((c.lon - 13.0).abs() < 1e-9 && (c.lat - 52.0).abs() < 1e-9);
    }

    #[test]
    fn square_around_wraps_at_the_antimeridian() {
        // A 100 km box centred 10 km west of the antimeridian must keep its
        // far side: points just east of −180° used to be silently dropped
        // by the old clamping behaviour.
        let center = Point::new(179.9, 0.0).unwrap();
        let split = BBox::square_around(center, 100.0);
        assert!(split.is_split());
        assert!(split.contains(Point::new_unchecked(179.95, 0.0)));
        assert!(split.contains(Point::new_unchecked(-179.8, 0.0)), "far side lost");
        assert!(!split.contains(Point::new_unchecked(178.0, 0.0)));
        // Pieces are ordered by longitude, disjoint, and meet at ±180°.
        let [lo, hi] = match split {
            SplitBBox::Two(pair) => pair,
            other => panic!("expected a split region, got {other:?}"),
        };
        assert_eq!(lo.min_lon, -180.0);
        assert_eq!(hi.max_lon, 180.0);
        assert!(lo.max_lon < hi.min_lon);
    }

    #[test]
    fn square_around_at_the_pole_covers_all_longitudes() {
        // At ±90° latitude one degree of longitude is zero km, so any box
        // spans the full longitude circle.
        let split = BBox::square_around(Point::new_unchecked(10.0, 90.0), 1.0);
        let bb = split.single().expect("full-circle span collapses to one box");
        assert_eq!((bb.min_lon, bb.max_lon), (-180.0, 180.0));
        assert_eq!(bb.max_lat, 90.0);
    }

    #[test]
    fn expand_grows_and_wraps() {
        // Latitude clamps at the pole; longitude wraps into two boxes.
        let a = b(178.0, 88.0, 179.5, 89.5);
        let e = a.expand(1.0);
        assert!(e.is_split());
        assert!(e.contains(Point::new_unchecked(-179.8, 88.5)), "wrapped side lost");
        assert!(e.contains(Point::new_unchecked(177.5, 89.0)));
        assert!(!e.contains(Point::new_unchecked(0.0, 89.0)));
        for piece in e.boxes() {
            assert!(piece.max_lat <= 90.0);
        }
        // A mid-ocean box stays a single box and simply grows.
        let m = b(-10.0, 10.0, 10.0, 20.0);
        let g = m.expand(1.0);
        let gb = g.single().expect("no wrap needed");
        assert_eq!((gb.min_lon, gb.max_lon), (-11.0, 11.0));
        assert!(gb.contains_bbox(&m));
        // A span reaching all the way around collapses to the full range.
        let w = b(-170.0, 0.0, 170.0, 1.0);
        let full = w.expand(15.0);
        let fb = full.single().expect("full circle is one box");
        assert_eq!((fb.min_lon, fb.max_lon), (-180.0, 180.0));
    }

    #[test]
    fn split_bbox_expand_keeps_covering_the_wrapped_region() {
        let split = BBox::square_around(Point::new_unchecked(179.9, 0.0), 100.0);
        let grown = split.expand(0.5);
        assert!(grown.is_split());
        // Every point of the original region stays covered.
        for piece in split.boxes() {
            assert!(grown.contains(piece.center()));
            assert!(grown.contains(Point::new_unchecked(piece.min_lon, piece.min_lat)));
            assert!(grown.contains(Point::new_unchecked(piece.max_lon, piece.max_lat)));
        }
        assert!(grown.intersects(&b(179.0, -1.0, 180.0, 1.0)));
        assert!(!grown.intersects(&b(0.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn contains_bbox_is_reflexive_and_antisymmetric_for_strict_nesting() {
        let outer = b(0.0, 0.0, 10.0, 10.0);
        let inner = b(2.0, 2.0, 8.0, 8.0);
        assert!(outer.contains_bbox(&outer));
        assert!(outer.contains_bbox(&inner));
        assert!(!inner.contains_bbox(&outer));
    }

    #[test]
    fn area_is_width_times_height() {
        let a = b(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area_deg2(), 6.0);
    }
}
