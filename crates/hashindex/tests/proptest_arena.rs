//! Property-based equivalence suite for the cache-resident hot path
//! (experiment E11): the arena scan must reproduce the old per-bucket
//! `HashMap` scan exactly, and the bounded top-k selection must reproduce
//! full-sort-then-truncate exactly — ids, distances *and* ordering —
//! across generated code widths, radii and `k`, on both sides of the
//! adaptive `pick_strategy` crossover.

use std::collections::HashMap;

use eq_hashindex::hashtable::Strategy as ScanStrategy;
use eq_hashindex::{
    BinaryCode, CodeArena, HammingIndex, HashTableIndex, ItemId, Neighbor, SearchScratch,
    ShardedHashIndex,
};
use proptest::prelude::*;

fn arb_code(bits: u32) -> impl Strategy<Value = BinaryCode> {
    proptest::collection::vec(any::<bool>(), bits as usize)
        .prop_map(|bools| BinaryCode::from_bools(&bools))
}

/// Code widths covering every kernel specialisation: sub-word, exactly one
/// word, two words (the 128-bit MiLaN width), a ragged two-word width and
/// the generic ≥3-word fallback.
fn arb_bits() -> impl Strategy<Value = u32> {
    prop_oneof![Just(8u32), Just(64), Just(100), Just(128), Just(192)]
}

/// Codes drawn from a small pool so buckets collide and distance ties are
/// common — ties are where ordering bugs hide.
fn arb_workload() -> impl Strategy<Value = (u32, Vec<BinaryCode>, BinaryCode)> {
    arb_bits().prop_flat_map(|bits| {
        (
            Just(bits),
            proptest::collection::vec(arb_code(bits), 1..8).prop_flat_map(|pool| {
                proptest::collection::vec(0usize..pool.len(), 1..120)
                    .prop_map(move |picks| picks.into_iter().map(|i| pool[i].clone()).collect())
            }),
            arb_code(bits),
        )
    })
}

/// The pre-arena bucket scan, verbatim: iterate a `HashMap` of buckets,
/// compare each distinct code, emit every bucket member, then sort.  The
/// arena path must be indistinguishable from this.
fn legacy_bucket_scan(
    buckets: &HashMap<BinaryCode, Vec<ItemId>>,
    query: &BinaryCode,
    radius: u32,
) -> Vec<Neighbor> {
    let mut out = Vec::new();
    for (code, bucket) in buckets {
        let d = code.hamming_distance(query);
        if d <= radius {
            for &id in bucket {
                out.push(Neighbor::new(id, d));
            }
        }
    }
    eq_hashindex::sort_neighbors(&mut out);
    out
}

/// The pre-top-k k-NN, verbatim: materialise every distance, fully sort,
/// truncate.
fn full_sort_knn(codes: &[BinaryCode], query: &BinaryCode, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = codes
        .iter()
        .enumerate()
        .map(|(i, c)| Neighbor::new(i as ItemId, c.hamming_distance(query)))
        .collect();
    eq_hashindex::sort_neighbors(&mut all);
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arena_scan_matches_the_legacy_bucket_scan(
        w in arb_workload(),
        radius in 0u32..40,
    ) {
        let (bits, codes, query) = w;
        let mut table = HashTableIndex::new(bits);
        let mut buckets: HashMap<BinaryCode, Vec<ItemId>> = HashMap::new();
        for (i, c) in codes.iter().enumerate() {
            table.insert(i as ItemId, c.clone());
            buckets.entry(c.clone()).or_default().push(i as ItemId);
        }
        let expected = legacy_bucket_scan(&buckets, &query, radius);
        // Pin the scan strategy: this property targets the arena kernel.
        table.force_strategy(Some(ScanStrategy::BucketScan));
        prop_assert_eq!(table.radius_search(&query, radius), expected);
    }

    #[test]
    fn adaptive_strategy_is_invisible_in_results(
        w in arb_workload(),
        radius in 0u32..40,
    ) {
        let (bits, codes, query) = w;
        // The adaptive pick (enumeration below the crossover, arena scan
        // above it) must never change what a query returns.
        let mut table = HashTableIndex::new(bits);
        for (i, c) in codes.iter().enumerate() {
            table.insert(i as ItemId, c.clone());
        }
        let adaptive = table.radius_search(&query, radius);
        table.force_strategy(Some(ScanStrategy::BucketScan));
        let scanned = table.radius_search(&query, radius);
        prop_assert_eq!(&adaptive, &scanned);
        // Forcing enumeration is only tractable while the probe count is
        // small — `C(bits, radius)` explodes well before radius 40 — so the
        // explicit cross-check is gated the same way `pick_strategy` gates
        // itself (the adaptive pick never enumerates past this, either).
        if table.enumeration_probes(radius) <= 4096 {
            table.force_strategy(Some(ScanStrategy::Enumerate));
            let enumerated = table.radius_search(&query, radius);
            prop_assert_eq!(&adaptive, &enumerated);
        }
    }

    #[test]
    fn bounded_topk_matches_full_sort_then_truncate(
        w in arb_workload(),
        k in 0usize..140,
    ) {
        let (bits, codes, query) = w;
        let expected = full_sort_knn(&codes, &query, k);

        // Through the hash table (knn and the scratch-reusing knn_with)...
        let mut table = HashTableIndex::new(bits);
        for (i, c) in codes.iter().enumerate() {
            table.insert(i as ItemId, c.clone());
        }
        prop_assert_eq!(table.knn(&query, k), &expected[..]);
        let mut scratch = SearchScratch::new();
        prop_assert_eq!(table.knn_with(&query, k, &mut scratch), &expected[..]);
        // ...and a second use of the same scratch stays exact.
        prop_assert_eq!(table.knn_with(&query, k, &mut scratch), &expected[..]);

        // ...and through the raw arena selection.
        let mut arena = CodeArena::new(bits);
        for (i, c) in codes.iter().enumerate() {
            arena.push(i as ItemId, c);
        }
        scratch.begin(k);
        scratch.scan_arena(&arena, query.words());
        prop_assert_eq!(scratch.finish(), &expected[..]);
    }

    #[test]
    fn sharded_fanout_selection_matches_the_flat_index(
        w in arb_workload(),
        k in 0usize..140,
        radius in 0u32..40,
        shards in 1usize..6,
    ) {
        let (bits, codes, query) = w;
        let sharded = ShardedHashIndex::new(bits, shards);
        let mut flat = HashTableIndex::new(bits);
        for (i, c) in codes.iter().enumerate() {
            sharded.insert(i as ItemId, c.clone());
            flat.insert(i as ItemId, c.clone());
        }
        // One heap threaded across every shard arena == the flat top-k.
        let mut scratch = SearchScratch::new();
        let got = sharded.knn_with(&query, k, &mut scratch).to_vec();
        prop_assert_eq!(&got, &flat.knn(&query, k));
        prop_assert_eq!(&got, &full_sort_knn(&codes, &query, k)[..]);
        prop_assert_eq!(
            sharded.radius_search(&query, radius),
            flat.radius_search(&query, radius)
        );
    }

    #[test]
    fn arena_distances_match_the_code_type(
        w in arb_workload(),
    ) {
        let (bits, codes, query) = w;
        let mut arena = CodeArena::new(bits);
        for (i, c) in codes.iter().enumerate() {
            arena.push(i as ItemId, c);
        }
        let mut dists = Vec::new();
        arena.distances_into(query.words(), &mut dists);
        prop_assert_eq!(dists.len(), codes.len());
        for (i, c) in codes.iter().enumerate() {
            prop_assert_eq!(dists[i], c.hamming_distance(&query));
        }
    }

    #[test]
    fn substring_equals_bit_by_bit_reference(
        code in arb_bits().prop_flat_map(arb_code),
        chunk in 0u32..12,
        chunk_bits in 1u32..=64,
    ) {
        let mut expected = 0u64;
        for i in 0..chunk_bits {
            let bit_idx = chunk as u64 * chunk_bits as u64 + i as u64;
            if bit_idx >= code.bits() as u64 {
                break;
            }
            if code.bit(bit_idx as u32) {
                expected |= 1u64 << i;
            }
        }
        prop_assert_eq!(code.substring(chunk, chunk_bits), expected);
    }
}

/// Deterministic (non-proptest) pin of the `pick_strategy` crossover
/// itself: right at the boundary where enumeration probes equal the bucket
/// count, both strategies and the adaptive pick agree on a dense table.
#[test]
fn results_agree_across_the_pick_strategy_crossover() {
    let bits = 16u32;
    let mut table = HashTableIndex::new(bits);
    for i in 0..3000u64 {
        let word = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24;
        table.insert(i, BinaryCode::from_words(bits, vec![word]));
    }
    let query = BinaryCode::from_words(bits, vec![0x5A5A]);
    // Radii 0..=3 cross from `C(16,r) <= buckets` (enumerate) to scan.
    for radius in 0..=6u32 {
        table.force_strategy(None);
        let adaptive = table.radius_search(&query, radius);
        table.force_strategy(Some(ScanStrategy::Enumerate));
        assert_eq!(adaptive, table.radius_search(&query, radius), "radius {radius}");
        table.force_strategy(Some(ScanStrategy::BucketScan));
        assert_eq!(adaptive, table.radius_search(&query, radius), "radius {radius}");
    }
}
