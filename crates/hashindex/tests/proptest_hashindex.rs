//! Property-based tests: all Hamming indexes must agree with the
//! brute-force linear scan, and the code type must behave like a metric
//! space element.

use eq_hashindex::{BinaryCode, HammingIndex, HashTableIndex, LinearScanIndex, MultiIndexHashing};
use proptest::prelude::*;

fn arb_code(bits: u32) -> impl Strategy<Value = BinaryCode> {
    proptest::collection::vec(any::<bool>(), bits as usize)
        .prop_map(|bools| BinaryCode::from_bools(&bools))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hamming_distance_is_a_metric(
        a in arb_code(96),
        b in arb_code(96),
        c in arb_code(96),
    ) {
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert!(a.hamming_distance(&b) + b.hamming_distance(&c) >= a.hamming_distance(&c));
        prop_assert!(a.hamming_distance(&b) <= 96);
    }

    #[test]
    fn identical_iff_distance_zero(a in arb_code(48), b in arb_code(48)) {
        prop_assert_eq!(a.hamming_distance(&b) == 0, a == b);
    }

    #[test]
    fn bit_string_roundtrip(a in arb_code(70)) {
        let s = a.to_bit_string();
        prop_assert_eq!(BinaryCode::from_bit_string(&s).unwrap(), a);
    }

    #[test]
    fn flipping_a_bit_changes_distance_by_one(a in arb_code(64), bit in 0u32..64) {
        let flipped = a.with_flipped_bit(bit);
        prop_assert_eq!(a.hamming_distance(&flipped), 1);
    }

    #[test]
    fn hashtable_agrees_with_linear_scan(
        codes in proptest::collection::vec(arb_code(24), 1..60),
        query in arb_code(24),
        radius in 0u32..10,
    ) {
        let mut table = HashTableIndex::new(24);
        let mut linear = LinearScanIndex::new(24);
        for (i, c) in codes.iter().enumerate() {
            table.insert(i as u64, c.clone());
            linear.insert(i as u64, c.clone());
        }
        prop_assert_eq!(table.radius_search(&query, radius), linear.radius_search(&query, radius));
    }

    #[test]
    fn mih_agrees_with_linear_scan(
        codes in proptest::collection::vec(arb_code(32), 1..60),
        query in arb_code(32),
        radius in 0u32..12,
        chunks in 2u32..6,
    ) {
        let mut mih = MultiIndexHashing::new(32, chunks);
        let mut linear = LinearScanIndex::new(32);
        for (i, c) in codes.iter().enumerate() {
            mih.insert(i as u64, c.clone());
            linear.insert(i as u64, c.clone());
        }
        prop_assert_eq!(mih.radius_search(&query, radius), linear.radius_search(&query, radius));
    }

    #[test]
    fn knn_results_are_sorted_and_bounded(
        codes in proptest::collection::vec(arb_code(16), 1..40),
        query in arb_code(16),
        k in 0usize..20,
    ) {
        let mut table = HashTableIndex::new(16);
        for (i, c) in codes.iter().enumerate() {
            table.insert(i as u64, c.clone());
        }
        let hits = table.knn(&query, k);
        prop_assert!(hits.len() <= k.min(codes.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        // The nearest hit must be at the true minimum distance.
        if k > 0 {
            let min_dist = codes.iter().map(|c| c.hamming_distance(&query)).min().unwrap();
            prop_assert_eq!(hits[0].distance, min_dist);
        }
    }

    #[test]
    fn substring_concatenation_preserves_popcount(a in arb_code(64), chunks in 1u32..8) {
        let chunk_bits = 64u32.div_ceil(chunks);
        if chunk_bits <= 64 {
            let total: u32 = (0..chunks).map(|c| a.substring(c, chunk_bits).count_ones()).sum();
            prop_assert_eq!(total, a.count_ones());
        }
    }
}
