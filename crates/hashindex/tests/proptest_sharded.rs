//! Property tests: `ShardedHashIndex` must return results identical to the
//! flat `HashTableIndex` under *arbitrary* interleavings of inserts, k-NN
//! and radius queries — the generated-workload extension of the fixed-seed
//! determinism tests — and the equivalence must survive a serialization
//! round trip mid-workload.

use eq_hashindex::{BinaryCode, HammingIndex, HashTableIndex, ShardedHashIndex};
use proptest::prelude::*;

const BITS: u32 = 64;

/// Deterministic SplitMix64-style code expansion; low-entropy seeds create
/// bucket collisions so tie-breaking by id is exercised.
fn code_from_seed(seed: u64) -> BinaryCode {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let words: Vec<u64> = (0..BITS.div_ceil(64)).map(|_| next()).collect();
    BinaryCode::from_words(BITS, words)
}

/// One workload step: `kind` selects insert / k-NN / radius search, `seed`
/// drives the code (masked to a small space so queries hit real data), and
/// `param` is k or the radius.
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u8)>> {
    proptest::collection::vec((0u8..4, 0u64..48, 0u8..24), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat and sharded indexes agree on every query of every generated
    /// interleaving, for every shard count.
    #[test]
    fn sharded_equals_flat_under_arbitrary_interleavings(
        ops in arb_ops(),
        shards in 1usize..7,
    ) {
        let sharded = ShardedHashIndex::new(BITS, shards);
        let mut flat = HashTableIndex::new(BITS);
        let mut next_id: u64 = 0;
        for (step, (kind, seed, param)) in ops.iter().enumerate() {
            match kind % 2 {
                // Bias half of all steps to inserts so queries see data.
                0 => {
                    let code = code_from_seed(*seed);
                    sharded.insert(next_id, code.clone());
                    flat.insert(next_id, code);
                    next_id += 1;
                }
                _ if kind % 4 == 1 => {
                    let query = code_from_seed(*seed);
                    let k = *param as usize;
                    let (got, want) = (sharded.knn(&query, k), flat.knn(&query, k));
                    prop_assert!(got == want, "knn(k={}) diverged at step {}", k, step);
                }
                _ => {
                    let query = code_from_seed(*seed);
                    let radius = u32::from(*param);
                    let got = sharded.radius_search(&query, radius);
                    let want = flat.radius_search(&query, radius);
                    prop_assert!(got == want, "radius={} diverged at step {}", radius, step);
                }
            }
        }
        prop_assert_eq!(sharded.len(), flat.len());
    }

    /// Serializing and restoring the sharded index mid-workload changes
    /// nothing: the restored index keeps agreeing with the flat reference
    /// for the remaining interleaving (layout is persisted verbatim).
    #[test]
    fn serialization_mid_workload_preserves_equivalence(
        before in arb_ops(),
        after in arb_ops(),
        shards in 1usize..5,
    ) {
        let sharded = ShardedHashIndex::new(BITS, shards);
        let mut flat = HashTableIndex::new(BITS);
        let mut next_id: u64 = 0;
        for (kind, seed, _) in &before {
            if kind % 2 == 0 {
                let code = code_from_seed(*seed);
                sharded.insert(next_id, code.clone());
                flat.insert(next_id, code);
                next_id += 1;
            }
        }
        let mut w = eq_wire::Writer::new();
        sharded.encode(&mut w);
        let bytes = w.into_bytes();
        let restored = ShardedHashIndex::decode(&mut eq_wire::Reader::new(&bytes)).unwrap();
        prop_assert_eq!(restored.shard_occupancy(), sharded.shard_occupancy());

        for (kind, seed, param) in &after {
            match kind % 2 {
                0 => {
                    let code = code_from_seed(*seed);
                    restored.insert(next_id, code.clone());
                    flat.insert(next_id, code);
                    next_id += 1;
                }
                _ => {
                    let query = code_from_seed(*seed);
                    prop_assert_eq!(
                        restored.knn(&query, *param as usize),
                        flat.knn(&query, *param as usize)
                    );
                }
            }
        }
    }
}
