//! The paper's hash-table index: binary codes are keys of a hash table and
//! retrieval returns "all images in the hash buckets that are within a
//! small hamming radius of the query image" (§2.2).

use std::collections::HashMap;

use crate::arena::CodeArena;
use crate::code::BinaryCode;
use crate::topk::SearchScratch;
use crate::{sort_neighbors, HammingIndex, ItemId, Neighbor};

/// A Hamming hash-table index.
///
/// * Items with identical codes share a bucket.
/// * `radius_search(query, r)` retrieves every item whose code is within
///   Hamming distance `r` of the query.  Two strategies are available and
///   chosen adaptively:
///   1. **Enumeration** — probe every code obtained by flipping up to `r`
///      bits of the query (exactly what the paper describes for "a small
///      hamming radius"); cost grows as `C(bits, r)`.
///   2. **Bucket scan** — iterate over all distinct codes present in the
///      table and keep those within distance `r`; cost grows with the
///      number of distinct codes but not with `r`.
///
/// The cheaper strategy is picked per query; `force_strategy` pins it for
/// experiments (E1/E3 compare the two).
///
/// The bucket scan does **not** iterate the `HashMap` (a pointer chase per
/// distinct code): every inserted `(id, code)` row is mirrored into a
/// [`CodeArena`], a flat structure-of-arrays store the scan kernel streams
/// through at memory bandwidth (experiment E11).  The bucket map remains
/// the source of truth for exact lookups, enumeration probes and the
/// durable encoding — whose byte format is unchanged, since the arena is
/// rebuilt from the decoded buckets.
#[derive(Debug, Clone)]
pub struct HashTableIndex {
    bits: u32,
    buckets: HashMap<BinaryCode, Vec<ItemId>>,
    /// Scan mirror of the buckets, in insertion order.
    arena: CodeArena,
    len: usize,
    forced: Option<Strategy>,
}

/// Radius-search strategy of the [`HashTableIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Enumerate all codes within the radius and probe each bucket.
    Enumerate,
    /// Scan all distinct codes in the table.
    BucketScan,
}

impl HashTableIndex {
    /// Creates an empty index for codes of the given width.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0, "code width must be positive");
        Self { bits, buckets: HashMap::new(), arena: CodeArena::new(bits), len: 0, forced: None }
    }

    /// The flat scan store backing the bucket-scan strategy.  Exposed so
    /// fan-out callers (the sharded index, benchmarks) can run one bounded
    /// top-k selection across several tables without per-table result
    /// lists.
    pub fn arena(&self) -> &CodeArena {
        &self.arena
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of distinct codes (hash buckets) currently stored.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Forces a radius-search strategy (used by the benchmarks); `None`
    /// restores adaptive selection.
    pub fn force_strategy(&mut self, strategy: Option<Strategy>) {
        self.forced = strategy;
    }

    /// Returns the items whose code is exactly `code` (one bucket lookup).
    pub fn exact_lookup(&self, code: &BinaryCode) -> &[ItemId] {
        self.buckets.get(code).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Estimated number of bucket probes of the enumeration strategy for a
    /// given radius: `sum_{d=0..=r} C(bits, d)`, saturating.
    pub fn enumeration_probes(&self, radius: u32) -> u128 {
        let mut total: u128 = 0;
        for d in 0..=radius.min(self.bits) {
            total = total.saturating_add(binomial(self.bits as u128, d as u128));
        }
        total
    }

    fn pick_strategy(&self, radius: u32) -> Strategy {
        if let Some(s) = self.forced {
            return s;
        }
        let probes = self.enumeration_probes(radius);
        if probes <= self.buckets.len() as u128 {
            Strategy::Enumerate
        } else {
            Strategy::BucketScan
        }
    }

    /// Appends every item within Hamming distance `radius` of `query` to
    /// `out` (unsorted — the caller sorts once, after any fan-out merge),
    /// using the adaptively picked strategy.  This is the allocation-free
    /// core of [`radius_search`](HammingIndex::radius_search): a caller
    /// that owns `out` pays no per-query allocation once the buffer is
    /// warm.
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn radius_search_into(&self, query: &BinaryCode, radius: u32, out: &mut Vec<Neighbor>) {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        match self.pick_strategy(radius) {
            Strategy::Enumerate => self.enumerate_into(query, radius, out),
            Strategy::BucketScan => self.arena.scan_radius_into(query.words(), radius, out),
        }
    }

    /// The enumeration strategy: depth-first bit-flip enumeration with
    /// increasing flip positions (no code is visited twice), flipping a
    /// **single scratch code in place** — no clone per probed bucket.
    fn enumerate_into(&self, query: &BinaryCode, radius: u32, out: &mut Vec<Neighbor>) {
        if let Some(bucket) = self.buckets.get(query) {
            for &id in bucket {
                out.push(Neighbor::new(id, 0));
            }
        }
        let mut current = query.clone();
        enumerate_flips(&mut current, 0, radius, self.bits, &mut |code, flipped| {
            if let Some(bucket) = self.buckets.get(code) {
                for &id in bucket {
                    out.push(Neighbor::new(id, flipped));
                }
            }
        });
    }

    /// Bounded k-NN: one pass over the arena through `scratch`'s size-`k`
    /// max-heap, so no full candidate list is ever materialised or sorted.
    /// The returned slice borrows the scratch; copy it out before reusing.
    ///
    /// Results are exactly [`knn`](HammingIndex::knn)'s: the heap's
    /// `(distance, id)` order is the neighbour sort order, so the `k`
    /// survivors are the first `k` rows of the full sorted list.
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn knn_with<'s>(
        &self,
        query: &BinaryCode,
        k: usize,
        scratch: &'s mut SearchScratch,
    ) -> &'s [Neighbor] {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        scratch.begin(k);
        scratch.scan_arena(&self.arena, query.words());
        scratch.finish()
    }

    /// Masked radius search: appends every item within Hamming distance
    /// `radius` of `query` **whose id is in `mask`** to `out` (unsorted).
    /// Always runs the arena scan — the point of the mask is to skip the
    /// XOR/popcount per rejected row, which bucket enumeration cannot do —
    /// so cost is one mask probe per row plus a distance computation per
    /// surviving row.
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn radius_search_masked_into(
        &self,
        query: &BinaryCode,
        radius: u32,
        mask: &crate::bitmap::IdMask,
        out: &mut Vec<Neighbor>,
    ) {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        self.arena.scan_radius_masked_into(query.words(), radius, mask, out);
    }

    /// Masked bounded k-NN: the `k` nearest items among those whose id is
    /// in `mask`, selected in one masked arena pass through `scratch`'s
    /// size-`k` heap.  The returned slice borrows the scratch.
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn knn_masked_with<'s>(
        &self,
        query: &BinaryCode,
        k: usize,
        mask: &crate::bitmap::IdMask,
        scratch: &'s mut SearchScratch,
    ) -> &'s [Neighbor] {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        scratch.begin(k);
        scratch.scan_arena_masked(&self.arena, query.words(), mask);
        scratch.finish()
    }

    /// Serializes the bucket table: `bits:u32`, bucket count, then per
    /// bucket its code and its item ids in insertion order.  Buckets are
    /// written in code order (the in-memory `HashMap` iterates in an
    /// unspecified order), so encoding the same logical table twice yields
    /// byte-identical output.  The runtime `force_strategy` knob is
    /// deliberately not persisted.
    pub fn encode(&self, w: &mut eq_wire::Writer) {
        w.u32(self.bits);
        let mut buckets: Vec<(&BinaryCode, &Vec<ItemId>)> = self.buckets.iter().collect();
        buckets.sort_unstable_by(|a, b| a.0.words().cmp(b.0.words()));
        w.seq_len(buckets.len());
        for (code, ids) in buckets {
            code.encode(w);
            w.seq_len(ids.len());
            for &id in ids {
                w.u64(id);
            }
        }
    }

    /// Decodes a table written by [`encode`](Self::encode), re-inserting
    /// every item so the restored table answers searches identically.
    ///
    /// # Errors
    /// Returns a [`eq_wire::WireError`] on truncation, a zero code width or
    /// a code whose width disagrees with the table's; never panics.
    pub fn decode(r: &mut eq_wire::Reader<'_>) -> Result<Self, eq_wire::WireError> {
        let bits = r.u32()?;
        if bits == 0 {
            return Err(eq_wire::WireError::Corrupt("hash table of code width 0".into()));
        }
        let mut table = HashTableIndex::new(bits);
        let n_buckets = r.seq_len(1)?;
        for _ in 0..n_buckets {
            let code = BinaryCode::decode(r)?;
            if code.bits() != bits {
                return Err(eq_wire::WireError::Corrupt(format!(
                    "bucket code is {} bits wide in a {bits}-bit table",
                    code.bits()
                )));
            }
            let n_ids = r.seq_len(8)?;
            for _ in 0..n_ids {
                let id = r.u64()?;
                table.insert(id, code.clone());
            }
        }
        Ok(table)
    }
}

impl HammingIndex for HashTableIndex {
    fn insert(&mut self, id: ItemId, code: BinaryCode) {
        assert_eq!(code.bits(), self.bits, "code width does not match the index");
        self.arena.push(id, &code);
        self.buckets.entry(code).or_default().push(id);
        self.len += 1;
    }

    fn radius_search(&self, query: &BinaryCode, radius: u32) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.radius_search_into(query, radius, &mut out);
        sort_neighbors(&mut out);
        out
    }

    fn knn(&self, query: &BinaryCode, k: usize) -> Vec<Neighbor> {
        // One bounded arena pass — no radius-expansion retries, no full
        // sort.  (An earlier revision expanded a radius search until `k`
        // items appeared, re-paying the scan per retry on sparse tables.)
        self.knn_with(query, k, &mut SearchScratch::new()).to_vec()
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Calls `visit` for every code within `max_flips` bit flips of `code`
/// (excluding zero flips), flipping and unflipping bits **in place** on the
/// single working buffer: an enumerated bucket probe costs one XOR going
/// in and one coming back out, never a clone or an allocation.
fn enumerate_flips(
    code: &mut BinaryCode,
    start_bit: u32,
    remaining: u32,
    bits: u32,
    visit: &mut impl FnMut(&BinaryCode, u32),
) {
    fn rec(
        code: &mut BinaryCode,
        start_bit: u32,
        remaining: u32,
        bits: u32,
        depth: u32,
        visit: &mut impl FnMut(&BinaryCode, u32),
    ) {
        if remaining == 0 {
            return;
        }
        for i in start_bit..bits {
            code.toggle_bit(i);
            visit(code, depth + 1);
            rec(code, i + 1, remaining - 1, bits, depth + 1, visit);
            code.toggle_bit(i); // unflip: restore before the next branch
        }
    }
    rec(code, start_bit, remaining, bits, 0, visit);
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(s: &str) -> BinaryCode {
        BinaryCode::from_bit_string(s).unwrap()
    }

    fn sample_index() -> HashTableIndex {
        let mut idx = HashTableIndex::new(8);
        idx.insert(1, code("00000000"));
        idx.insert(2, code("00000001"));
        idx.insert(3, code("00000011"));
        idx.insert(4, code("11111111"));
        idx.insert(5, code("00000000")); // same bucket as 1
        idx
    }

    #[test]
    fn insert_and_exact_lookup() {
        let idx = sample_index();
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.bucket_count(), 4);
        assert_eq!(idx.exact_lookup(&code("00000000")), &[1, 5]);
        assert_eq!(idx.exact_lookup(&code("01010101")), &[] as &[ItemId]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn insert_rejects_wrong_width() {
        let mut idx = HashTableIndex::new(8);
        idx.insert(1, BinaryCode::zeros(16));
    }

    #[test]
    fn radius_zero_returns_exact_bucket() {
        let idx = sample_index();
        let hits = idx.radius_search(&code("00000000"), 0);
        assert_eq!(hits, vec![Neighbor::new(1, 0), Neighbor::new(5, 0)]);
    }

    #[test]
    fn radius_search_returns_all_within_radius_sorted() {
        let idx = sample_index();
        let hits = idx.radius_search(&code("00000000"), 2);
        assert_eq!(
            hits,
            vec![
                Neighbor::new(1, 0),
                Neighbor::new(5, 0),
                Neighbor::new(2, 1),
                Neighbor::new(3, 2),
            ]
        );
    }

    #[test]
    fn both_strategies_agree() {
        let mut idx = sample_index();
        for radius in 0..=8 {
            idx.force_strategy(Some(Strategy::Enumerate));
            let a = idx.radius_search(&code("00000001"), radius);
            idx.force_strategy(Some(Strategy::BucketScan));
            let b = idx.radius_search(&code("00000001"), radius);
            assert_eq!(a, b, "strategies disagree at radius {radius}");
        }
    }

    #[test]
    fn knn_expands_radius_until_k_found() {
        let idx = sample_index();
        let hits = idx.knn(&code("00000000"), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 5);
        assert_eq!(hits[2].id, 2);
        // k larger than the index size returns everything.
        let all = idx.knn(&code("00000000"), 100);
        assert_eq!(all.len(), 5);
        // k = 0 returns nothing.
        assert!(idx.knn(&code("00000000"), 0).is_empty());
    }

    #[test]
    fn knn_on_empty_index_is_empty() {
        let idx = HashTableIndex::new(16);
        assert!(idx.knn(&BinaryCode::zeros(16), 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn enumeration_probe_count_is_binomial_sum() {
        let idx = HashTableIndex::new(8);
        assert_eq!(idx.enumeration_probes(0), 1);
        assert_eq!(idx.enumeration_probes(1), 1 + 8);
        assert_eq!(idx.enumeration_probes(2), 1 + 8 + 28);
        assert_eq!(idx.enumeration_probes(8), 256);
        // Radius above the width saturates at 2^bits.
        assert_eq!(idx.enumeration_probes(100), 256);
    }

    #[test]
    fn adaptive_strategy_prefers_enumeration_for_small_radius_on_large_tables() {
        let mut idx = HashTableIndex::new(64);
        // Many distinct buckets.
        for i in 0..5_000u64 {
            let mut c = BinaryCode::zeros(64);
            for b in 0..64 {
                if (i >> (b % 13)) & 1 == 1 {
                    c.set_bit(b, true);
                }
            }
            // Add the item index to make codes distinct.
            for b in 0..13 {
                c.set_bit(50 + (b % 14), (i >> b) & 1 == 1);
            }
            idx.insert(i, c);
        }
        assert_eq!(idx.pick_strategy(0), Strategy::Enumerate);
        assert_eq!(idx.pick_strategy(1), Strategy::Enumerate);
        assert_eq!(idx.pick_strategy(5), Strategy::BucketScan);
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(128, 0), 1);
        assert_eq!(binomial(128, 1), 128);
        assert_eq!(binomial(128, 2), 8128);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
    }

    #[test]
    fn radius_search_with_128_bit_codes() {
        let mut idx = HashTableIndex::new(128);
        let base = BinaryCode::zeros(128);
        idx.insert(10, base.clone());
        idx.insert(11, base.with_flipped_bit(3));
        idx.insert(12, base.with_flipped_bit(3).with_flipped_bit(77));
        let hits = idx.radius_search(&base, 1);
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![10, 11]);
        let hits = idx.radius_search(&base, 2);
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![10, 11, 12]);
    }
}
