//! Fixed-width binary hash codes.

/// A binary hash code of `bits` bits, packed little-endian into `u64` words
/// (bit `i` of the code is bit `i % 64` of word `i / 64`).
///
/// MiLaN uses 128-bit codes (§3.3 of the paper), but the width is
/// configurable so that the loss-ablation and radius-sweep experiments can
/// explore other widths.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BinaryCode {
    bits: u32,
    words: Vec<u64>,
}

impl BinaryCode {
    /// Creates an all-zero code of the given width.
    ///
    /// # Panics
    /// Panics if `bits == 0`.
    pub fn zeros(bits: u32) -> Self {
        assert!(bits > 0, "a binary code needs at least one bit");
        let n_words = bits.div_ceil(64) as usize;
        Self { bits, words: vec![0; n_words] }
    }

    /// Builds a code from boolean bit values (`bits.len()` defines the width).
    ///
    /// # Panics
    /// Panics if `bits` is empty.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut code = Self::zeros(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                code.set_bit(i as u32, true);
            }
        }
        code
    }

    /// Builds a code from real-valued network outputs by taking the sign:
    /// values `> 0` become 1, values `<= 0` become 0.  This is exactly the
    /// binarisation step MiLaN applies to its hashing-layer outputs.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn from_signs(values: &[f32]) -> Self {
        let mut code = Self::zeros(values.len() as u32);
        for (i, &v) in values.iter().enumerate() {
            if v > 0.0 {
                code.set_bit(i as u32, true);
            }
        }
        code
    }

    /// Builds a code from raw words; extra bits beyond `bits` are masked off.
    ///
    /// # Panics
    /// Panics if `bits == 0` or `words` is shorter than `bits` requires.
    pub fn from_words(bits: u32, mut words: Vec<u64>) -> Self {
        assert!(bits > 0, "a binary code needs at least one bit");
        let n_words = bits.div_ceil(64) as usize;
        assert!(words.len() >= n_words, "word buffer too short for {bits} bits");
        words.truncate(n_words);
        let rem = bits % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            if let Some(last) = words.last_mut() {
                *last &= mask;
            }
        }
        Self { bits, words }
    }

    /// Code width in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The packed words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= bits`.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.bits, "bit index {i} out of range for {} bits", self.bits);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= bits`.
    #[inline]
    pub fn set_bit(&mut self, i: u32, value: bool) {
        assert!(i < self.bits, "bit index {i} out of range for {} bits", self.bits);
        let w = (i / 64) as usize;
        let m = 1u64 << (i % 64);
        if value {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Flips bit `i` in place — one XOR, no branch, no allocation.  This
    /// is what the radius-enumeration hot loop uses to flip/unflip its
    /// single scratch code per probed bucket.
    ///
    /// # Panics
    /// Panics if `i >= bits`.
    #[inline]
    pub fn toggle_bit(&mut self, i: u32) {
        assert!(i < self.bits, "bit index {i} out of range for {} bits", self.bits);
        self.words[(i / 64) as usize] ^= 1u64 << (i % 64);
    }

    /// Flips bit `i`, returning a new code.
    pub fn with_flipped_bit(&self, i: u32) -> Self {
        let mut c = self.clone();
        c.toggle_bit(i);
        c
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    /// Panics if the widths differ.
    #[inline]
    pub fn hamming_distance(&self, other: &BinaryCode) -> u32 {
        assert_eq!(self.bits, other.bits, "cannot compare codes of different widths");
        self.words.iter().zip(other.words.iter()).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Extracts the `chunk`-th substring of `chunk_bits` bits as a `u64` key
    /// (used by multi-index hashing).  Bits past the end of the code are
    /// treated as zero.
    ///
    /// Word-aligned extraction: the substring spans at most two words, so
    /// it is assembled with two shifts and a mask instead of a bit-by-bit
    /// loop — this runs once per chunk for every MIH insert *and* query.
    ///
    /// # Panics
    /// Panics if `chunk_bits == 0` or `chunk_bits > 64`.
    pub fn substring(&self, chunk: u32, chunk_bits: u32) -> u64 {
        assert!(chunk_bits > 0 && chunk_bits <= 64, "chunk_bits must be in 1..=64");
        let start = chunk as u64 * chunk_bits as u64;
        if start >= self.bits as u64 {
            return 0;
        }
        let start = start as u32;
        let word = (start / 64) as usize;
        let offset = start % 64;
        // Low part from the first word; high part (if the substring crosses
        // a word boundary) from the next.  Bits beyond the code width are
        // zero by the struct invariant (`from_words`/`set_bit` mask them),
        // so no end-of-code special case is needed.
        let mut out = self.words[word] >> offset;
        if offset > 0 && word + 1 < self.words.len() {
            out |= self.words[word + 1] << (64 - offset);
        }
        if chunk_bits < 64 {
            out &= (1u64 << chunk_bits) - 1;
        }
        out
    }

    /// Renders the code as a `0`/`1` string, most significant chunk last
    /// (bit 0 first).  Useful for debugging and round-tripping in tests.
    pub fn to_bit_string(&self) -> String {
        (0..self.bits).map(|i| if self.bit(i) { '1' } else { '0' }).collect()
    }

    /// Parses a `0`/`1` string produced by [`to_bit_string`](Self::to_bit_string).
    pub fn from_bit_string(s: &str) -> Option<Self> {
        if s.is_empty() || !s.chars().all(|c| c == '0' || c == '1') {
            return None;
        }
        Some(Self::from_bools(&s.chars().map(|c| c == '1').collect::<Vec<_>>()))
    }

    /// Serializes the code: `bits:u32` followed by the packed words (their
    /// count is implied by the width).  Part of the durable snapshot/WAL
    /// format.
    pub fn encode(&self, w: &mut eq_wire::Writer) {
        w.u32(self.bits);
        for &word in &self.words {
            w.u64(word);
        }
    }

    /// Decodes a code written by [`encode`](Self::encode), validating the
    /// width against the remaining input before allocating.
    ///
    /// # Errors
    /// Returns a [`eq_wire::WireError`] on truncation or a zero width;
    /// never panics.
    pub fn decode(r: &mut eq_wire::Reader<'_>) -> Result<Self, eq_wire::WireError> {
        let bits = r.u32()?;
        if bits == 0 {
            return Err(eq_wire::WireError::Corrupt("binary code of width 0".into()));
        }
        let n_words = bits.div_ceil(64) as usize;
        if n_words.saturating_mul(8) > r.remaining() {
            return Err(eq_wire::WireError::Corrupt(format!(
                "code of {bits} bits needs {} bytes, only {} remain",
                n_words * 8,
                r.remaining()
            )));
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        Ok(Self::from_words(bits, words))
    }
}

impl std::fmt::Display for BinaryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BinaryCode<{}>({}…)",
            self.bits,
            &self.to_bit_string()[..self.bits.min(16) as usize]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_codes_are_rejected() {
        let _ = BinaryCode::zeros(0);
    }

    #[test]
    fn zeros_has_no_set_bits() {
        let c = BinaryCode::zeros(128);
        assert_eq!(c.bits(), 128);
        assert_eq!(c.count_ones(), 0);
        assert_eq!(c.words().len(), 2);
    }

    #[test]
    fn non_multiple_of_64_widths_work() {
        let c = BinaryCode::zeros(100);
        assert_eq!(c.words().len(), 2);
        let mut c = c;
        c.set_bit(99, true);
        assert!(c.bit(99));
        assert_eq!(c.count_ones(), 1);
    }

    #[test]
    fn set_get_flip_bits() {
        let mut c = BinaryCode::zeros(64);
        c.set_bit(0, true);
        c.set_bit(63, true);
        assert!(c.bit(0) && c.bit(63) && !c.bit(32));
        c.set_bit(0, false);
        assert!(!c.bit(0));
        let f = c.with_flipped_bit(32);
        assert!(f.bit(32));
        assert!(!c.bit(32)); // original untouched
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let c = BinaryCode::zeros(16);
        let _ = c.bit(16);
    }

    #[test]
    fn from_bools_and_bit_string_roundtrip() {
        let bits = [true, false, true, true, false, false, true, false, true];
        let c = BinaryCode::from_bools(&bits);
        assert_eq!(c.bits(), 9);
        let s = c.to_bit_string();
        assert_eq!(s, "101100101");
        assert_eq!(BinaryCode::from_bit_string(&s).unwrap(), c);
        assert!(BinaryCode::from_bit_string("").is_none());
        assert!(BinaryCode::from_bit_string("10a").is_none());
    }

    #[test]
    fn from_signs_thresholds_at_zero() {
        let c = BinaryCode::from_signs(&[0.5, -0.5, 0.0, 1e-9, -1e-9, 3.0]);
        assert_eq!(c.to_bit_string(), "100101");
    }

    #[test]
    fn from_words_masks_excess_bits() {
        let c = BinaryCode::from_words(4, vec![0xFFu64]);
        assert_eq!(c.count_ones(), 4);
        assert_eq!(c.words()[0], 0xF);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn from_words_rejects_short_buffers() {
        let _ = BinaryCode::from_words(128, vec![0u64]);
    }

    #[test]
    fn hamming_distance_basics() {
        let a = BinaryCode::from_bit_string("0000").unwrap();
        let b = BinaryCode::from_bit_string("1111").unwrap();
        let c = BinaryCode::from_bit_string("0101").unwrap();
        assert_eq!(a.hamming_distance(&a), 0);
        assert_eq!(a.hamming_distance(&b), 4);
        assert_eq!(a.hamming_distance(&c), 2);
        assert_eq!(b.hamming_distance(&c), 2);
        // Symmetry.
        assert_eq!(c.hamming_distance(&b), b.hamming_distance(&c));
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn hamming_distance_rejects_width_mismatch() {
        let a = BinaryCode::zeros(64);
        let b = BinaryCode::zeros(128);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn hamming_distance_across_word_boundary() {
        let mut a = BinaryCode::zeros(128);
        let mut b = BinaryCode::zeros(128);
        a.set_bit(63, true);
        a.set_bit(64, true);
        b.set_bit(64, true);
        b.set_bit(127, true);
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn substring_extraction() {
        // bits 0..16 = pattern; chunk_bits 8.
        let c = BinaryCode::from_bit_string("1010101011110000").unwrap();
        assert_eq!(c.substring(0, 8), 0b01010101); // bit 0 is LSB of the key
        assert_eq!(c.substring(1, 8), 0b00001111);
        // Chunk that extends past the end of the code is zero-padded.
        assert_eq!(c.substring(2, 8), 0);
        // Full width as a single chunk.
        assert_eq!(c.substring(0, 16), 0b0000111101010101);
    }

    #[test]
    #[should_panic(expected = "chunk_bits")]
    fn substring_rejects_bad_chunk_width() {
        let c = BinaryCode::zeros(16);
        let _ = c.substring(0, 0);
    }

    /// The shift/mask extraction against a bit-by-bit reference, covering
    /// word-boundary-crossing substrings, ragged final chunks, chunks
    /// entirely past the end of the code, and the full-word case.
    #[test]
    fn substring_matches_bit_by_bit_reference() {
        let reference = |c: &BinaryCode, chunk: u32, chunk_bits: u32| -> u64 {
            let start = chunk * chunk_bits;
            let mut out = 0u64;
            for i in 0..chunk_bits {
                let bit_idx = start + i;
                if bit_idx >= c.bits() {
                    break;
                }
                if c.bit(bit_idx) {
                    out |= 1u64 << i;
                }
            }
            out
        };
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for bits in [1u32, 7, 63, 64, 65, 100, 127, 128, 130, 200, 256] {
            let words: Vec<u64> = (0..bits.div_ceil(64)).map(|_| next()).collect();
            let c = BinaryCode::from_words(bits, words);
            for chunk_bits in [1u32, 3, 8, 13, 32, 63, 64] {
                let n_chunks = bits.div_ceil(chunk_bits) + 2; // incl. past-the-end chunks
                for chunk in 0..n_chunks {
                    assert_eq!(
                        c.substring(chunk, chunk_bits),
                        reference(&c, chunk, chunk_bits),
                        "bits {bits}, chunk {chunk} of {chunk_bits}"
                    );
                }
            }
        }
    }

    #[test]
    fn toggle_bit_flips_in_place_across_word_boundaries() {
        let mut c = BinaryCode::zeros(128);
        for i in [0u32, 63, 64, 127] {
            c.toggle_bit(i);
            assert!(c.bit(i));
            c.toggle_bit(i);
            assert!(!c.bit(i));
        }
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn toggle_bit_out_of_range_panics() {
        let mut c = BinaryCode::zeros(16);
        c.toggle_bit(16);
    }

    #[test]
    fn display_is_truncated_and_tagged_with_width() {
        let c = BinaryCode::zeros(128);
        let s = format!("{c}");
        assert!(s.contains("128"));
    }
}
