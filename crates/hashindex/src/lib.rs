//! Binary hash codes and Hamming-space nearest-neighbour indexes.
//!
//! MiLaN (§2.2 of the paper) maps every archive image to a compact binary
//! hash code and uses the codes "as keys in a hash table to enable
//! real-time nearest neighbor search": all images whose codes lie within a
//! small Hamming radius of the query code are retrieved.  This crate
//! provides that machinery plus the baselines the experiments compare
//! against:
//!
//! * [`BinaryCode`] — a fixed-width binary code packed into `u64` words,
//! * [`HashTableIndex`] — the paper's hash-table lookup with adaptive
//!   radius enumeration,
//! * [`MultiIndexHashing`] — substring-based multi-index hashing for larger
//!   radii (Norouzi et al.), the standard way to scale exact Hamming-radius
//!   search,
//! * [`LinearScanIndex`] — brute-force Hamming scan baseline,
//! * [`FloatKnnIndex`] — exact k-NN over the raw float features (the
//!   "no hashing" baseline),
//! * [`RandomHyperplaneHasher`] — untrained LSH codes (the "no learning"
//!   baseline),
//! * [`ShardedHashIndex`] — the hash-table index split into independently
//!   locked shards with fan-out/merge search, the building block of the
//!   concurrent EarthQube serving layer (experiment E8),
//! * [`CodeArena`] — the flat structure-of-arrays code store every scan
//!   path runs over: contiguous word-striped code data with
//!   width-specialised Hamming kernels, so a scan streams at memory
//!   bandwidth instead of pointer-chasing per-code heap allocations
//!   (experiment E11),
//! * [`SearchScratch`] — bounded top-k selection (size-`k` max-heap with a
//!   running short-circuit bound), so k-NN never materialises or sorts the
//!   full candidate set; pooled per worker by the serving tier,
//! * [`Bitmap`] / [`IdMask`] — roaring-style compressed id sets with
//!   AND/OR/AND-NOT algebra, and the dense scan-time mask that lets the
//!   arena kernels skip rows outside a precompiled candidate set — the
//!   substrate of bitmap-prefiltered filtered search (experiment E13).

#![deny(missing_docs)]

pub mod arena;
pub mod bitmap;
pub mod code;
pub mod float_knn;
pub mod hashtable;
pub mod linear;
pub mod lsh;
pub mod mih;
pub mod sharded;
pub mod topk;

pub use arena::CodeArena;
pub use bitmap::{Bitmap, IdMask};
pub use code::BinaryCode;
pub use float_knn::{DistanceMetric, FloatKnnIndex};
pub use hashtable::HashTableIndex;
pub use linear::LinearScanIndex;
pub use lsh::RandomHyperplaneHasher;
pub use mih::MultiIndexHashing;
pub use sharded::ShardedHashIndex;
pub use topk::SearchScratch;

/// Identifier of an indexed item (a patch id in EarthQube).
pub type ItemId = u64;

/// A search hit: an item id together with its Hamming distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// The indexed item.
    pub id: ItemId,
    /// Hamming distance from the query code.
    pub distance: u32,
}

impl Neighbor {
    /// Creates a neighbour record.
    pub fn new(id: ItemId, distance: u32) -> Self {
        Self { id, distance }
    }
}

/// Orders neighbours by distance, then by id for determinism.
pub fn sort_neighbors(neighbors: &mut [Neighbor]) {
    neighbors.sort_unstable_by(|a, b| a.distance.cmp(&b.distance).then(a.id.cmp(&b.id)));
}

/// Common interface of the Hamming-space indexes, so that benchmarks and
/// the EarthQube CBIR service can swap implementations.
pub trait HammingIndex {
    /// Inserts an item with the given code.
    fn insert(&mut self, id: ItemId, code: BinaryCode);

    /// Returns all items within Hamming distance `radius` of `query`,
    /// sorted by distance then id.
    fn radius_search(&self, query: &BinaryCode, radius: u32) -> Vec<Neighbor>;

    /// Returns the `k` nearest items (ties broken by id), sorted by
    /// distance then id.
    fn knn(&self, query: &BinaryCode, k: usize) -> Vec<Neighbor>;

    /// Number of indexed items.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_sorting_is_by_distance_then_id() {
        let mut v = vec![Neighbor::new(5, 2), Neighbor::new(1, 2), Neighbor::new(9, 0)];
        sort_neighbors(&mut v);
        assert_eq!(v, vec![Neighbor::new(9, 0), Neighbor::new(1, 2), Neighbor::new(5, 2)]);
    }
}
