//! Random-hyperplane hashing (sign-random-projection LSH).
//!
//! This is the "no metric learning" baseline of experiment E2: instead of
//! the trained MiLaN hashing head, codes are produced by projecting the
//! float feature vector onto random hyperplanes and taking signs.  Cosine
//! similarity is approximately preserved, but — unlike MiLaN — nothing pulls
//! semantically similar images together, which is exactly the gap the
//! experiment quantifies.

use crate::code::BinaryCode;

/// A sign-random-projection hasher: `code_bits` random hyperplanes in
/// `input_dim` dimensions.
#[derive(Debug, Clone)]
pub struct RandomHyperplaneHasher {
    input_dim: usize,
    code_bits: u32,
    /// Row-major `code_bits × input_dim` projection matrix.
    projections: Vec<f32>,
}

impl RandomHyperplaneHasher {
    /// Creates a hasher with hyperplane normals drawn deterministically
    /// from `seed` (a simple xorshift-based normal approximation; no
    /// external RNG dependency needed at this layer).
    ///
    /// # Panics
    /// Panics if `input_dim == 0` or `code_bits == 0`.
    pub fn new(input_dim: usize, code_bits: u32, seed: u64) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        assert!(code_bits > 0, "code width must be positive");
        let mut state = seed | 1;
        let mut next_uniform = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = input_dim * code_bits as usize;
        let mut projections = Vec::with_capacity(n);
        for _ in 0..n {
            // Irwin–Hall approximation of a standard normal.
            let s: f64 = (0..12).map(|_| next_uniform()).sum::<f64>() - 6.0;
            projections.push(s as f32);
        }
        Self { input_dim, code_bits, projections }
    }

    /// Input feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output code width in bits.
    pub fn code_bits(&self) -> u32 {
        self.code_bits
    }

    /// Hashes a feature vector into a binary code.
    ///
    /// # Panics
    /// Panics if `features.len() != input_dim`.
    pub fn hash(&self, features: &[f32]) -> BinaryCode {
        assert_eq!(features.len(), self.input_dim, "feature dimension mismatch");
        let mut signs = Vec::with_capacity(self.code_bits as usize);
        for b in 0..self.code_bits as usize {
            let row = &self.projections[b * self.input_dim..(b + 1) * self.input_dim];
            let dot: f32 = row.iter().zip(features.iter()).map(|(w, x)| w * x).sum();
            signs.push(dot);
        }
        BinaryCode::from_signs(&signs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, idx: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[idx] = 1.0;
        v
    }

    #[test]
    fn construction_and_shape() {
        let h = RandomHyperplaneHasher::new(16, 32, 7);
        assert_eq!(h.input_dim(), 16);
        assert_eq!(h.code_bits(), 32);
        let code = h.hash(&unit(16, 0));
        assert_eq!(code.bits(), 32);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_dimension_panics() {
        let h = RandomHyperplaneHasher::new(8, 16, 1);
        let _ = h.hash(&[0.0; 4]);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = RandomHyperplaneHasher::new(12, 64, 99);
        let b = RandomHyperplaneHasher::new(12, 64, 99);
        let x: Vec<f32> = (0..12).map(|i| (i as f32).sin()).collect();
        assert_eq!(a.hash(&x), b.hash(&x));
    }

    #[test]
    fn different_seeds_give_different_codes() {
        let a = RandomHyperplaneHasher::new(12, 64, 1);
        let b = RandomHyperplaneHasher::new(12, 64, 2);
        let x: Vec<f32> = (0..12).map(|i| (i as f32).cos()).collect();
        assert_ne!(a.hash(&x), b.hash(&x));
    }

    #[test]
    fn scaling_a_vector_does_not_change_its_code() {
        let h = RandomHyperplaneHasher::new(10, 32, 5);
        let x: Vec<f32> = (0..10).map(|i| i as f32 - 4.5).collect();
        let x2: Vec<f32> = x.iter().map(|v| v * 7.5).collect();
        assert_eq!(h.hash(&x), h.hash(&x2));
    }

    #[test]
    fn opposite_vectors_get_complementary_codes() {
        let h = RandomHyperplaneHasher::new(10, 64, 5);
        let x: Vec<f32> = (0..10).map(|i| (i as f32 * 0.77).sin() + 0.1).collect();
        let neg: Vec<f32> = x.iter().map(|v| -v).collect();
        let cx = h.hash(&x);
        let cn = h.hash(&neg);
        // Sign projections flip for every hyperplane with a non-zero dot
        // product, so the distance must be (close to) the full width.
        assert!(cx.hamming_distance(&cn) >= 60);
    }

    #[test]
    fn similar_vectors_get_closer_codes_than_dissimilar_ones() {
        let h = RandomHyperplaneHasher::new(32, 128, 11);
        let base: Vec<f32> = (0..32).map(|i| ((i * 13 % 7) as f32) - 3.0).collect();
        let near: Vec<f32> = base.iter().map(|v| v + 0.05).collect();
        let far: Vec<f32> = base.iter().map(|v| -v + 1.0).collect();
        let d_near = h.hash(&base).hamming_distance(&h.hash(&near));
        let d_far = h.hash(&base).hamming_distance(&h.hash(&far));
        assert!(
            d_near < d_far,
            "LSH should approximately preserve cosine similarity (near={d_near}, far={d_far})"
        );
    }
}
