//! A sharded Hamming index for concurrent query serving.
//!
//! [`ShardedHashIndex`] splits one logical [`HashTableIndex`] into `N`
//! independently-locked shards.  Every code is routed to a shard by a
//! deterministic hash of its bit pattern, so identical codes always share a
//! shard (and a bucket within it).  Searches fan out over all shards —
//! each under its own read lock — and merge the per-shard hit lists, so
//! many reader threads proceed in parallel and a writer only ever blocks
//! the single shard it is inserting into, never the whole index.
//!
//! Determinism: the merged results are sorted with [`sort_neighbors`]
//! (distance, then id), exactly like the unsharded index, so a sharded
//! search returns *byte-identical* results to [`HashTableIndex`] over the
//! same items.  For `knn` this holds because one bounded top-`k` selection
//! (a [`SearchScratch`] heap) is threaded across every shard's
//! [`CodeArena`](crate::CodeArena) in turn: the heap sees the union of all
//! rows, so its `k` survivors are the global top-`k` by construction — no
//! per-shard result lists, no merge-then-truncate.
//!
//! Memory layout: each shard owns its own arena (inside its
//! [`HashTableIndex`]), so a fan-out search is `N` sequential streams —
//! each under its own read lock — rather than one pointer chase over a
//! shared `HashMap`.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::RwLock;

use crate::code::BinaryCode;
use crate::hashtable::HashTableIndex;
use crate::topk::SearchScratch;
use crate::{sort_neighbors, HammingIndex, ItemId, Neighbor};

/// Default number of shards used by [`ShardedHashIndex::with_default_shards`].
pub const DEFAULT_SHARDS: usize = 8;

/// A concurrently searchable Hamming index: `N` independently-locked
/// [`HashTableIndex`] shards with fan-out/merge search.
///
/// All operations — including [`insert`](Self::insert) — take `&self`, so
/// the index can be shared across threads (`Arc<ShardedHashIndex>` or a
/// plain borrow inside [`std::thread::scope`]) without an external lock.
#[derive(Debug)]
pub struct ShardedHashIndex {
    bits: u32,
    shards: Vec<RwLock<HashTableIndex>>,
    /// Per-shard dirty flags for incremental checkpointing: set by every
    /// insert into the shard, drained at a checkpoint cut.  A `false`
    /// flag certifies "this shard is byte-identical to its last persisted
    /// chunk", so the checkpointer can skip it entirely.
    dirty: Vec<AtomicBool>,
}

impl ShardedHashIndex {
    /// Creates an empty index for codes of the given width, split into
    /// `shards` independently-locked shards.
    ///
    /// # Panics
    /// Panics if `bits == 0` or `shards == 0`.
    pub fn new(bits: u32, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            bits,
            shards: (0..shards)
                .map(|_| RwLock::with_name(HashTableIndex::new(bits), "index-shard"))
                .collect(),
            dirty: (0..shards).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Creates an index with [`DEFAULT_SHARDS`] shards.
    pub fn with_default_shards(bits: u32) -> Self {
        Self::new(bits, DEFAULT_SHARDS)
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of items stored in each shard, in shard order (the per-shard
    /// occupancy reported by `ServerStats` in `eq_earthqube`).
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }

    /// The shard a code is routed to: an FNV-1a hash of the code words,
    /// reduced modulo the shard count.  Process-independent, so shard
    /// layout is reproducible across runs.
    fn shard_of(&self, code: &BinaryCode) -> usize {
        (fnv1a(code.words()) % self.shards.len() as u64) as usize
    }

    /// Inserts an item, write-locking only the shard its code hashes to.
    ///
    /// # Panics
    /// Panics if the code width does not match the index.
    pub fn insert(&self, id: ItemId, code: BinaryCode) {
        assert_eq!(code.bits(), self.bits, "code width does not match the index");
        let shard = self.shard_of(&code);
        self.shards[shard].write().insert(id, code);
        self.dirty[shard].store(true, Ordering::Release);
    }

    /// Indices of the shards touched since the last drain, in shard order
    /// (without draining them).
    pub fn dirty_shards(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|&i| self.dirty[i].load(Ordering::Acquire)).collect()
    }

    /// Whether any shard was touched since the last drain.
    pub fn has_dirty_shards(&self) -> bool {
        self.dirty.iter().any(|flag| flag.load(Ordering::Acquire))
    }

    /// Drains the dirty flags: returns the indices of the touched shards
    /// and resets every flag — the checkpoint cut.
    pub fn take_dirty_shards(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|&i| self.dirty[i].swap(false, Ordering::AcqRel)).collect()
    }

    /// Re-marks shards as dirty, so a failed checkpoint re-persists them
    /// on its next attempt.
    pub fn mark_shards_dirty(&self, shards: &[usize]) {
        for &i in shards {
            if let Some(flag) = self.dirty.get(i) {
                flag.store(true, Ordering::Release);
            }
        }
    }

    /// A deep copy of one shard's table — what an incremental checkpoint
    /// clones at the cut (under the brief lock) and encodes off-lock.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn clone_shard(&self, shard: usize) -> HashTableIndex {
        self.shards[shard].read().clone()
    }

    /// Rebuilds an index from per-shard tables restored from chunk files.
    /// The shard *layout* is taken verbatim — codes are not re-routed —
    /// so the rebuilt index is item-for-item identical to the one whose
    /// shards were persisted.  All dirty flags start clear.
    ///
    /// # Panics
    /// Panics if `shards` is empty or any table's code width differs from
    /// `bits`; callers decode and validate widths before assembling.
    pub fn from_shards(bits: u32, shards: Vec<HashTableIndex>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let n = shards.len();
        Self {
            bits,
            shards: shards
                .into_iter()
                .inspect(|table| {
                    assert_eq!(table.bits(), bits, "shard width does not match the index")
                })
                .map(|table| RwLock::with_name(table, "index-shard"))
                .collect(),
            dirty: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Returns all items within Hamming distance `radius` of `query`,
    /// sorted by distance then id — fan-out over every shard, merge.
    ///
    /// Each shard appends its hits straight into one shared buffer (its
    /// adaptively chosen strategy scans the shard arena or enumerates
    /// probes), so the fan-out allocates one output list, not one per
    /// shard.
    pub fn radius_search(&self, query: &BinaryCode, radius: u32) -> Vec<Neighbor> {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.read().radius_search_into(query, radius, &mut out);
        }
        sort_neighbors(&mut out);
        out
    }

    /// Returns the `k` nearest items (ties broken by id), sorted by
    /// distance then id.
    pub fn knn(&self, query: &BinaryCode, k: usize) -> Vec<Neighbor> {
        self.knn_with(query, k, &mut SearchScratch::new()).to_vec()
    }

    /// Bounded k-NN through a caller-owned scratch: **one** size-`k` heap
    /// is threaded across every shard's arena in turn (each under its own
    /// read lock), so the selection sees the union of all rows and its
    /// survivors are the exact global top-`k` — no per-shard result lists,
    /// no full sort, and zero allocation once the scratch is warm.  The
    /// returned slice borrows the scratch; copy it out before reusing.
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn knn_with<'s>(
        &self,
        query: &BinaryCode,
        k: usize,
        scratch: &'s mut SearchScratch,
    ) -> &'s [Neighbor] {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        scratch.begin(k);
        for shard in &self.shards {
            scratch.scan_arena(shard.read().arena(), query.words());
        }
        scratch.finish()
    }

    /// Masked radius search: appends every item within `radius` of `query`
    /// whose id is in `mask` to `out` (unsorted — the caller sorts once
    /// after the fan-out merge, like the flat index's masked scan).  Each
    /// shard's arena is scanned through the masked kernel under its own
    /// read lock, so rows outside the mask never pay for a distance
    /// computation.
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn radius_search_masked_into(
        &self,
        query: &BinaryCode,
        radius: u32,
        mask: &crate::bitmap::IdMask,
        out: &mut Vec<Neighbor>,
    ) {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        for shard in &self.shards {
            shard.read().radius_search_masked_into(query, radius, mask, out);
        }
    }

    /// Masked bounded k-NN: one size-`k` selection threaded across every
    /// shard's arena through the masked kernel, yielding the exact global
    /// top-`k` *of the masked subset*.  The returned slice borrows the
    /// scratch; copy it out before reusing.
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn knn_masked_with<'s>(
        &self,
        query: &BinaryCode,
        k: usize,
        mask: &crate::bitmap::IdMask,
        scratch: &'s mut SearchScratch,
    ) -> &'s [Neighbor] {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        scratch.begin(k);
        for shard in &self.shards {
            scratch.scan_arena_masked(shard.read().arena(), query.words(), mask);
        }
        scratch.finish()
    }

    /// Total number of indexed items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the index: `bits:u32`, shard count, then every shard's
    /// bucket table in shard order.  The shard *layout* is persisted
    /// verbatim — codes are not re-routed on restore — so a restored index
    /// is item-for-item identical to the snapshotted one and keeps the
    /// flat/sharded search equivalence.
    pub fn encode(&self, w: &mut eq_wire::Writer) {
        w.u32(self.bits);
        w.seq_len(self.shards.len());
        for shard in &self.shards {
            shard.read().encode(w);
        }
    }

    /// Decodes an index written by [`encode`](Self::encode).
    ///
    /// # Errors
    /// Returns a [`eq_wire::WireError`] on truncation, a zero width or
    /// shard count, or a shard whose code width disagrees with the index;
    /// never panics.
    pub fn decode(r: &mut eq_wire::Reader<'_>) -> Result<Self, eq_wire::WireError> {
        let bits = r.u32()?;
        if bits == 0 {
            return Err(eq_wire::WireError::Corrupt("sharded index of code width 0".into()));
        }
        let n_shards = r.seq_len(1)?;
        if n_shards == 0 {
            return Err(eq_wire::WireError::Corrupt("sharded index with zero shards".into()));
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let table = HashTableIndex::decode(r)?;
            if table.bits() != bits {
                return Err(eq_wire::WireError::Corrupt(format!(
                    "shard of {} -bit codes in a {bits}-bit index",
                    table.bits()
                )));
            }
            shards.push(RwLock::with_name(table, "index-shard"));
        }
        let dirty = (0..n_shards).map(|_| AtomicBool::new(false)).collect();
        Ok(Self { bits, shards, dirty })
    }
}

impl HammingIndex for ShardedHashIndex {
    fn insert(&mut self, id: ItemId, code: BinaryCode) {
        ShardedHashIndex::insert(self, id, code);
    }

    fn radius_search(&self, query: &BinaryCode, radius: u32) -> Vec<Neighbor> {
        ShardedHashIndex::radius_search(self, query, radius)
    }

    fn knn(&self, query: &BinaryCode, k: usize) -> Vec<Neighbor> {
        ShardedHashIndex::knn(self, query, k)
    }

    fn len(&self) -> usize {
        ShardedHashIndex::len(self)
    }
}

/// FNV-1a over a word slice; fixed offset/prime so shard routing is
/// deterministic across processes (unlike `std`'s randomised hasher).
fn fnv1a(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &word in words {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScanIndex;

    fn rand_code(bits: u32, seed: u64) -> BinaryCode {
        // SplitMix64-style expansion: deterministic, well mixed.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let words: Vec<u64> = (0..bits.div_ceil(64)).map(|_| next()).collect();
        BinaryCode::from_words(bits, words)
    }

    #[test]
    fn sharded_results_match_the_unsharded_index_exactly() {
        let sharded = ShardedHashIndex::new(64, 5);
        let mut flat = HashTableIndex::new(64);
        let mut linear = LinearScanIndex::new(64);
        for i in 0..400u64 {
            // Low-entropy codes so buckets collide and ties exercise id ordering.
            let code = rand_code(64, i / 3);
            sharded.insert(i, code.clone());
            flat.insert(i, code.clone());
            linear.insert(i, code);
        }
        assert_eq!(sharded.len(), 400);
        for q in 0..10u64 {
            let query = rand_code(64, q);
            for radius in [0, 2, 8, 20] {
                assert_eq!(
                    sharded.radius_search(&query, radius),
                    flat.radius_search(&query, radius),
                    "radius {radius} disagrees"
                );
            }
            for k in [1, 5, 17, 500] {
                let got = sharded.knn(&query, k);
                assert_eq!(got, flat.knn(&query, k), "knn k={k} disagrees with hash table");
                assert_eq!(got, linear.knn(&query, k), "knn k={k} disagrees with linear scan");
            }
        }
    }

    #[test]
    fn masked_search_matches_the_flat_index_and_the_post_filtered_scan() {
        use crate::bitmap::{Bitmap, IdMask};
        let sharded = ShardedHashIndex::new(64, 5);
        let mut flat = HashTableIndex::new(64);
        for i in 0..400u64 {
            let code = rand_code(64, i / 3);
            sharded.insert(i, code.clone());
            flat.insert(i, code);
        }
        let bitmap: Bitmap = (0..400u64).filter(|id| id % 5 == 0).collect();
        let mask = IdMask::from_bitmap(&bitmap);
        let mut scratch = SearchScratch::new();
        for q in 0..6u64 {
            let query = rand_code(64, q);
            // Radius: sharded masked == flat masked == unmasked-then-filter.
            let mut sharded_hits = Vec::new();
            sharded.radius_search_masked_into(&query, 12, &mask, &mut sharded_hits);
            sort_neighbors(&mut sharded_hits);
            let mut flat_hits = Vec::new();
            flat.radius_search_masked_into(&query, 12, &mask, &mut flat_hits);
            sort_neighbors(&mut flat_hits);
            let mut reference = sharded.radius_search(&query, 12);
            reference.retain(|n| mask.contains(n.id));
            assert_eq!(sharded_hits, reference, "query {q}");
            assert_eq!(flat_hits, reference, "query {q}");
            // k-NN: masked selection == post-filtered full ranking prefix.
            let got = sharded.knn_masked_with(&query, 9, &mask, &mut scratch).to_vec();
            let mut want = sharded.knn(&query, 400);
            want.retain(|n| mask.contains(n.id));
            want.truncate(9);
            assert_eq!(got, want, "query {q}");
            let flat_got = flat.knn_masked_with(&query, 9, &mask, &mut scratch).to_vec();
            assert_eq!(flat_got, want, "query {q}");
        }
    }

    #[test]
    fn items_are_spread_over_multiple_shards() {
        let idx = ShardedHashIndex::new(32, 4);
        for i in 0..256u64 {
            idx.insert(i, rand_code(32, i));
        }
        let occupancy = idx.shard_occupancy();
        assert_eq!(occupancy.len(), 4);
        assert_eq!(occupancy.iter().sum::<usize>(), 256);
        assert!(occupancy.iter().all(|&n| n > 0), "all shards should receive items: {occupancy:?}");
    }

    #[test]
    fn identical_codes_land_in_the_same_shard() {
        let idx = ShardedHashIndex::new(16, 8);
        let code = rand_code(16, 7);
        idx.insert(1, code.clone());
        idx.insert(2, code.clone());
        let occupancy = idx.shard_occupancy();
        assert_eq!(occupancy.iter().filter(|&&n| n > 0).count(), 1);
        let hits = idx.radius_search(&code, 0);
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn concurrent_inserts_and_searches_do_not_lose_items() {
        let idx = ShardedHashIndex::new(64, 4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = &idx;
                s.spawn(move || {
                    for i in 0..100u64 {
                        idx.insert(t * 100 + i, rand_code(64, t * 100 + i));
                        // Interleave searches with the writes.
                        let _ = idx.knn(&rand_code(64, i), 3);
                    }
                });
            }
        });
        assert_eq!(idx.len(), 400);
    }

    #[test]
    fn dirty_flags_track_only_touched_shards() {
        let idx = ShardedHashIndex::new(16, 8);
        assert!(!idx.has_dirty_shards());
        assert!(idx.take_dirty_shards().is_empty());

        // Two identical codes route to one shard: exactly one flag set.
        let code = rand_code(16, 7);
        idx.insert(1, code.clone());
        idx.insert(2, code);
        assert!(idx.has_dirty_shards());
        let dirty = idx.dirty_shards();
        assert_eq!(dirty.len(), 1, "identical codes share a shard: {dirty:?}");

        // Draining resets; restoring re-marks.
        let drained = idx.take_dirty_shards();
        assert_eq!(drained, dirty);
        assert!(!idx.has_dirty_shards());
        idx.mark_shards_dirty(&drained);
        assert_eq!(idx.dirty_shards(), drained);
        // Out-of-range restore indices are ignored, not panicked on.
        idx.mark_shards_dirty(&[999]);
        assert_eq!(idx.dirty_shards(), drained);
    }

    #[test]
    fn clone_shard_and_from_shards_rebuild_identically() {
        let idx = ShardedHashIndex::new(64, 5);
        for i in 0..200u64 {
            idx.insert(i, rand_code(64, i / 2));
        }
        let tables: Vec<HashTableIndex> =
            (0..idx.shard_count()).map(|s| idx.clone_shard(s)).collect();
        let rebuilt = ShardedHashIndex::from_shards(64, tables);
        assert!(!rebuilt.has_dirty_shards(), "a rebuilt index starts clean");
        assert_eq!(rebuilt.shard_occupancy(), idx.shard_occupancy());
        for q in 0..6u64 {
            let query = rand_code(64, q);
            assert_eq!(rebuilt.knn(&query, 9), idx.knn(&query, 9));
            assert_eq!(rebuilt.radius_search(&query, 5), idx.radius_search(&query, 5));
        }
        // Encodings agree byte-for-byte, so persisted chunks are stable.
        let (mut a, mut b) = (eq_wire::Writer::new(), eq_wire::Writer::new());
        idx.encode(&mut a);
        rebuilt.encode(&mut b);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    #[should_panic(expected = "shard width does not match")]
    fn from_shards_rejects_mismatched_widths() {
        let _ = ShardedHashIndex::from_shards(
            64,
            vec![HashTableIndex::new(64), HashTableIndex::new(32)],
        );
    }

    #[test]
    fn trait_object_usability() {
        let mut idx: Box<dyn HammingIndex> = Box::new(ShardedHashIndex::new(8, 2));
        idx.insert(1, BinaryCode::zeros(8));
        idx.insert(2, BinaryCode::zeros(8).with_flipped_bit(3));
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
        let hits = idx.radius_search(&BinaryCode::zeros(8), 1);
        assert_eq!(hits.len(), 2);
        assert_eq!(idx.knn(&BinaryCode::zeros(8), 1)[0].id, 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn insert_rejects_wrong_width() {
        let idx = ShardedHashIndex::new(8, 2);
        idx.insert(1, BinaryCode::zeros(16));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        let _ = ShardedHashIndex::new(8, 0);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_layout_and_results() {
        let idx = ShardedHashIndex::new(64, 5);
        for i in 0..300u64 {
            idx.insert(i, rand_code(64, i / 2));
        }
        let mut w = eq_wire::Writer::new();
        idx.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = eq_wire::Reader::new(&bytes);
        let back = ShardedHashIndex::decode(&mut r).unwrap();
        assert!(r.is_empty(), "index encoding is self-delimiting");
        assert_eq!(back.bits(), idx.bits());
        assert_eq!(back.shard_occupancy(), idx.shard_occupancy(), "layout must be verbatim");
        for q in 0..6u64 {
            let query = rand_code(64, q);
            assert_eq!(back.knn(&query, 13), idx.knn(&query, 13));
            assert_eq!(back.radius_search(&query, 6), idx.radius_search(&query, 6));
        }
        // Deterministic encoding: same logical state, same bytes.
        let mut w2 = eq_wire::Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn truncated_encodings_error_cleanly() {
        let idx = ShardedHashIndex::new(32, 3);
        for i in 0..40u64 {
            idx.insert(i, rand_code(32, i));
        }
        let mut w = eq_wire::Writer::new();
        idx.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = eq_wire::Reader::new(&bytes[..cut]);
            assert!(
                ShardedHashIndex::decode(&mut r).is_err(),
                "strict prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }
}
