//! Exact k-nearest-neighbour search over raw float feature vectors.
//!
//! This is the "no hashing at all" baseline of experiments E1/E2: the
//! archive features are kept as float vectors and every query scans all of
//! them with an exact distance.  It gives the best possible retrieval
//! quality for a given feature space at the highest query cost, which is
//! precisely the trade-off deep hashing addresses.

use crate::{ItemId, Neighbor};

/// Distance metric used by [`FloatKnnIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMetric {
    /// Euclidean (L2) distance.
    Euclidean,
    /// Cosine distance (`1 − cosine similarity`).
    Cosine,
}

/// A float-vector hit with its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatNeighbor {
    /// The indexed item.
    pub id: ItemId,
    /// Distance to the query under the index metric.
    pub distance: f32,
}

/// Brute-force exact k-NN index over dense float vectors.
#[derive(Debug, Clone)]
pub struct FloatKnnIndex {
    dim: usize,
    metric: DistanceMetric,
    ids: Vec<ItemId>,
    /// Flattened row-major storage, one row per item.
    data: Vec<f32>,
    /// Cached L2 norms (used by the cosine metric).
    norms: Vec<f32>,
}

impl FloatKnnIndex {
    /// Creates an empty index for vectors of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, metric: DistanceMetric) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, metric, ids: Vec::new(), data: Vec::new(), norms: Vec::new() }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The metric in use.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Inserts a vector.
    ///
    /// # Panics
    /// Panics if `vector.len() != dim`.
    pub fn insert(&mut self, id: ItemId, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        self.ids.push(id);
        self.data.extend_from_slice(vector);
        self.norms.push(l2_norm(vector));
    }

    fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    fn distance(&self, i: usize, query: &[f32], query_norm: f32) -> f32 {
        let row = self.row(i);
        match self.metric {
            DistanceMetric::Euclidean => {
                row.iter().zip(query.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt()
            }
            DistanceMetric::Cosine => {
                let dot: f32 = row.iter().zip(query.iter()).map(|(a, b)| a * b).sum();
                let denom = self.norms[i] * query_norm;
                if denom <= f32::EPSILON {
                    1.0
                } else {
                    1.0 - (dot / denom).clamp(-1.0, 1.0)
                }
            }
        }
    }

    /// Returns the `k` nearest vectors, sorted by distance then id.
    ///
    /// # Panics
    /// Panics if `query.len() != dim`.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<FloatNeighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let qn = l2_norm(query);
        let mut all: Vec<FloatNeighbor> = (0..self.ids.len())
            .map(|i| FloatNeighbor { id: self.ids[i], distance: self.distance(i, query, qn) })
            .collect();
        all.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        all.truncate(k);
        all
    }

    /// Returns all vectors within `max_distance` of the query, sorted by
    /// distance then id.
    pub fn range_search(&self, query: &[f32], max_distance: f32) -> Vec<FloatNeighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let qn = l2_norm(query);
        let mut hits: Vec<FloatNeighbor> = (0..self.ids.len())
            .filter_map(|i| {
                let d = self.distance(i, query, qn);
                (d <= max_distance).then_some(FloatNeighbor { id: self.ids[i], distance: d })
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits
    }

    /// Converts float hits to the integer-distance [`Neighbor`] type by
    /// rank (distance field becomes the rank); lets quality metrics treat
    /// all indexes uniformly.
    pub fn to_ranked_neighbors(hits: &[FloatNeighbor]) -> Vec<Neighbor> {
        hits.iter().enumerate().map(|(rank, h)| Neighbor::new(h.id, rank as u32)).collect()
    }
}

fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(metric: DistanceMetric) -> FloatKnnIndex {
        let mut idx = FloatKnnIndex::new(3, metric);
        idx.insert(1, &[1.0, 0.0, 0.0]);
        idx.insert(2, &[0.0, 1.0, 0.0]);
        idx.insert(3, &[1.0, 1.0, 0.0]);
        idx.insert(4, &[10.0, 0.0, 0.0]);
        idx
    }

    #[test]
    fn euclidean_knn_orders_by_distance() {
        let idx = sample(DistanceMetric::Euclidean);
        let hits = idx.knn(&[1.0, 0.0, 0.0], 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 1);
        assert!((hits[0].distance - 0.0).abs() < 1e-6);
        assert_eq!(hits[1].id, 3);
        assert_eq!(hits[2].id, 2);
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let idx = sample(DistanceMetric::Cosine);
        let hits = idx.knn(&[1.0, 0.0, 0.0], 2);
        // Both id 1 and id 4 point in the same direction → distance ~0.
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![1, 4]);
        assert!(hits[1].distance < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_max_distance() {
        let mut idx = FloatKnnIndex::new(2, DistanceMetric::Cosine);
        idx.insert(1, &[0.0, 0.0]);
        let hits = idx.knn(&[1.0, 0.0], 1);
        assert!((hits[0].distance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn range_search_filters() {
        let idx = sample(DistanceMetric::Euclidean);
        let hits = idx.range_search(&[1.0, 0.0, 0.0], 1.01);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![1, 3]);
        assert!(idx.range_search(&[100.0, 100.0, 100.0], 0.5).is_empty());
    }

    #[test]
    fn knn_edge_cases() {
        let idx = sample(DistanceMetric::Euclidean);
        assert!(idx.knn(&[0.0; 3], 0).is_empty());
        assert_eq!(idx.knn(&[0.0; 3], 100).len(), 4);
        let empty = FloatKnnIndex::new(3, DistanceMetric::Euclidean);
        assert!(empty.knn(&[0.0; 3], 5).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_rejects_wrong_dimension() {
        let mut idx = FloatKnnIndex::new(3, DistanceMetric::Euclidean);
        idx.insert(1, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_rejects_wrong_dimension() {
        let idx = sample(DistanceMetric::Euclidean);
        let _ = idx.knn(&[1.0, 2.0], 1);
    }

    #[test]
    fn ranked_neighbors_preserve_order() {
        let idx = sample(DistanceMetric::Euclidean);
        let hits = idx.knn(&[1.0, 0.0, 0.0], 3);
        let ranked = FloatKnnIndex::to_ranked_neighbors(&hits);
        assert_eq!(ranked[0], Neighbor::new(1, 0));
        assert_eq!(ranked[1], Neighbor::new(3, 1));
        assert_eq!(ranked[2], Neighbor::new(2, 2));
    }
}
