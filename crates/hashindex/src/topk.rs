//! Bounded top-k selection over arena scans.
//!
//! A k-NN query used to materialise *every* match, sort the full list and
//! truncate to `k` — O(n log n) work and an O(n) allocation per query even
//! when the caller wants ten neighbours out of forty thousand codes.
//! [`SearchScratch`] replaces that with a size-`k` max-heap threaded
//! through the scan: a candidate only enters the heap if it beats the
//! current k-th best, the running bound short-circuits every worse row
//! with a single compare, and only the final `k` survivors are sorted.
//!
//! The scratch owns all its buffers and is reusable across queries, so a
//! pooled scratch (see `QueryServer` in `eq_earthqube`) makes steady-state
//! k-NN serving allocation-free.
//!
//! Exactness: the heap orders candidates by `(distance, id)` — the same
//! total order [`sort_neighbors`](crate::sort_neighbors) uses — so the
//! surviving `k` are exactly the first `k` elements of the full sorted
//! list, ties and all.  The property suite in
//! `tests/proptest_arena.rs` pins this against full-sort-then-truncate.

use crate::arena::CodeArena;
use crate::bitmap::IdMask;
use crate::{ItemId, Neighbor};

/// Reusable scratch state for bounded top-k searches: a max-heap of the
/// current `k` best candidates plus the output buffer the sorted winners
/// are written to.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Binary max-heap ordered by `(distance, id)`; the root is the
    /// *worst* of the current best `k`, i.e. the short-circuit bound.
    heap: Vec<Neighbor>,
    /// Requested result size of the selection in progress.
    k: usize,
    /// The sorted winners of the last [`finish`](Self::finish).
    out: Vec<Neighbor>,
}

/// `(distance, id)` lexicographic order — the neighbour sort order.
#[inline]
fn worse(a: &Neighbor, b: &Neighbor) -> bool {
    (a.distance, a.id) > (b.distance, b.id)
}

impl SearchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new top-k selection, clearing previous state and reserving
    /// the heap (a no-op once the scratch is warm).
    pub fn begin(&mut self, k: usize) {
        self.heap.clear();
        self.out.clear();
        self.k = k;
        self.heap.reserve(k);
    }

    /// The current short-circuit bound: the `(distance, id)` of the k-th
    /// best candidate so far, or `None` while the heap is not yet full
    /// (every candidate is accepted then).
    #[inline]
    pub fn bound(&self) -> Option<Neighbor> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.first().copied()
        }
    }

    /// Offers one candidate to the selection.
    #[inline]
    pub fn offer(&mut self, id: ItemId, distance: u32) {
        if self.k == 0 {
            return;
        }
        let candidate = Neighbor::new(id, distance);
        if self.heap.len() < self.k {
            // lint:allow(hot-path) bounded by k and begin() reserves k slots, so the push never grows the heap when warm
            self.heap.push(candidate);
            self.sift_up(self.heap.len() - 1);
        } else if worse(&self.heap[0], &candidate) {
            self.heap[0] = candidate;
            self.sift_down(0);
        }
    }

    /// Scans an entire arena, offering every row.  Once the heap is full,
    /// rows whose distance exceeds the running bound are rejected with a
    /// single compare — no heap traffic — which is what keeps the scan at
    /// memory bandwidth on well-separated codes.
    ///
    /// Callable repeatedly between [`begin`](Self::begin) and
    /// [`finish`](Self::finish): the sharded index fans one selection out
    /// over every shard's arena, which yields the exact global top-k
    /// without per-shard result lists.
    ///
    /// # Panics
    /// Panics if the query width does not match the arena.
    pub fn scan_arena(&mut self, arena: &CodeArena, query: &[u64]) {
        if self.k == 0 {
            // Still validate the query width (for_each_distance would).
            assert_eq!(query.len(), arena.words_per_code(), "query width does not match the arena");
            return;
        }
        // Distances stream out of the arena's width-specialised kernel —
        // the same straight-line XOR/popcount loop the radius scan uses.
        arena.for_each_distance(query, |row, d| {
            // Cheap distance-only rejection first: ids only break ties.
            if let Some(bound) = self.bound() {
                if d > bound.distance {
                    return;
                }
            }
            self.offer(arena.id(row), d);
        });
    }

    /// The masked counterpart of [`scan_arena`](Self::scan_arena): offers
    /// only rows whose id is in `mask`, via the arena's masked kernel —
    /// rows outside the mask never reach the distance computation, let
    /// alone the heap.  Same begin/scan/finish protocol, same exactness:
    /// the survivors are the global top-k *of the masked subset*.
    ///
    /// # Panics
    /// Panics if the query width does not match the arena.
    pub fn scan_arena_masked(&mut self, arena: &CodeArena, query: &[u64], mask: &IdMask) {
        if self.k == 0 {
            assert_eq!(query.len(), arena.words_per_code(), "query width does not match the arena");
            return;
        }
        arena.for_each_distance_masked(query, mask, |row, d| {
            if let Some(bound) = self.bound() {
                if d > bound.distance {
                    return;
                }
            }
            self.offer(arena.id(row), d);
        });
    }

    /// Ends the selection: sorts the (at most `k`) survivors by
    /// `(distance, id)` and returns them.  The slice borrows the scratch —
    /// copy it out before starting the next selection.
    pub fn finish(&mut self) -> &[Neighbor] {
        self.out.clear();
        self.out.extend_from_slice(&self.heap);
        crate::sort_neighbors(&mut self.out);
        &self.out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if worse(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && worse(&self.heap[l], &self.heap[largest]) {
                largest = l;
            }
            if r < n && worse(&self.heap[r], &self.heap[largest]) {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::BinaryCode;
    use crate::sort_neighbors;

    fn rand_code(bits: u32, seed: u64) -> BinaryCode {
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        BinaryCode::from_words(bits, (0..bits.div_ceil(64)).map(|_| next()).collect())
    }

    /// Reference: full sort, then truncate.
    fn full_sort_topk(arena: &CodeArena, query: &[u64], k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = (0..arena.len())
            .map(|r| Neighbor::new(arena.id(r), arena.distance(r, query)))
            .collect();
        sort_neighbors(&mut all);
        all.truncate(k);
        all
    }

    #[test]
    fn topk_matches_full_sort_then_truncate() {
        for bits in [32u32, 128] {
            let mut arena = CodeArena::new(bits);
            // Low-entropy codes force distance ties, exercising id
            // tie-breaks through the heap.
            for i in 0..300u64 {
                arena.push(i, &rand_code(bits, i / 4));
            }
            let query = rand_code(bits, 9999);
            let mut scratch = SearchScratch::new();
            for k in [0usize, 1, 7, 50, 300, 500] {
                scratch.begin(k);
                scratch.scan_arena(&arena, query.words());
                let got = scratch.finish().to_vec();
                assert_eq!(got, full_sort_topk(&arena, query.words(), k), "bits {bits}, k {k}");
            }
        }
    }

    #[test]
    fn multi_arena_selection_is_the_global_topk() {
        // Split rows over three arenas; one selection over all of them
        // must equal the top-k over the union (the sharded fan-out path).
        let mut arenas = vec![CodeArena::new(64), CodeArena::new(64), CodeArena::new(64)];
        let mut union = CodeArena::new(64);
        for i in 0..200u64 {
            let c = rand_code(64, i / 3);
            arenas[(i % 3) as usize].push(i, &c);
            union.push(i, &c);
        }
        let query = rand_code(64, 4242);
        let mut scratch = SearchScratch::new();
        scratch.begin(13);
        for a in &arenas {
            scratch.scan_arena(a, query.words());
        }
        let got = scratch.finish().to_vec();
        assert_eq!(got, full_sort_topk(&union, query.words(), 13));
    }

    #[test]
    fn scratch_is_reusable_without_reallocation() {
        let mut arena = CodeArena::new(64);
        for i in 0..100u64 {
            arena.push(i, &rand_code(64, i));
        }
        let query = rand_code(64, 5);
        let mut scratch = SearchScratch::new();
        // Warm-up pass sizes the buffers.
        scratch.begin(10);
        scratch.scan_arena(&arena, query.words());
        let warm = scratch.finish().to_vec();
        let heap_ptr = scratch.heap.as_ptr();
        let out_ptr = scratch.out.as_ptr();
        for _ in 0..5 {
            scratch.begin(10);
            scratch.scan_arena(&arena, query.words());
            assert_eq!(scratch.finish(), &warm[..]);
        }
        assert_eq!(heap_ptr, scratch.heap.as_ptr(), "warm heap must not reallocate");
        assert_eq!(out_ptr, scratch.out.as_ptr(), "warm output must not reallocate");
    }

    #[test]
    fn bound_tracks_the_kth_best() {
        let mut scratch = SearchScratch::new();
        scratch.begin(2);
        assert!(scratch.bound().is_none());
        scratch.offer(1, 10);
        assert!(scratch.bound().is_none(), "heap not yet full");
        scratch.offer(2, 4);
        assert_eq!(scratch.bound(), Some(Neighbor::new(1, 10)));
        scratch.offer(3, 6);
        assert_eq!(scratch.bound(), Some(Neighbor::new(3, 6)));
        // A worse candidate leaves the heap untouched.
        scratch.offer(4, 7);
        assert_eq!(scratch.bound(), Some(Neighbor::new(3, 6)));
        assert_eq!(scratch.finish(), &[Neighbor::new(2, 4), Neighbor::new(3, 6)]);
    }

    #[test]
    fn masked_topk_is_the_topk_of_the_masked_subset() {
        use crate::bitmap::{Bitmap, IdMask};
        let mut arena = CodeArena::new(128);
        for i in 0..300u64 {
            // Ties via low-entropy codes, as in the unmasked test.
            arena.push(i, &rand_code(128, i / 4));
        }
        let bitmap: Bitmap = (0..300u64).filter(|id| id % 7 < 3).collect();
        let mask = IdMask::from_bitmap(&bitmap);
        let query = rand_code(128, 31337);
        let mut scratch = SearchScratch::new();
        for k in [0usize, 1, 10, 128, 400] {
            scratch.begin(k);
            scratch.scan_arena_masked(&arena, query.words(), &mask);
            let got = scratch.finish().to_vec();
            // Reference: full sort of the masked rows, truncated.
            let mut all: Vec<Neighbor> = (0..arena.len())
                .filter(|&r| mask.contains(arena.id(r)))
                .map(|r| Neighbor::new(arena.id(r), arena.distance(r, query.words())))
                .collect();
            sort_neighbors(&mut all);
            all.truncate(k);
            assert_eq!(got, all, "k {k}");
        }
    }

    #[test]
    fn k_zero_selects_nothing() {
        let mut scratch = SearchScratch::new();
        scratch.begin(0);
        scratch.offer(1, 1);
        assert!(scratch.finish().is_empty());
    }
}
