//! The cache-resident code arena: a flat, structure-of-arrays store for
//! binary codes that turns the Hamming hot path into a contiguous memory
//! scan.
//!
//! Before the arena, every [`BinaryCode`] in a bucket table was its own
//! heap-allocated `Vec<u64>` reached through a `HashMap` — a pointer chase
//! per candidate, which stalls the scan on a cache miss for almost every
//! code it touches.  The arena stores all code words **word-striped and
//! contiguous** (`row * words_per_code .. (row + 1) * words_per_code`
//! inside one `Vec<u64>`) with a parallel `Vec<ItemId>`, so a radius scan
//! is a linear walk the prefetcher can stream at memory bandwidth, and the
//! distance kernel is specialised per code width (1/2/4 words cover 64,
//! 128 and 256-bit codes — MiLaN uses 128) so the XOR/popcount loop fully
//! unrolls.
//!
//! Layout invariants (relied on by the scan kernels and the property
//! tests):
//!
//! * `data.len() == ids.len() * words_per_code` at all times,
//! * row `i` of the arena is the code of `ids[i]`, in **insertion order**
//!   (the arena is append-only; the durable snapshot format is unaffected
//!   because the arena is rebuilt from the decoded buckets on restore),
//! * bits past the logical width of the last word are zero — guaranteed by
//!   [`BinaryCode`]'s own invariant, which the arena copies verbatim.

use crate::bitmap::IdMask;
use crate::code::BinaryCode;
use crate::{ItemId, Neighbor};

/// A flat, append-only, structure-of-arrays store of `(id, code)` rows with
/// width-specialised Hamming-distance scan kernels.
#[derive(Debug, Clone, Default)]
pub struct CodeArena {
    bits: u32,
    words_per_code: usize,
    /// Row-major code words: row `i` occupies
    /// `data[i * words_per_code .. (i + 1) * words_per_code]`.
    data: Vec<u64>,
    /// `ids[i]` is the item stored in row `i`.
    ids: Vec<ItemId>,
}

impl CodeArena {
    /// Creates an empty arena for codes of the given width.
    ///
    /// # Panics
    /// Panics if `bits == 0`.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0, "code width must be positive");
        Self { bits, words_per_code: bits.div_ceil(64) as usize, data: Vec::new(), ids: Vec::new() }
    }

    /// Creates an empty arena with row capacity pre-reserved.
    pub fn with_capacity(bits: u32, rows: usize) -> Self {
        let mut arena = Self::new(bits);
        arena.data.reserve(rows * arena.words_per_code);
        arena.ids.reserve(rows);
        arena
    }

    /// Code width in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of `u64` words per stored code.
    #[inline]
    pub fn words_per_code(&self) -> usize {
        self.words_per_code
    }

    /// Number of stored rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The stored item ids, in row (insertion) order.
    #[inline]
    pub fn ids(&self) -> &[ItemId] {
        &self.ids
    }

    /// The id stored in a row.
    ///
    /// # Panics
    /// Panics if `row >= len()`.
    #[inline]
    pub fn id(&self, row: usize) -> ItemId {
        self.ids[row]
    }

    /// The code words of a row.
    ///
    /// # Panics
    /// Panics if `row >= len()`.
    #[inline]
    pub fn code_words(&self, row: usize) -> &[u64] {
        &self.data[row * self.words_per_code..(row + 1) * self.words_per_code]
    }

    /// Reconstructs the [`BinaryCode`] stored in a row (allocates — for
    /// tests and snapshot tooling, not the hot path).
    pub fn code(&self, row: usize) -> BinaryCode {
        BinaryCode::from_words(self.bits, self.code_words(row).to_vec())
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the code width does not match the arena.
    pub fn push(&mut self, id: ItemId, code: &BinaryCode) {
        assert_eq!(code.bits(), self.bits, "code width does not match the arena");
        self.data.extend_from_slice(code.words());
        self.ids.push(id);
    }

    /// Hamming distance between row `row` and `query` (already validated to
    /// have `words_per_code` words).
    #[inline]
    pub fn distance(&self, row: usize, query: &[u64]) -> u32 {
        debug_assert_eq!(query.len(), self.words_per_code);
        hamming_words(self.code_words(row), query)
    }

    /// Streams the Hamming distance of every row to `query` through
    /// `visit(row, distance)`, in row order.  **The one copy of the scan
    /// kernel**: the width specialisation lives here and nowhere else —
    /// [`distances_into`](Self::distances_into),
    /// [`scan_radius_into`](Self::scan_radius_into) and the bounded top-k
    /// selection (`SearchScratch::scan_arena`) are all thin visitors over
    /// this loop, so every scan path gets the same specialised code and a
    /// future kernel change (wider codes, SIMD) happens in one place.
    ///
    /// The 1/2/4-word arms (64, 128 and 256-bit codes — MiLaN uses 128)
    /// are straight-line XOR/popcount with no inner loop: the compiler
    /// keeps the query words in registers, `visit` is inlined per call
    /// site, and the only memory traffic is the sequential arena stream.
    ///
    /// # Panics
    /// Panics if `query.len() != words_per_code()`.
    #[inline]
    pub fn for_each_distance(&self, query: &[u64], mut visit: impl FnMut(usize, u32)) {
        assert_eq!(query.len(), self.words_per_code, "query width does not match the arena");
        match self.words_per_code {
            1 => {
                let q = query[0];
                for (row, &w) in self.data.iter().enumerate() {
                    visit(row, (w ^ q).count_ones());
                }
            }
            2 => {
                let (q0, q1) = (query[0], query[1]);
                for (row, words) in self.data.chunks_exact(2).enumerate() {
                    visit(row, (words[0] ^ q0).count_ones() + (words[1] ^ q1).count_ones());
                }
            }
            4 => {
                let (q0, q1, q2, q3) = (query[0], query[1], query[2], query[3]);
                for (row, words) in self.data.chunks_exact(4).enumerate() {
                    let d = (words[0] ^ q0).count_ones()
                        + (words[1] ^ q1).count_ones()
                        + (words[2] ^ q2).count_ones()
                        + (words[3] ^ q3).count_ones();
                    visit(row, d);
                }
            }
            w => {
                for (row, words) in self.data.chunks_exact(w).enumerate() {
                    visit(row, hamming_words(words, query));
                }
            }
        }
    }

    /// Writes the Hamming distance of every row to `query` into `out`
    /// (cleared and refilled; the caller owns the scratch buffer so
    /// steady-state serving never allocates).
    ///
    /// # Panics
    /// Panics if `query.len() != words_per_code()`.
    pub fn distances_into(&self, query: &[u64], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.ids.len());
        // lint:allow(hot-path) the reserve() above makes every push land in capacity; the buffer is reused across queries
        self.for_each_distance(query, |_, d| out.push(d));
    }

    /// Appends every row within Hamming distance `radius` of `query` to
    /// `out` as [`Neighbor`]s, in row order (the caller sorts — exactly
    /// like the per-bucket scan it replaces, whose emission order was the
    /// `HashMap`'s).  `out` is *not* cleared, so fan-out callers can merge
    /// several arenas into one buffer.
    ///
    /// # Panics
    /// Panics if `query.len() != words_per_code()`.
    pub fn scan_radius_into(&self, query: &[u64], radius: u32, out: &mut Vec<Neighbor>) {
        self.for_each_distance(query, |row, d| {
            if d <= radius {
                // lint:allow(hot-path) the caller owns and reuses the buffer across queries; amortised like the bucket scan this replaced
                out.push(Neighbor::new(self.ids[row], d));
            }
        });
    }

    /// The masked counterpart of
    /// [`for_each_distance`](Self::for_each_distance): streams the Hamming
    /// distance of every row **whose id is in `mask`** through
    /// `visit(row, distance)`, in row order.  The mask probe runs *before*
    /// the XOR/popcount, so on a selective prefilter the kernel's work is
    /// one sequential id load plus a two-instruction bit test per skipped
    /// row — the code words of rejected rows are never touched.
    ///
    /// Kept width-specialised like the unmasked kernel (the mask test
    /// compiles to a register probe inside each arm) rather than layered
    /// as a visitor over `for_each_distance`, which would pay the distance
    /// computation for every rejected row.
    ///
    /// # Panics
    /// Panics if `query.len() != words_per_code()`.
    #[inline]
    pub fn for_each_distance_masked(
        &self,
        query: &[u64],
        mask: &IdMask,
        mut visit: impl FnMut(usize, u32),
    ) {
        assert_eq!(query.len(), self.words_per_code, "query width does not match the arena");
        match self.words_per_code {
            1 => {
                let q = query[0];
                for (row, (&w, &id)) in self.data.iter().zip(self.ids.iter()).enumerate() {
                    if mask.contains(id) {
                        visit(row, (w ^ q).count_ones());
                    }
                }
            }
            2 => {
                let (q0, q1) = (query[0], query[1]);
                for (row, (words, &id)) in
                    self.data.chunks_exact(2).zip(self.ids.iter()).enumerate()
                {
                    if mask.contains(id) {
                        visit(row, (words[0] ^ q0).count_ones() + (words[1] ^ q1).count_ones());
                    }
                }
            }
            4 => {
                let (q0, q1, q2, q3) = (query[0], query[1], query[2], query[3]);
                for (row, (words, &id)) in
                    self.data.chunks_exact(4).zip(self.ids.iter()).enumerate()
                {
                    if mask.contains(id) {
                        let d = (words[0] ^ q0).count_ones()
                            + (words[1] ^ q1).count_ones()
                            + (words[2] ^ q2).count_ones()
                            + (words[3] ^ q3).count_ones();
                        visit(row, d);
                    }
                }
            }
            w => {
                for (row, (words, &id)) in
                    self.data.chunks_exact(w).zip(self.ids.iter()).enumerate()
                {
                    if mask.contains(id) {
                        visit(row, hamming_words(words, query));
                    }
                }
            }
        }
    }

    /// Masked radius scan: like [`scan_radius_into`](Self::scan_radius_into)
    /// but only rows whose id is in `mask` are considered (and only those
    /// pay for a distance computation).  `out` is *not* cleared.
    ///
    /// # Panics
    /// Panics if `query.len() != words_per_code()`.
    pub fn scan_radius_masked_into(
        &self,
        query: &[u64],
        radius: u32,
        mask: &IdMask,
        out: &mut Vec<Neighbor>,
    ) {
        self.for_each_distance_masked(query, mask, |row, d| {
            if d <= radius {
                // lint:allow(hot-path) the caller owns and reuses the buffer across queries, same amortisation as the unmasked scan
                out.push(Neighbor::new(self.ids[row], d));
            }
        });
    }
}

/// Word-wise Hamming distance of two equal-length word slices.
#[inline]
pub(crate) fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| (x ^ y).count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_code(bits: u32, seed: u64) -> BinaryCode {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let words: Vec<u64> = (0..bits.div_ceil(64)).map(|_| next()).collect();
        BinaryCode::from_words(bits, words)
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_width_is_rejected() {
        let _ = CodeArena::new(0);
    }

    #[test]
    fn push_and_row_access() {
        let mut arena = CodeArena::with_capacity(128, 4);
        assert!(arena.is_empty());
        assert_eq!(arena.words_per_code(), 2);
        for i in 0..4u64 {
            arena.push(i * 10, &rand_code(128, i));
        }
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.ids(), &[0, 10, 20, 30]);
        for i in 0..4 {
            assert_eq!(arena.id(i), i as u64 * 10);
            assert_eq!(arena.code(i), rand_code(128, i as u64));
            assert_eq!(arena.code_words(i), rand_code(128, i as u64).words());
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn push_rejects_wrong_width() {
        let mut arena = CodeArena::new(64);
        arena.push(0, &BinaryCode::zeros(128));
    }

    #[test]
    fn distances_match_binary_code_for_every_specialisation() {
        // 1-word, 2-word, 4-word fast paths plus the generic fallback (3
        // and 5 words), and a non-multiple-of-64 width.
        for bits in [7u32, 64, 100, 128, 192, 256, 320] {
            let mut arena = CodeArena::new(bits);
            let codes: Vec<BinaryCode> = (0..50).map(|i| rand_code(bits, i)).collect();
            for (i, c) in codes.iter().enumerate() {
                arena.push(i as u64, c);
            }
            let query = rand_code(bits, 999);
            let mut dists = Vec::new();
            arena.distances_into(query.words(), &mut dists);
            assert_eq!(dists.len(), 50);
            for (i, c) in codes.iter().enumerate() {
                assert_eq!(dists[i], c.hamming_distance(&query), "width {bits}, row {i}");
                assert_eq!(arena.distance(i, query.words()), dists[i]);
            }
        }
    }

    #[test]
    fn radius_scan_emits_rows_in_insertion_order() {
        let mut arena = CodeArena::new(64);
        let base = BinaryCode::zeros(64);
        arena.push(5, &base);
        arena.push(1, &base.with_flipped_bit(0));
        arena.push(9, &base);
        let mut out = Vec::new();
        arena.scan_radius_into(base.words(), 0, &mut out);
        assert_eq!(out, vec![Neighbor::new(5, 0), Neighbor::new(9, 0)]);
        // Appends without clearing, so fan-out callers can merge.
        arena.scan_radius_into(base.words(), 1, &mut out);
        assert_eq!(out.len(), 2 + 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn scan_rejects_wrong_query_width() {
        let arena = CodeArena::new(128);
        let mut out = Vec::new();
        arena.scan_radius_into(&[0u64], 1, &mut out);
    }

    #[test]
    fn masked_scan_equals_unmasked_scan_filtered_by_the_mask() {
        use crate::bitmap::{Bitmap, IdMask};
        for bits in [64u32, 128, 192, 256] {
            let mut arena = CodeArena::new(bits);
            for i in 0..200u64 {
                arena.push(i * 3, &rand_code(bits, i));
            }
            // Keep every id divisible by 9 (a third of the rows).
            let bitmap: Bitmap = (0..200u64).map(|i| i * 3).filter(|id| id % 9 == 0).collect();
            let mask = IdMask::from_bitmap(&bitmap);
            let query = rand_code(bits, 777);
            for radius in [0u32, bits / 4, bits] {
                let mut masked = Vec::new();
                arena.scan_radius_masked_into(query.words(), radius, &mask, &mut masked);
                let mut reference = Vec::new();
                arena.scan_radius_into(query.words(), radius, &mut reference);
                reference.retain(|n| mask.contains(n.id));
                assert_eq!(masked, reference, "bits {bits}, radius {radius}");
            }
            // An empty mask yields no hits.
            let empty = IdMask::from_bitmap(&Bitmap::new());
            let mut out = Vec::new();
            arena.scan_radius_masked_into(query.words(), bits, &empty, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn distances_into_reuses_the_buffer() {
        let mut arena = CodeArena::new(64);
        for i in 0..10 {
            arena.push(i, &rand_code(64, i));
        }
        let mut out = Vec::with_capacity(10);
        let ptr = out.as_ptr();
        arena.distances_into(rand_code(64, 77).words(), &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(ptr, out.as_ptr(), "a warm scratch buffer must not reallocate");
    }
}
