//! Brute-force Hamming linear scan, the baseline the hash-table lookup is
//! compared against in experiment E1.

use crate::arena::CodeArena;
use crate::code::BinaryCode;
use crate::topk::SearchScratch;
use crate::{sort_neighbors, HammingIndex, ItemId, Neighbor};

/// A linear-scan index: stores `(id, code)` rows in a [`CodeArena`] and
/// answers every query by scanning all of them.
///
/// Although asymptotically the slowest option, the scan is branch-friendly
/// and cache-friendly (code words are stored contiguously and word-striped
/// in the arena, with width-specialised distance kernels), so it is a
/// strong baseline on small archives — which is exactly the crossover
/// experiment E1 measures.
#[derive(Debug, Clone)]
pub struct LinearScanIndex {
    bits: u32,
    arena: CodeArena,
}

impl LinearScanIndex {
    /// Creates an empty index for codes of the given width.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0, "code width must be positive");
        Self { bits, arena: CodeArena::new(bits) }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The flat scan store.
    pub fn arena(&self) -> &CodeArena {
        &self.arena
    }

    /// Iterates over the stored `(id, code)` pairs, reconstructing each
    /// code from its arena row (for inspection/tests — the scan paths read
    /// the arena words directly).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, BinaryCode)> + '_ {
        (0..self.arena.len()).map(|row| (self.arena.id(row), self.arena.code(row)))
    }

    /// Bounded k-NN through a caller-owned scratch: one arena pass, no
    /// full-result materialisation or sort.  See
    /// [`HashTableIndex::knn_with`](crate::HashTableIndex::knn_with).
    ///
    /// # Panics
    /// Panics if the query width does not match the index.
    pub fn knn_with<'s>(
        &self,
        query: &BinaryCode,
        k: usize,
        scratch: &'s mut SearchScratch,
    ) -> &'s [Neighbor] {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        scratch.begin(k);
        scratch.scan_arena(&self.arena, query.words());
        scratch.finish()
    }
}

impl HammingIndex for LinearScanIndex {
    fn insert(&mut self, id: ItemId, code: BinaryCode) {
        assert_eq!(code.bits(), self.bits, "code width does not match the index");
        self.arena.push(id, &code);
    }

    fn radius_search(&self, query: &BinaryCode, radius: u32) -> Vec<Neighbor> {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        let mut out = Vec::new();
        self.arena.scan_radius_into(query.words(), radius, &mut out);
        sort_neighbors(&mut out);
        out
    }

    fn knn(&self, query: &BinaryCode, k: usize) -> Vec<Neighbor> {
        self.knn_with(query, k, &mut SearchScratch::new()).to_vec()
    }

    fn len(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(s: &str) -> BinaryCode {
        BinaryCode::from_bit_string(s).unwrap()
    }

    fn sample() -> LinearScanIndex {
        let mut idx = LinearScanIndex::new(8);
        idx.insert(1, code("00000000"));
        idx.insert(2, code("00000111"));
        idx.insert(3, code("11111111"));
        idx.insert(4, code("00000001"));
        idx
    }

    #[test]
    fn radius_search_filters_and_sorts() {
        let idx = sample();
        let hits = idx.radius_search(&code("00000000"), 3);
        assert_eq!(hits, vec![Neighbor::new(1, 0), Neighbor::new(4, 1), Neighbor::new(2, 3)]);
        assert!(idx.radius_search(&code("00000000"), 0).len() == 1);
    }

    #[test]
    fn knn_returns_k_nearest() {
        let idx = sample();
        let hits = idx.knn(&code("00000000"), 2);
        assert_eq!(hits, vec![Neighbor::new(1, 0), Neighbor::new(4, 1)]);
        assert_eq!(idx.knn(&code("00000000"), 10).len(), 4);
        assert!(idx.knn(&code("00000000"), 0).is_empty());
    }

    #[test]
    fn empty_index_behaviour() {
        let idx = LinearScanIndex::new(8);
        assert!(idx.is_empty());
        assert!(idx.radius_search(&code("00000000"), 8).is_empty());
        assert!(idx.knn(&code("00000000"), 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn width_mismatch_panics() {
        let idx = sample();
        let _ = idx.radius_search(&BinaryCode::zeros(16), 1);
    }

    #[test]
    fn duplicate_ids_are_allowed_and_returned() {
        let mut idx = LinearScanIndex::new(4);
        idx.insert(7, code("0000"));
        idx.insert(7, code("1111"));
        assert_eq!(idx.len(), 2);
        let hits = idx.radius_search(&code("0000"), 4);
        assert_eq!(hits.len(), 2);
    }
}
