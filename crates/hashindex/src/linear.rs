//! Brute-force Hamming linear scan, the baseline the hash-table lookup is
//! compared against in experiment E1.

use crate::code::BinaryCode;
use crate::{sort_neighbors, HammingIndex, ItemId, Neighbor};

/// A linear-scan index: stores `(id, code)` pairs in a flat vector and
/// answers every query by scanning all of them.
///
/// Although asymptotically the slowest option, the scan is branch-friendly
/// and cache-friendly (codes are stored contiguously), so it is a strong
/// baseline on small archives — which is exactly the crossover experiment
/// E1 measures.
#[derive(Debug, Clone)]
pub struct LinearScanIndex {
    bits: u32,
    ids: Vec<ItemId>,
    codes: Vec<BinaryCode>,
}

impl LinearScanIndex {
    /// Creates an empty index for codes of the given width.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0, "code width must be positive");
        Self { bits, ids: Vec::new(), codes: Vec::new() }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Iterates over the stored `(id, code)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &BinaryCode)> {
        self.ids.iter().copied().zip(self.codes.iter())
    }
}

impl HammingIndex for LinearScanIndex {
    fn insert(&mut self, id: ItemId, code: BinaryCode) {
        assert_eq!(code.bits(), self.bits, "code width does not match the index");
        self.ids.push(id);
        self.codes.push(code);
    }

    fn radius_search(&self, query: &BinaryCode, radius: u32) -> Vec<Neighbor> {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        let mut out = Vec::new();
        for (id, code) in self.iter() {
            let d = code.hamming_distance(query);
            if d <= radius {
                out.push(Neighbor::new(id, d));
            }
        }
        sort_neighbors(&mut out);
        out
    }

    fn knn(&self, query: &BinaryCode, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        if k == 0 {
            return Vec::new();
        }
        let mut all: Vec<Neighbor> =
            self.iter().map(|(id, code)| Neighbor::new(id, code.hamming_distance(query))).collect();
        sort_neighbors(&mut all);
        all.truncate(k);
        all
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(s: &str) -> BinaryCode {
        BinaryCode::from_bit_string(s).unwrap()
    }

    fn sample() -> LinearScanIndex {
        let mut idx = LinearScanIndex::new(8);
        idx.insert(1, code("00000000"));
        idx.insert(2, code("00000111"));
        idx.insert(3, code("11111111"));
        idx.insert(4, code("00000001"));
        idx
    }

    #[test]
    fn radius_search_filters_and_sorts() {
        let idx = sample();
        let hits = idx.radius_search(&code("00000000"), 3);
        assert_eq!(hits, vec![Neighbor::new(1, 0), Neighbor::new(4, 1), Neighbor::new(2, 3)]);
        assert!(idx.radius_search(&code("00000000"), 0).len() == 1);
    }

    #[test]
    fn knn_returns_k_nearest() {
        let idx = sample();
        let hits = idx.knn(&code("00000000"), 2);
        assert_eq!(hits, vec![Neighbor::new(1, 0), Neighbor::new(4, 1)]);
        assert_eq!(idx.knn(&code("00000000"), 10).len(), 4);
        assert!(idx.knn(&code("00000000"), 0).is_empty());
    }

    #[test]
    fn empty_index_behaviour() {
        let idx = LinearScanIndex::new(8);
        assert!(idx.is_empty());
        assert!(idx.radius_search(&code("00000000"), 8).is_empty());
        assert!(idx.knn(&code("00000000"), 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn width_mismatch_panics() {
        let idx = sample();
        let _ = idx.radius_search(&BinaryCode::zeros(16), 1);
    }

    #[test]
    fn duplicate_ids_are_allowed_and_returned() {
        let mut idx = LinearScanIndex::new(4);
        idx.insert(7, code("0000"));
        idx.insert(7, code("1111"));
        assert_eq!(idx.len(), 2);
        let hits = idx.radius_search(&code("0000"), 4);
        assert_eq!(hits.len(), 2);
    }
}
