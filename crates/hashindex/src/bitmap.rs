//! Roaring-style compressed bitmaps over item ids, plus the dense
//! [`IdMask`] the masked arena kernels test against.
//!
//! The bitmap-prefiltered search path (EarthQube's "similar patches, but
//! only those matching this metadata filter") needs three things from a
//! set-of-ids representation:
//!
//! 1. **Compact posting lists** — one bitmap per distinct attribute value /
//!    label code / geohash cell, cheap enough to keep thousands of them
//!    resident next to the secondary indexes,
//! 2. **Fast algebra** — `AND`/`OR`/`AND NOT` to compile a filter's
//!    indexable prefix into a single candidate set,
//! 3. **O(1) membership** at scan time, so the arena kernel can skip the
//!    XOR/popcount for rows outside the candidate set.
//!
//! [`Bitmap`] covers the first two with the classic two-level roaring
//! layout (Chambi et al.): ids are split into a 48-bit *key* (`id >> 16`)
//! and a 16-bit *low* part; each key owns one container holding the low
//! parts, stored either as a sorted `u16` array (sparse) or a 65 536-bit
//! bitset (dense).  Containers switch representation at 4 096 elements —
//! exactly the cardinality where the array (2 bytes/element) and the
//! bitset (8 KiB flat) break even — so the representation is *canonical*:
//! equal sets compare equal structurally, which lets `#[derive(PartialEq)]`
//! be set equality.
//!
//! [`IdMask`] covers the third: a flat, uncompressed bitset built from a
//! `Bitmap` once per query, sized to the largest candidate id, giving the
//! scan kernel a two-instruction membership test with no branching on
//! container type.
//!
//! There is deliberately no complement operation: ids are unbounded
//! (`u64`), so negation is only meaningful against a concrete universe.
//! Callers that need `NOT x` compute `universe.and_not(&x)` with the
//! collection's live-ids bitmap, which also pins the intended "`Ne`
//! matches documents missing the field" semantics at the algebra level.

use crate::ItemId;

/// Ids with the same `id >> KEY_SHIFT` share one container.
const KEY_SHIFT: u32 = 16;
/// Mask extracting the in-container (low) part of an id.
const LOW_MASK: u64 = (1 << KEY_SHIFT) - 1;
/// Maximum cardinality of an array container; above this the container is
/// a bitset (4 096 × 2-byte entries = the 8 KiB the bitset always costs).
const ARRAY_MAX: usize = 4096;
/// `u64` words in a bitset container (65 536 bits).
const CONTAINER_WORDS: usize = 1 << (KEY_SHIFT - 6);

/// One container: the set of 16-bit low parts stored under a single key.
///
/// Canonical representation invariant: `Array` iff cardinality ≤
/// [`ARRAY_MAX`], never empty (empty containers are dropped from the
/// parent's list).  All constructors below re-establish the invariant.
#[derive(Debug, Clone, PartialEq)]
enum Container {
    /// Sorted, duplicate-free low parts.
    Array(Vec<u16>),
    /// Flat bitset with its cardinality cached.
    Words {
        /// 65 536 bits; bit `v` set iff low part `v` is present.
        words: Box<[u64; CONTAINER_WORDS]>,
        /// Number of set bits (kept in sync by every mutation).
        len: u32,
    },
}

impl Container {
    /// Cardinality.
    fn len(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Words { len, .. } => *len as usize,
        }
    }

    /// Membership test (the inner step of [`Bitmap::contains`]).
    #[inline]
    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&low).is_ok(),
            Container::Words { words, .. } => (words[(low >> 6) as usize] >> (low & 63)) & 1 == 1,
        }
    }

    /// Inserts a low part; returns whether it was newly added.
    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    a.insert(pos, low);
                    if a.len() > ARRAY_MAX {
                        *self = promote(a);
                    }
                    true
                }
            },
            Container::Words { words, len } => {
                let (w, bit) = ((low >> 6) as usize, 1u64 << (low & 63));
                if words[w] & bit == 0 {
                    words[w] |= bit;
                    *len += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes a low part; returns whether it was present.  May leave the
    /// container empty — the caller drops empty containers.
    fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(pos) => {
                    a.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Words { words, len } => {
                let (w, bit) = ((low >> 6) as usize, 1u64 << (low & 63));
                if words[w] & bit != 0 {
                    words[w] &= !bit;
                    *len -= 1;
                    if (*len as usize) <= ARRAY_MAX {
                        *self = demote(words);
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Largest low part present (containers are never empty).
    fn max(&self) -> Option<u16> {
        match self {
            Container::Array(a) => a.last().copied(),
            Container::Words { words, .. } => {
                for (w, &word) in words.iter().enumerate().rev() {
                    if word != 0 {
                        let top = 63 - word.leading_zeros();
                        return Some((w as u32 * 64 + top) as u16);
                    }
                }
                None
            }
        }
    }

    /// Iterates the low parts in ascending order.
    fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(a) => ContainerIter::Array(a.iter()),
            Container::Words { words, .. } => {
                ContainerIter::Words { words: &words[..], word_idx: 0, current: words[0] }
            }
        }
    }
}

/// Converts an array container's elements to a bitset container.
fn promote(array: &[u16]) -> Container {
    let mut words = Box::new([0u64; CONTAINER_WORDS]);
    for &v in array {
        words[(v >> 6) as usize] |= 1u64 << (v & 63);
    }
    Container::Words { words, len: array.len() as u32 }
}

/// Converts a bitset's set bits to a sorted array container.
fn demote(words: &[u64; CONTAINER_WORDS]) -> Container {
    let mut out = Vec::new();
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros();
            out.push((w as u32 * 64 + b) as u16);
            bits &= bits - 1;
        }
    }
    Container::Array(out)
}

/// Canonicalises a freshly built array: `None` if empty, bitset if over
/// the threshold.
fn normalize_array(v: Vec<u16>) -> Option<Container> {
    if v.is_empty() {
        None
    } else if v.len() > ARRAY_MAX {
        Some(promote(&v))
    } else {
        Some(Container::Array(v))
    }
}

/// Canonicalises a freshly built bitset with `len` set bits.
fn normalize_words(words: Box<[u64; CONTAINER_WORDS]>, len: u32) -> Option<Container> {
    if len == 0 {
        None
    } else if (len as usize) <= ARRAY_MAX {
        Some(demote(&words))
    } else {
        Some(Container::Words { words, len })
    }
}

/// The bitset view of any container shape: a bitset borrows its words, an
/// array materialises them once (8 KiB, amortised over a whole-container
/// operation).
fn as_words(c: &Container) -> Box<[u64; CONTAINER_WORDS]> {
    match c {
        Container::Array(a) => match promote(a) {
            Container::Words { words, .. } => words,
            Container::Array(_) => Box::new([0u64; CONTAINER_WORDS]),
        },
        Container::Words { words, .. } => words.clone(),
    }
}

/// Container intersection; `None` when empty.
fn container_and(a: &Container, b: &Container) -> Option<Container> {
    match (a, b) {
        (Container::Array(x), Container::Array(y)) => {
            let mut out = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < x.len() && j < y.len() {
                match x[i].cmp(&y[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(x[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            normalize_array(out)
        }
        (Container::Array(x), w @ Container::Words { .. })
        | (w @ Container::Words { .. }, Container::Array(x)) => {
            let out: Vec<u16> = x.iter().copied().filter(|&v| w.contains(v)).collect();
            normalize_array(out)
        }
        (Container::Words { words: wa, .. }, Container::Words { words: wb, .. }) => {
            let mut words = Box::new([0u64; CONTAINER_WORDS]);
            let mut len = 0u32;
            for i in 0..CONTAINER_WORDS {
                words[i] = wa[i] & wb[i];
                len += words[i].count_ones();
            }
            normalize_words(words, len)
        }
    }
}

/// Container union (inputs are non-empty, so the result is too).
fn container_or(a: &Container, b: &Container) -> Container {
    match (a, b) {
        (Container::Array(x), Container::Array(y)) => {
            let mut out = Vec::with_capacity(x.len() + y.len());
            let (mut i, mut j) = (0, 0);
            while i < x.len() || j < y.len() {
                if j >= y.len() || (i < x.len() && x[i] < y[j]) {
                    out.push(x[i]);
                    i += 1;
                } else if i >= x.len() || y[j] < x[i] {
                    out.push(y[j]);
                    j += 1;
                } else {
                    out.push(x[i]);
                    i += 1;
                    j += 1;
                }
            }
            match normalize_array(out) {
                Some(c) => c,
                // Unreachable in practice (both inputs are non-empty), but
                // an empty array is a safe identity rather than a panic.
                None => Container::Array(Vec::new()),
            }
        }
        (Container::Array(x), Container::Words { words, len })
        | (Container::Words { words, len }, Container::Array(x)) => {
            let mut merged = words.clone();
            let mut new_len = *len;
            for &v in x {
                let (w, bit) = ((v >> 6) as usize, 1u64 << (v & 63));
                if merged[w] & bit == 0 {
                    merged[w] |= bit;
                    new_len += 1;
                }
            }
            Container::Words { words: merged, len: new_len }
        }
        (Container::Words { words: wa, .. }, Container::Words { words: wb, .. }) => {
            let mut words = Box::new([0u64; CONTAINER_WORDS]);
            let mut len = 0u32;
            for i in 0..CONTAINER_WORDS {
                words[i] = wa[i] | wb[i];
                len += words[i].count_ones();
            }
            Container::Words { words, len }
        }
    }
}

/// Container difference `a \ b`; `None` when empty.
fn container_and_not(a: &Container, b: &Container) -> Option<Container> {
    match (a, b) {
        (Container::Array(x), y) => {
            let out: Vec<u16> = x.iter().copied().filter(|&v| !y.contains(v)).collect();
            normalize_array(out)
        }
        (Container::Words { words: wa, .. }, b) => {
            let wb = as_words(b);
            let mut words = Box::new([0u64; CONTAINER_WORDS]);
            let mut len = 0u32;
            for i in 0..CONTAINER_WORDS {
                words[i] = wa[i] & !wb[i];
                len += words[i].count_ones();
            }
            normalize_words(words, len)
        }
    }
}

/// Ascending iterator over one container's low parts.
enum ContainerIter<'a> {
    /// Walking a sorted array.
    Array(std::slice::Iter<'a, u16>),
    /// Walking a bitset word by word.
    Words {
        /// The container's words.
        words: &'a [u64],
        /// Index of the word `current` was loaded from.
        word_idx: usize,
        /// Remaining (unyielded) bits of the current word.
        current: u64,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(it) => it.next().copied(),
            ContainerIter::Words { words, word_idx, current } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= words.len() {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros();
                *current &= *current - 1;
                Some((*word_idx as u32 * 64 + bit) as u16)
            }
        }
    }
}

/// A compressed set of [`ItemId`]s with roaring-style two-level layout:
/// sorted `(key, container)` pairs where `key = id >> 16` and each
/// container holds the 16-bit low parts as either a sorted array (≤ 4 096
/// elements) or a flat 65 536-bit bitset.
///
/// Representation is canonical (array iff sparse, no empty containers), so
/// the derived `PartialEq` is set equality.  All operations are panic-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    /// Sorted by key; no empty containers.
    containers: Vec<(u64, Container)>,
    /// Total cardinality across containers.
    len: u64,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test: two binary searches (container key, then the array
    /// container) or one search plus a bit probe (bitset container).
    #[inline]
    pub fn contains(&self, id: ItemId) -> bool {
        let key = id >> KEY_SHIFT;
        match self.containers.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => self.containers[pos].1.contains((id & LOW_MASK) as u16),
            Err(_) => false,
        }
    }

    /// Inserts an id; returns whether it was newly added.
    pub fn insert(&mut self, id: ItemId) -> bool {
        let key = id >> KEY_SHIFT;
        let low = (id & LOW_MASK) as u16;
        match self.containers.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => {
                let added = self.containers[pos].1.insert(low);
                if added {
                    self.len += 1;
                }
                added
            }
            Err(pos) => {
                self.containers.insert(pos, (key, Container::Array(vec![low])));
                self.len += 1;
                true
            }
        }
    }

    /// Removes an id; returns whether it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let key = id >> KEY_SHIFT;
        let low = (id & LOW_MASK) as u16;
        if let Ok(pos) = self.containers.binary_search_by_key(&key, |(k, _)| *k) {
            let removed = self.containers[pos].1.remove(low);
            if removed {
                self.len -= 1;
                if self.containers[pos].1.len() == 0 {
                    self.containers.remove(pos);
                }
            }
            removed
        } else {
            false
        }
    }

    /// The largest id in the set ([`IdMask`] sizes itself with this).
    pub fn max(&self) -> Option<ItemId> {
        let (key, c) = self.containers.last()?;
        c.max().map(|low| (key << KEY_SHIFT) | low as u64)
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.containers.iter().flat_map(|(key, c)| {
            let base = key << KEY_SHIFT;
            c.iter().map(move |low| base | low as u64)
        })
    }

    /// Set intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ca) = &self.containers[i];
            let (kb, cb) = &other.containers[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(c) = container_and(ca, cb) {
                        out.len += c.len() as u64;
                        out.containers.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Set union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.containers.len() || j < other.containers.len() {
            let next = if j >= other.containers.len()
                || (i < self.containers.len() && self.containers[i].0 < other.containers[j].0)
            {
                let (k, c) = &self.containers[i];
                i += 1;
                (*k, c.clone())
            } else if i >= self.containers.len() || other.containers[j].0 < self.containers[i].0 {
                let (k, c) = &other.containers[j];
                j += 1;
                (*k, c.clone())
            } else {
                let (k, ca) = &self.containers[i];
                let merged = container_or(ca, &other.containers[j].1);
                i += 1;
                j += 1;
                (*k, merged)
            };
            out.len += next.1.len() as u64;
            out.containers.push(next);
        }
        out
    }

    /// Set difference `self \ other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let mut j = 0;
        for (key, ca) in &self.containers {
            while j < other.containers.len() && other.containers[j].0 < *key {
                j += 1;
            }
            let kept = if j < other.containers.len() && other.containers[j].0 == *key {
                container_and_not(ca, &other.containers[j].1)
            } else {
                Some(ca.clone())
            };
            if let Some(c) = kept {
                out.len += c.len() as u64;
                out.containers.push((*key, c));
            }
        }
        out
    }
}

impl FromIterator<ItemId> for Bitmap {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for id in iter {
            bm.insert(id);
        }
        bm
    }
}

impl Extend<ItemId> for Bitmap {
    fn extend<T: IntoIterator<Item = ItemId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// A flat, uncompressed bitset over item ids — the scan-time form of a
/// [`Bitmap`].
///
/// Built once per query from the compiled prefilter bitmap and sized to
/// its largest id, it gives the masked arena kernels an O(1), branch-free
/// membership probe (`word >> bit & 1`) with no per-row container
/// dispatch.  Ids beyond the sized range are simply absent.
#[derive(Debug, Clone, Default)]
pub struct IdMask {
    /// Bit `id` set iff `id` is in the mask.
    words: Vec<u64>,
    /// Cardinality (copied from the source bitmap).
    len: u64,
}

impl IdMask {
    /// Materialises the dense mask of a bitmap.
    pub fn from_bitmap(bitmap: &Bitmap) -> Self {
        let bits = bitmap.max().map_or(0, |m| m as usize + 1);
        let mut words = vec![0u64; bits.div_ceil(64)];
        for id in bitmap.iter() {
            words[(id >> 6) as usize] |= 1u64 << (id & 63);
        }
        Self { words, len: bitmap.len() }
    }

    /// Membership test (the per-row probe of the masked scan kernels).
    #[inline]
    pub fn contains(&self, id: ItemId) -> bool {
        self.words.get((id >> 6) as usize).is_some_and(|w| (w >> (id & 63)) & 1 == 1)
    }

    /// Number of ids in the mask.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl From<&Bitmap> for IdMask {
    fn from(bitmap: &Bitmap) -> Self {
        IdMask::from_bitmap(bitmap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Deterministic xorshift stream (no external RNG dependency).
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xabcd);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut bm = Bitmap::new();
        assert!(bm.is_empty());
        assert!(bm.insert(42));
        assert!(!bm.insert(42), "double insert is a no-op");
        assert!(bm.insert(1 << 40));
        assert_eq!(bm.len(), 2);
        assert!(bm.contains(42));
        assert!(bm.contains(1 << 40));
        assert!(!bm.contains(43));
        assert_eq!(bm.max(), Some(1 << 40));
        assert!(bm.remove(42));
        assert!(!bm.remove(42), "double remove is a no-op");
        assert_eq!(bm.len(), 1);
        assert!(!bm.contains(42));
        // Removing the last element of a container drops the container.
        assert!(bm.remove(1 << 40));
        assert!(bm.is_empty());
        assert_eq!(bm.max(), None);
        assert_eq!(bm, Bitmap::new(), "empty bitmaps are structurally equal");
    }

    #[test]
    fn containers_promote_and_demote_across_the_threshold() {
        let mut bm = Bitmap::new();
        // Fill one container (key 0) past the array threshold: evens first
        // so the array stays sorted under random-ish insertion order too.
        for v in 0..(ARRAY_MAX as u64 + 500) {
            bm.insert(v * 2);
        }
        assert_eq!(bm.len(), ARRAY_MAX as u64 + 500);
        assert!(matches!(bm.containers[0].1, Container::Words { .. }), "should have promoted");
        for v in 0..(ARRAY_MAX as u64 + 500) {
            assert!(bm.contains(v * 2));
            assert!(!bm.contains(v * 2 + 1));
        }
        // Drop back below the threshold: must demote and stay correct.
        for v in 0..1000u64 {
            assert!(bm.remove(v * 2));
        }
        assert!(matches!(bm.containers[0].1, Container::Array(_)), "should have demoted");
        assert!(!bm.contains(0));
        assert!(bm.contains(2000));
        assert_eq!(bm.len(), ARRAY_MAX as u64 - 500);
        // Canonical representation: rebuilding the same set fresh compares
        // equal even though it never saw the dense phase.
        let rebuilt: Bitmap = (1000..(ARRAY_MAX as u64 + 500)).map(|v| v * 2).collect();
        assert_eq!(bm, rebuilt);
    }

    #[test]
    fn iter_is_ascending_across_containers_and_shapes() {
        let mut next = rng(7);
        let mut bm = Bitmap::new();
        let mut model = BTreeSet::new();
        // Dense cluster (forces a bitset container) + sparse spray.
        for v in 0..6000u64 {
            bm.insert(v);
            model.insert(v);
        }
        for _ in 0..2000 {
            let v = next() % (1 << 34);
            bm.insert(v);
            model.insert(v);
        }
        let got: Vec<u64> = bm.iter().collect();
        let want: Vec<u64> = model.iter().copied().collect();
        assert_eq!(got, want);
        assert_eq!(bm.len(), want.len() as u64);
    }

    #[test]
    fn algebra_matches_the_set_model() {
        let mut next = rng(42);
        // Three regimes per side: a dense block (bitset containers), a
        // sparse spray (array containers), and overlap between the sides.
        for (da, db) in [(6000u64, 100u64), (100, 6000), (5000, 5000), (50, 70)] {
            let mut a = Bitmap::new();
            let mut b = Bitmap::new();
            let mut ma = BTreeSet::new();
            let mut mb = BTreeSet::new();
            for _ in 0..da {
                let v = next() % 10_000;
                a.insert(v);
                ma.insert(v);
            }
            for _ in 0..db {
                let v = next() % 10_000 + 5_000;
                b.insert(v);
                mb.insert(v);
            }
            let and: Vec<u64> = a.and(&b).iter().collect();
            let or: Vec<u64> = a.or(&b).iter().collect();
            let diff: Vec<u64> = a.and_not(&b).iter().collect();
            assert_eq!(and, ma.intersection(&mb).copied().collect::<Vec<_>>());
            assert_eq!(or, ma.union(&mb).copied().collect::<Vec<_>>());
            assert_eq!(diff, ma.difference(&mb).copied().collect::<Vec<_>>());
            // Cached cardinalities agree with the iterators.
            assert_eq!(a.and(&b).len(), and.len() as u64);
            assert_eq!(a.or(&b).len(), or.len() as u64);
            assert_eq!(a.and_not(&b).len(), diff.len() as u64);
        }
    }

    #[test]
    fn algebra_with_empty_and_disjoint_operands() {
        let a: Bitmap = [1u64, 2, 3].into_iter().collect();
        let empty = Bitmap::new();
        assert_eq!(a.and(&empty), empty);
        assert_eq!(a.or(&empty), a);
        assert_eq!(empty.or(&a), a);
        assert_eq!(a.and_not(&empty), a);
        assert_eq!(empty.and_not(&a), empty);
        // Disjoint containers (different keys).
        let far: Bitmap = [1u64 << 30].into_iter().collect();
        assert_eq!(a.and(&far), empty);
        assert_eq!(a.or(&far).len(), 4);
        assert_eq!(a.and_not(&far), a);
    }

    #[test]
    fn not_via_universe_pins_missing_id_semantics() {
        // The documented way to negate: universe \ x.
        let universe: Bitmap = (0..100u64).collect();
        let x: Bitmap = [5u64, 50].into_iter().collect();
        let not_x = universe.and_not(&x);
        assert_eq!(not_x.len(), 98);
        assert!(!not_x.contains(5));
        assert!(not_x.contains(6));
        // Ids outside the universe never appear.
        assert!(!not_x.contains(100));
    }

    #[test]
    fn id_mask_agrees_with_its_bitmap() {
        let mut next = rng(99);
        let bm: Bitmap = (0..3000).map(|_| next() % 100_000).collect();
        let mask = IdMask::from_bitmap(&bm);
        assert_eq!(mask.len(), bm.len());
        assert!(!mask.is_empty());
        for id in 0..100_000u64 {
            assert_eq!(mask.contains(id), bm.contains(id), "id {id}");
        }
        // Probes beyond the sized range are false, not a panic.
        assert!(!mask.contains(u64::MAX));
        let empty = IdMask::from_bitmap(&Bitmap::new());
        assert!(empty.is_empty());
        assert!(!empty.contains(0));
        // The From impl is the same construction.
        assert!(IdMask::from(&bm).contains(bm.max().unwrap_or(0)));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut bm: Bitmap = [3u64, 1, 2, 3].into_iter().collect();
        assert_eq!(bm.len(), 3);
        bm.extend([4u64, 1]);
        assert_eq!(bm.len(), 4);
        assert_eq!(bm.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }
}
