//! Multi-index hashing (MIH) for exact Hamming-radius search.
//!
//! The plain hash-table strategy of the paper enumerates all codes within
//! the radius, which explodes combinatorially for 128-bit codes once the
//! radius exceeds 2–3 bits.  Multi-index hashing (Norouzi, Punjani & Fleet,
//! *Fast Search in Hamming Space with Multi-Index Hashing*, CVPR 2012)
//! splits every code into `m` disjoint substrings and indexes each
//! substring in its own hash table.  By the pigeonhole principle, if two
//! codes are within Hamming distance `r`, then at least one substring pair
//! is within distance `⌊r/m⌋`, so searching each substring table with the
//! much smaller per-substring radius produces a complete candidate set
//! which is then verified with full-width distances.

use std::collections::HashMap;

use crate::arena::CodeArena;
use crate::code::BinaryCode;
use crate::{sort_neighbors, HammingIndex, ItemId, Neighbor};

/// Exact Hamming-radius index based on multi-index hashing.
///
/// Candidate verification — the full-width distance check every candidate
/// pays — reads the codes out of a flat [`CodeArena`] row instead of a
/// per-code heap allocation, so the verification loop never pointer-chases.
#[derive(Debug, Clone)]
pub struct MultiIndexHashing {
    bits: u32,
    num_chunks: u32,
    chunk_bits: u32,
    /// One hash table per substring: substring value → item indexes.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    /// Row `i` holds the id and full-width code of item `i`.
    arena: CodeArena,
}

impl MultiIndexHashing {
    /// Creates an index for `bits`-bit codes split into `num_chunks`
    /// substrings.
    ///
    /// # Panics
    /// Panics if `bits == 0`, `num_chunks == 0`, or a substring would be
    /// wider than 64 bits.
    pub fn new(bits: u32, num_chunks: u32) -> Self {
        assert!(bits > 0, "code width must be positive");
        assert!(num_chunks > 0, "need at least one chunk");
        let chunk_bits = bits.div_ceil(num_chunks);
        assert!(chunk_bits <= 64, "substrings wider than 64 bits are not supported");
        Self {
            bits,
            num_chunks,
            chunk_bits,
            tables: vec![HashMap::new(); num_chunks as usize],
            arena: CodeArena::new(bits),
        }
    }

    /// The recommended number of chunks for a code width and archive size:
    /// `bits / log2(n)` (Norouzi et al.), clamped to `[1, 16]`.
    pub fn recommended_chunks(bits: u32, expected_items: usize) -> u32 {
        let log_n = (expected_items.max(2) as f64).log2();
        ((bits as f64 / log_n).round() as u32).clamp(1, 16)
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of substring tables.
    pub fn num_chunks(&self) -> u32 {
        self.num_chunks
    }

    /// Width of each substring in bits.
    pub fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    /// Number of candidate verifications performed for a query at a radius
    /// (statistic used by experiment E3).  Runs the candidate-generation
    /// phase only.
    pub fn candidate_count(&self, query: &BinaryCode, radius: u32) -> usize {
        self.candidates(query, radius).len()
    }

    fn candidates(&self, query: &BinaryCode, radius: u32) -> Vec<u32> {
        let per_chunk_radius = radius / self.num_chunks;
        let mut seen = vec![false; self.arena.len()];
        let mut out = Vec::new();
        for chunk in 0..self.num_chunks {
            let key = query.substring(chunk, self.chunk_bits);
            let effective_bits = self.effective_chunk_bits(chunk);
            enumerate_u64_flips(key, effective_bits, per_chunk_radius, &mut |candidate_key| {
                if let Some(items) = self.tables[chunk as usize].get(&candidate_key) {
                    for &item in items {
                        if !seen[item as usize] {
                            seen[item as usize] = true;
                            out.push(item);
                        }
                    }
                }
            });
        }
        out
    }

    /// The last chunk can be narrower than `chunk_bits` when the width is
    /// not an exact multiple of the number of chunks.
    fn effective_chunk_bits(&self, chunk: u32) -> u32 {
        let start = chunk * self.chunk_bits;
        (self.bits - start).min(self.chunk_bits)
    }
}

impl HammingIndex for MultiIndexHashing {
    fn insert(&mut self, id: ItemId, code: BinaryCode) {
        assert_eq!(code.bits(), self.bits, "code width does not match the index");
        let item = self.arena.len() as u32;
        for chunk in 0..self.num_chunks {
            let key = code.substring(chunk, self.chunk_bits);
            self.tables[chunk as usize].entry(key).or_default().push(item);
        }
        self.arena.push(id, &code);
    }

    fn radius_search(&self, query: &BinaryCode, radius: u32) -> Vec<Neighbor> {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        let query_words = query.words();
        let mut out = Vec::new();
        for item in self.candidates(query, radius) {
            // Verify against the arena row: contiguous words, no pointer
            // chase into a per-code allocation.
            let d = self.arena.distance(item as usize, query_words);
            if d <= radius {
                out.push(Neighbor::new(self.arena.id(item as usize), d));
            }
        }
        sort_neighbors(&mut out);
        out
    }

    fn knn(&self, query: &BinaryCode, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.bits(), self.bits, "query width does not match the index");
        if k == 0 || self.arena.is_empty() {
            return Vec::new();
        }
        // Grow the radius in steps of the chunk count (the per-chunk radius
        // only increases every `num_chunks` steps, so smaller increments
        // cannot add candidates).
        let mut radius = self.num_chunks;
        loop {
            let mut hits = self.radius_search(query, radius);
            if hits.len() >= k || radius >= self.bits {
                hits.truncate(k);
                return hits;
            }
            radius = (radius * 2).min(self.bits);
        }
    }

    fn len(&self) -> usize {
        self.arena.len()
    }
}

/// Enumerates all `u64` keys within `max_flips` bit flips of `key`
/// restricted to the lowest `bits` bits (including zero flips).
fn enumerate_u64_flips(key: u64, bits: u32, max_flips: u32, visit: &mut impl FnMut(u64)) {
    visit(key);
    fn rec(key: u64, bits: u32, start: u32, remaining: u32, visit: &mut impl FnMut(u64)) {
        if remaining == 0 {
            return;
        }
        for i in start..bits {
            let flipped = key ^ (1u64 << i);
            visit(flipped);
            rec(flipped, bits, i + 1, remaining - 1, visit);
        }
    }
    rec(key, bits, 0, max_flips, visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScanIndex;

    fn code(s: &str) -> BinaryCode {
        BinaryCode::from_bit_string(s).unwrap()
    }

    #[test]
    fn construction_validation() {
        let idx = MultiIndexHashing::new(128, 4);
        assert_eq!(idx.bits(), 128);
        assert_eq!(idx.num_chunks(), 4);
        assert_eq!(idx.chunk_bits(), 32);
    }

    #[test]
    #[should_panic(expected = "wider than 64")]
    fn overly_wide_chunks_are_rejected() {
        let _ = MultiIndexHashing::new(128, 1);
    }

    #[test]
    fn recommended_chunks_scales_with_archive_size() {
        assert_eq!(MultiIndexHashing::recommended_chunks(128, 1 << 16), 8);
        assert!(MultiIndexHashing::recommended_chunks(128, 600_000) <= 7);
        assert!(MultiIndexHashing::recommended_chunks(32, 1_000) >= 3);
        assert_eq!(MultiIndexHashing::recommended_chunks(128, 0), 16); // clamped
    }

    #[test]
    fn uneven_chunk_split_covers_all_bits() {
        // 10 bits, 3 chunks → chunk_bits = 4, last chunk has 2 effective bits.
        let idx = MultiIndexHashing::new(10, 3);
        assert_eq!(idx.chunk_bits(), 4);
        assert_eq!(idx.effective_chunk_bits(0), 4);
        assert_eq!(idx.effective_chunk_bits(1), 4);
        assert_eq!(idx.effective_chunk_bits(2), 2);
    }

    #[test]
    fn exact_match_and_small_radius() {
        let mut idx = MultiIndexHashing::new(16, 4);
        idx.insert(1, code("0000000000000000"));
        idx.insert(2, code("0000000000000001"));
        idx.insert(3, code("1111111111111111"));
        let hits = idx.radius_search(&code("0000000000000000"), 0);
        assert_eq!(hits, vec![Neighbor::new(1, 0)]);
        let hits = idx.radius_search(&code("0000000000000000"), 1);
        assert_eq!(hits, vec![Neighbor::new(1, 0), Neighbor::new(2, 1)]);
    }

    #[test]
    fn mih_agrees_with_linear_scan_on_random_data() {
        // Deterministic pseudo-random codes without pulling in `rand`.
        let bits = 32u32;
        let mut mih = MultiIndexHashing::new(bits, 4);
        let mut lin = LinearScanIndex::new(bits);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 16
        };
        for id in 0..400u64 {
            let c = BinaryCode::from_words(bits, vec![next()]);
            mih.insert(id, c.clone());
            lin.insert(id, c);
        }
        let query = BinaryCode::from_words(bits, vec![next()]);
        for radius in [0u32, 2, 5, 9, 14] {
            let a = mih.radius_search(&query, radius);
            let b = lin.radius_search(&query, radius);
            assert_eq!(a, b, "MIH and linear scan disagree at radius {radius}");
        }
    }

    #[test]
    fn knn_matches_linear_scan_results() {
        let bits = 24u32;
        let mut mih = MultiIndexHashing::new(bits, 3);
        let mut lin = LinearScanIndex::new(bits);
        for id in 0..200u64 {
            let c = BinaryCode::from_words(bits, vec![id.wrapping_mul(0x9E3779B97F4A7C15) >> 8]);
            mih.insert(id, c.clone());
            lin.insert(id, c);
        }
        let query = BinaryCode::zeros(bits);
        let a = mih.knn(&query, 10);
        let b = lin.knn(&query, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn knn_edge_cases() {
        let idx = MultiIndexHashing::new(16, 2);
        assert!(idx.knn(&BinaryCode::zeros(16), 5).is_empty());
        let mut idx = MultiIndexHashing::new(16, 2);
        idx.insert(1, BinaryCode::zeros(16));
        assert!(idx.knn(&BinaryCode::zeros(16), 0).is_empty());
        assert_eq!(idx.knn(&BinaryCode::zeros(16), 5).len(), 1);
    }

    #[test]
    fn candidate_count_grows_with_radius() {
        let mut idx = MultiIndexHashing::new(32, 4);
        for id in 0..500u64 {
            let c = BinaryCode::from_words(32, vec![id.wrapping_mul(2654435761) & 0xFFFF_FFFF]);
            idx.insert(id, c);
        }
        let q = BinaryCode::zeros(32);
        let c0 = idx.candidate_count(&q, 0);
        let c8 = idx.candidate_count(&q, 8);
        let c16 = idx.candidate_count(&q, 16);
        assert!(c0 <= c8 && c8 <= c16);
    }

    #[test]
    fn enumerate_u64_flips_counts() {
        let mut seen = Vec::new();
        enumerate_u64_flips(0, 4, 2, &mut |k| seen.push(k));
        // C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6 = 11, all distinct.
        assert_eq!(seen.len(), 11);
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 11);
    }
}
