//! The query filter AST and its evaluator.

use eq_geo::{GeoShape, Point};

use crate::value::{Document, Value};

/// A query predicate over documents.
///
/// Filters compose the comparison, array, logical and geospatial operators
/// that the EarthQube back-end needs: attribute equality/ranges (dates,
/// countries, seasons), label-code array predicates (the three label
/// operators of §3.1) and geospatial containment (the map query shapes).
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    All,
    /// Field equals the value.
    Eq(String, Value),
    /// Field differs from the value (missing fields match).
    Ne(String, Value),
    /// Field is strictly less than the value.
    Lt(String, Value),
    /// Field is less than or equal to the value.
    Lte(String, Value),
    /// Field is strictly greater than the value.
    Gt(String, Value),
    /// Field is greater than or equal to the value.
    Gte(String, Value),
    /// Field value is one of the listed values.
    In(String, Vec<Value>),
    /// The field exists (even if null).
    Exists(String),
    /// The field is an array (or string treated as a set of characters)
    /// containing **all** of the listed values.
    ContainsAll(String, Vec<Value>),
    /// The field is an array (or string) containing **at least one** of the
    /// listed values.
    ContainsAny(String, Vec<Value>),
    /// The field is an array (or string) whose elements are **exactly** the
    /// listed values as a multiset: order-insensitive, but multiplicities
    /// must agree (`["A","A","B"]` does not match a query for
    /// `["A","B","B"]`).
    ContainsExactly(String, Vec<Value>),
    /// A string field starts with the given prefix.
    StartsWith(String, String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
    /// A geospatial point field (a two-element `[lon, lat]` array) lies
    /// within the shape.
    GeoWithin(String, GeoShape),
}

impl Filter {
    /// Convenience constructor for an AND of two filters, flattening nested ANDs.
    pub fn and(self, other: Filter) -> Filter {
        match (self, other) {
            (Filter::All, f) | (f, Filter::All) => f,
            (Filter::And(mut a), Filter::And(b)) => {
                a.extend(b);
                Filter::And(a)
            }
            (Filter::And(mut a), f) => {
                a.push(f);
                Filter::And(a)
            }
            (f, Filter::And(mut b)) => {
                b.insert(0, f);
                Filter::And(b)
            }
            (a, b) => Filter::And(vec![a, b]),
        }
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::All => true,
            Filter::Eq(field, v) => doc.get(field) == Some(v),
            Filter::Ne(field, v) => doc.get(field) != Some(v),
            Filter::Lt(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_lt()),
            Filter::Lte(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_le()),
            Filter::Gt(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_gt()),
            Filter::Gte(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_ge()),
            Filter::In(field, values) => doc.get(field).is_some_and(|v| values.contains(v)),
            Filter::Exists(field) => doc.contains(field),
            Filter::ContainsAll(field, values) => {
                Elements::of(doc, field).is_some_and(|els| values.iter().all(|v| els.contains(v)))
            }
            Filter::ContainsAny(field, values) => {
                Elements::of(doc, field).is_some_and(|els| values.iter().any(|v| els.contains(v)))
            }
            Filter::ContainsExactly(field, values) => {
                Elements::of(doc, field).is_some_and(|els| els.eq_multiset(values))
            }
            Filter::StartsWith(field, prefix) => {
                doc.get(field).and_then(Value::as_str).is_some_and(|s| s.starts_with(prefix))
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
            Filter::GeoWithin(field, shape) => {
                point_from_field(doc, field).map(|p| shape.contains(p)).unwrap_or(false)
            }
        }
    }

    /// If the filter constrains `field` to an exact value (possibly inside
    /// an `And`), returns that value — used by the query planner to pick an
    /// attribute index.
    pub fn exact_value_for(&self, field: &str) -> Option<&Value> {
        match self {
            Filter::Eq(f, v) if f == field => Some(v),
            Filter::And(fs) => fs.iter().find_map(|f| f.exact_value_for(field)),
            _ => None,
        }
    }

    /// If the filter contains a geospatial predicate (possibly inside an
    /// `And`), returns its field and shape — used to route through the 2-D
    /// geohash index.
    pub fn geo_constraint(&self) -> Option<(&str, &GeoShape)> {
        match self {
            Filter::GeoWithin(field, shape) => Some((field, shape)),
            Filter::And(fs) => fs.iter().find_map(|f| f.geo_constraint()),
            _ => None,
        }
    }
}

fn cmp_field(doc: &Document, field: &str, v: &Value) -> Option<std::cmp::Ordering> {
    doc.get(field).map(|dv| dv.cmp(v))
}

/// A borrowed view of an array field's elements; a string field is treated
/// as its sequence of one-character strings, which is how EarthQube stores
/// ASCII-coded labels.
///
/// This view evaluates containment without materialising anything: the
/// residual-filter path of a bitmap-prefiltered search runs `matches` per
/// surviving document, so per-document allocation here (the old
/// `field_elements` cloned the whole array, or built one `String` per
/// character) is banned — the evaluator is hot-path-registered in
/// `lint.toml`.
pub(crate) enum Elements<'a> {
    /// The elements of an array value.
    Array(&'a [Value]),
    /// A string value viewed as one-character string elements.
    Chars(&'a str),
}

impl<'a> Elements<'a> {
    /// The element view of `doc.field`, if the field exists and is an
    /// array or a string.
    pub(crate) fn of(doc: &'a Document, field: &str) -> Option<Elements<'a>> {
        match doc.get(field)? {
            Value::Array(a) => Some(Elements::Array(a)),
            Value::Str(s) => Some(Elements::Chars(s)),
            _ => None,
        }
    }

    /// Number of elements (characters for a string field).
    pub(crate) fn len(&self) -> usize {
        match self {
            Elements::Array(a) => a.len(),
            Elements::Chars(s) => s.chars().count(),
        }
    }

    /// Whether `v` occurs among the elements.
    pub(crate) fn contains(&self, v: &Value) -> bool {
        self.count_of(v) > 0
    }

    /// Multiplicity of `v` among the elements.  For a string field only a
    /// one-character string value can match.
    pub(crate) fn count_of(&self, v: &Value) -> usize {
        match self {
            Elements::Array(a) => a.iter().filter(|e| *e == v).count(),
            Elements::Chars(s) => match v {
                Value::Str(needle) => {
                    let mut cs = needle.chars();
                    match (cs.next(), cs.next()) {
                        (Some(c), None) => s.chars().filter(|x| *x == c).count(),
                        _ => 0,
                    }
                }
                _ => 0,
            },
        }
    }

    /// Whether the elements equal `values` as a multiset (order-insensitive,
    /// multiplicity-sensitive).
    ///
    /// Equal lengths plus equal multiplicity for every queried value is
    /// sufficient: an element outside `values` would make the elements'
    /// total count exceed the sum of the matched multiplicities,
    /// contradicting the length equality.
    pub(crate) fn eq_multiset(&self, values: &[Value]) -> bool {
        self.len() == values.len() && values.iter().all(|v| self.count_of(v) == count_in(values, v))
    }
}

/// Multiplicity of `v` in a value list.
fn count_in(values: &[Value], v: &Value) -> usize {
    values.iter().filter(|x| *x == v).count()
}

fn point_from_field(doc: &Document, field: &str) -> Option<Point> {
    let arr = doc.get(field)?.as_array()?;
    if arr.len() != 2 {
        return None;
    }
    let lon = arr[0].as_float()?;
    let lat = arr[1].as_float()?;
    Point::new(lon, lat).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_geo::BBox;

    fn doc() -> Document {
        Document::new()
            .with("name", "S2A_patch_7")
            .with("country", "Portugal")
            .with("date", Value::Date(750_000))
            .with("labels", "ABT")
            .with("bands", vec![2i64, 3, 4])
            .with("location", Value::Array(vec![Value::Float(-8.5), Value::Float(37.1)]))
            .with("cloud", Value::Null)
    }

    #[test]
    fn comparison_operators() {
        let d = doc();
        assert!(Filter::All.matches(&d));
        assert!(Filter::Eq("country".into(), "Portugal".into()).matches(&d));
        assert!(!Filter::Eq("country".into(), "Austria".into()).matches(&d));
        assert!(Filter::Ne("country".into(), "Austria".into()).matches(&d));
        assert!(Filter::Ne("missing".into(), "x".into()).matches(&d));
        assert!(Filter::Lt("date".into(), Value::Date(750_001)).matches(&d));
        assert!(Filter::Lte("date".into(), Value::Date(750_000)).matches(&d));
        assert!(Filter::Gt("date".into(), Value::Date(749_999)).matches(&d));
        assert!(Filter::Gte("date".into(), Value::Date(750_000)).matches(&d));
        assert!(!Filter::Gt("date".into(), Value::Date(750_000)).matches(&d));
        // Comparisons against missing fields never match.
        assert!(!Filter::Lt("missing".into(), Value::Int(1)).matches(&d));
    }

    #[test]
    fn membership_and_existence() {
        let d = doc();
        assert!(Filter::In("country".into(), vec!["Austria".into(), "Portugal".into()]).matches(&d));
        assert!(!Filter::In("country".into(), vec!["Austria".into()]).matches(&d));
        assert!(Filter::Exists("cloud".into()).matches(&d));
        assert!(!Filter::Exists("nope".into()).matches(&d));
        assert!(Filter::StartsWith("name".into(), "S2A_".into()).matches(&d));
        assert!(!Filter::StartsWith("name".into(), "S1B_".into()).matches(&d));
        assert!(!Filter::StartsWith("date".into(), "S".into()).matches(&d));
    }

    #[test]
    fn array_and_label_string_operators() {
        let d = doc();
        // Array field.
        assert!(Filter::ContainsAll("bands".into(), vec![2i64.into(), 4i64.into()]).matches(&d));
        assert!(!Filter::ContainsAll("bands".into(), vec![2i64.into(), 9i64.into()]).matches(&d));
        assert!(Filter::ContainsAny("bands".into(), vec![9i64.into(), 3i64.into()]).matches(&d));
        assert!(!Filter::ContainsAny("bands".into(), vec![9i64.into()]).matches(&d));
        assert!(Filter::ContainsExactly(
            "bands".into(),
            vec![4i64.into(), 3i64.into(), 2i64.into()]
        )
        .matches(&d));
        assert!(
            !Filter::ContainsExactly("bands".into(), vec![2i64.into(), 3i64.into()]).matches(&d)
        );
        // Label string treated as a character set (the ASCII label encoding).
        assert!(Filter::ContainsAll("labels".into(), vec!["A".into(), "T".into()]).matches(&d));
        assert!(Filter::ContainsAny("labels".into(), vec!["Z".into(), "B".into()]).matches(&d));
        assert!(Filter::ContainsExactly("labels".into(), vec!["A".into(), "B".into(), "T".into()])
            .matches(&d));
        assert!(!Filter::ContainsExactly("labels".into(), vec!["A".into(), "B".into()]).matches(&d));
        // Non-array, non-string fields never match element predicates.
        assert!(!Filter::ContainsAny("date".into(), vec![Value::Date(750_000)]).matches(&d));
    }

    #[test]
    fn contains_exactly_compares_multisets_not_sets() {
        // Regression: the old evaluator compared element *sets* plus a
        // length check, so `["A","A","B"]` matched a query for
        // `["A","B","B"]` (same distinct elements, same length).
        let d = Document::new().with("labels", "AAB").with("bands", vec![2i64, 2, 3]);
        let exactly = |vals: Vec<Value>| Filter::ContainsExactly("labels".into(), vals);
        assert!(!exactly(vec!["A".into(), "B".into(), "B".into()]).matches(&d));
        assert!(exactly(vec!["A".into(), "A".into(), "B".into()]).matches(&d));
        // Order-insensitivity is preserved.
        assert!(exactly(vec!["B".into(), "A".into(), "A".into()]).matches(&d));
        // Subsets and supersets still do not match.
        assert!(!exactly(vec!["A".into(), "B".into()]).matches(&d));
        assert!(!exactly(vec!["A".into(), "A".into(), "A".into(), "B".into()]).matches(&d));
        // Same multiset bug on array fields.
        let on_bands = |vals: Vec<Value>| Filter::ContainsExactly("bands".into(), vals);
        assert!(!on_bands(vec![2i64.into(), 3i64.into(), 3i64.into()]).matches(&d));
        assert!(on_bands(vec![3i64.into(), 2i64.into(), 2i64.into()]).matches(&d));
        // Multi-character values never match a character element.
        assert!(!exactly(vec!["AA".into(), "B".into()]).matches(&d));
    }

    #[test]
    fn logical_operators_compose() {
        let d = doc();
        let f = Filter::Eq("country".into(), "Portugal".into())
            .and(Filter::Gt("date".into(), Value::Date(0)));
        assert!(f.matches(&d));
        assert!(Filter::Or(vec![
            Filter::Eq("country".into(), "Austria".into()),
            Filter::Eq("country".into(), "Portugal".into()),
        ])
        .matches(&d));
        assert!(!Filter::Or(vec![]).matches(&d));
        assert!(Filter::And(vec![]).matches(&d));
        assert!(Filter::Not(Box::new(Filter::Eq("country".into(), "Austria".into()))).matches(&d));
        assert!(!Filter::Not(Box::new(Filter::All)).matches(&d));
    }

    #[test]
    fn and_builder_flattens() {
        let f = Filter::Eq("a".into(), 1i64.into())
            .and(Filter::Eq("b".into(), 2i64.into()))
            .and(Filter::Eq("c".into(), 3i64.into()));
        match f {
            Filter::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(Filter::All.and(Filter::Exists("x".into())), Filter::Exists("x".into()));
    }

    #[test]
    fn geo_within_checks_the_point() {
        let d = doc();
        let hit = GeoShape::Rect(BBox::new(-10.0, 36.0, -6.0, 39.0).unwrap());
        let miss = GeoShape::Rect(BBox::new(0.0, 0.0, 1.0, 1.0).unwrap());
        assert!(Filter::GeoWithin("location".into(), hit).matches(&d));
        assert!(!Filter::GeoWithin("location".into(), miss.clone()).matches(&d));
        assert!(!Filter::GeoWithin("missing".into(), miss.clone()).matches(&d));
        // A malformed location never matches.
        let bad = Document::new().with("location", Value::Array(vec![Value::Float(1.0)]));
        assert!(!Filter::GeoWithin("location".into(), miss).matches(&bad));
    }

    #[test]
    fn planner_helpers_find_constraints_inside_and() {
        let shape = GeoShape::Rect(BBox::new(0.0, 0.0, 1.0, 1.0).unwrap());
        let f = Filter::Eq("country".into(), "Portugal".into())
            .and(Filter::GeoWithin("location".into(), shape.clone()))
            .and(Filter::Gt("date".into(), Value::Date(1)));
        assert_eq!(f.exact_value_for("country"), Some(&Value::Str("Portugal".into())));
        assert_eq!(f.exact_value_for("season"), None);
        let (field, s) = f.geo_constraint().unwrap();
        assert_eq!(field, "location");
        assert_eq!(s, &shape);
        assert!(Filter::All.geo_constraint().is_none());
    }
}
