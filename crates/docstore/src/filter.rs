//! The query filter AST and its evaluator.

use eq_geo::{GeoShape, Point};

use crate::value::{Document, Value};

/// A query predicate over documents.
///
/// Filters compose the comparison, array, logical and geospatial operators
/// that the EarthQube back-end needs: attribute equality/ranges (dates,
/// countries, seasons), label-code array predicates (the three label
/// operators of §3.1) and geospatial containment (the map query shapes).
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    All,
    /// Field equals the value.
    Eq(String, Value),
    /// Field differs from the value (missing fields match).
    Ne(String, Value),
    /// Field is strictly less than the value.
    Lt(String, Value),
    /// Field is less than or equal to the value.
    Lte(String, Value),
    /// Field is strictly greater than the value.
    Gt(String, Value),
    /// Field is greater than or equal to the value.
    Gte(String, Value),
    /// Field value is one of the listed values.
    In(String, Vec<Value>),
    /// The field exists (even if null).
    Exists(String),
    /// The field is an array (or string treated as a set of characters)
    /// containing **all** of the listed values.
    ContainsAll(String, Vec<Value>),
    /// The field is an array (or string) containing **at least one** of the
    /// listed values.
    ContainsAny(String, Vec<Value>),
    /// The field is an array (or string) whose element set is **exactly**
    /// the listed set (order-insensitive).
    ContainsExactly(String, Vec<Value>),
    /// A string field starts with the given prefix.
    StartsWith(String, String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
    /// A geospatial point field (a two-element `[lon, lat]` array) lies
    /// within the shape.
    GeoWithin(String, GeoShape),
}

impl Filter {
    /// Convenience constructor for an AND of two filters, flattening nested ANDs.
    pub fn and(self, other: Filter) -> Filter {
        match (self, other) {
            (Filter::All, f) | (f, Filter::All) => f,
            (Filter::And(mut a), Filter::And(b)) => {
                a.extend(b);
                Filter::And(a)
            }
            (Filter::And(mut a), f) => {
                a.push(f);
                Filter::And(a)
            }
            (f, Filter::And(mut b)) => {
                b.insert(0, f);
                Filter::And(b)
            }
            (a, b) => Filter::And(vec![a, b]),
        }
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::All => true,
            Filter::Eq(field, v) => doc.get(field) == Some(v),
            Filter::Ne(field, v) => doc.get(field) != Some(v),
            Filter::Lt(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_lt()),
            Filter::Lte(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_le()),
            Filter::Gt(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_gt()),
            Filter::Gte(field, v) => cmp_field(doc, field, v).is_some_and(|o| o.is_ge()),
            Filter::In(field, values) => doc.get(field).is_some_and(|v| values.contains(v)),
            Filter::Exists(field) => doc.contains(field),
            Filter::ContainsAll(field, values) => {
                field_elements(doc, field).is_some_and(|els| values.iter().all(|v| els.contains(v)))
            }
            Filter::ContainsAny(field, values) => {
                field_elements(doc, field).is_some_and(|els| values.iter().any(|v| els.contains(v)))
            }
            Filter::ContainsExactly(field, values) => {
                field_elements(doc, field).is_some_and(|els| {
                    els.len() == values.len()
                        && values.iter().all(|v| els.contains(v))
                        && els.iter().all(|e| values.contains(e))
                })
            }
            Filter::StartsWith(field, prefix) => {
                doc.get(field).and_then(Value::as_str).is_some_and(|s| s.starts_with(prefix))
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
            Filter::GeoWithin(field, shape) => {
                point_from_field(doc, field).map(|p| shape.contains(p)).unwrap_or(false)
            }
        }
    }

    /// If the filter constrains `field` to an exact value (possibly inside
    /// an `And`), returns that value — used by the query planner to pick an
    /// attribute index.
    pub fn exact_value_for(&self, field: &str) -> Option<&Value> {
        match self {
            Filter::Eq(f, v) if f == field => Some(v),
            Filter::And(fs) => fs.iter().find_map(|f| f.exact_value_for(field)),
            _ => None,
        }
    }

    /// If the filter contains a geospatial predicate (possibly inside an
    /// `And`), returns its field and shape — used to route through the 2-D
    /// geohash index.
    pub fn geo_constraint(&self) -> Option<(&str, &GeoShape)> {
        match self {
            Filter::GeoWithin(field, shape) => Some((field, shape)),
            Filter::And(fs) => fs.iter().find_map(|f| f.geo_constraint()),
            _ => None,
        }
    }
}

fn cmp_field(doc: &Document, field: &str, v: &Value) -> Option<std::cmp::Ordering> {
    doc.get(field).map(|dv| dv.cmp(v))
}

/// The elements of an array field; a string field is treated as its set of
/// one-character strings, which is how EarthQube stores ASCII-coded labels.
fn field_elements(doc: &Document, field: &str) -> Option<Vec<Value>> {
    match doc.get(field)? {
        Value::Array(a) => Some(a.clone()),
        Value::Str(s) => Some(s.chars().map(|c| Value::Str(c.to_string())).collect()),
        _ => None,
    }
}

fn point_from_field(doc: &Document, field: &str) -> Option<Point> {
    let arr = doc.get(field)?.as_array()?;
    if arr.len() != 2 {
        return None;
    }
    let lon = arr[0].as_float()?;
    let lat = arr[1].as_float()?;
    Point::new(lon, lat).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_geo::BBox;

    fn doc() -> Document {
        Document::new()
            .with("name", "S2A_patch_7")
            .with("country", "Portugal")
            .with("date", Value::Date(750_000))
            .with("labels", "ABT")
            .with("bands", vec![2i64, 3, 4])
            .with("location", Value::Array(vec![Value::Float(-8.5), Value::Float(37.1)]))
            .with("cloud", Value::Null)
    }

    #[test]
    fn comparison_operators() {
        let d = doc();
        assert!(Filter::All.matches(&d));
        assert!(Filter::Eq("country".into(), "Portugal".into()).matches(&d));
        assert!(!Filter::Eq("country".into(), "Austria".into()).matches(&d));
        assert!(Filter::Ne("country".into(), "Austria".into()).matches(&d));
        assert!(Filter::Ne("missing".into(), "x".into()).matches(&d));
        assert!(Filter::Lt("date".into(), Value::Date(750_001)).matches(&d));
        assert!(Filter::Lte("date".into(), Value::Date(750_000)).matches(&d));
        assert!(Filter::Gt("date".into(), Value::Date(749_999)).matches(&d));
        assert!(Filter::Gte("date".into(), Value::Date(750_000)).matches(&d));
        assert!(!Filter::Gt("date".into(), Value::Date(750_000)).matches(&d));
        // Comparisons against missing fields never match.
        assert!(!Filter::Lt("missing".into(), Value::Int(1)).matches(&d));
    }

    #[test]
    fn membership_and_existence() {
        let d = doc();
        assert!(Filter::In("country".into(), vec!["Austria".into(), "Portugal".into()]).matches(&d));
        assert!(!Filter::In("country".into(), vec!["Austria".into()]).matches(&d));
        assert!(Filter::Exists("cloud".into()).matches(&d));
        assert!(!Filter::Exists("nope".into()).matches(&d));
        assert!(Filter::StartsWith("name".into(), "S2A_".into()).matches(&d));
        assert!(!Filter::StartsWith("name".into(), "S1B_".into()).matches(&d));
        assert!(!Filter::StartsWith("date".into(), "S".into()).matches(&d));
    }

    #[test]
    fn array_and_label_string_operators() {
        let d = doc();
        // Array field.
        assert!(Filter::ContainsAll("bands".into(), vec![2i64.into(), 4i64.into()]).matches(&d));
        assert!(!Filter::ContainsAll("bands".into(), vec![2i64.into(), 9i64.into()]).matches(&d));
        assert!(Filter::ContainsAny("bands".into(), vec![9i64.into(), 3i64.into()]).matches(&d));
        assert!(!Filter::ContainsAny("bands".into(), vec![9i64.into()]).matches(&d));
        assert!(Filter::ContainsExactly(
            "bands".into(),
            vec![4i64.into(), 3i64.into(), 2i64.into()]
        )
        .matches(&d));
        assert!(
            !Filter::ContainsExactly("bands".into(), vec![2i64.into(), 3i64.into()]).matches(&d)
        );
        // Label string treated as a character set (the ASCII label encoding).
        assert!(Filter::ContainsAll("labels".into(), vec!["A".into(), "T".into()]).matches(&d));
        assert!(Filter::ContainsAny("labels".into(), vec!["Z".into(), "B".into()]).matches(&d));
        assert!(Filter::ContainsExactly("labels".into(), vec!["A".into(), "B".into(), "T".into()])
            .matches(&d));
        assert!(!Filter::ContainsExactly("labels".into(), vec!["A".into(), "B".into()]).matches(&d));
        // Non-array, non-string fields never match element predicates.
        assert!(!Filter::ContainsAny("date".into(), vec![Value::Date(750_000)]).matches(&d));
    }

    #[test]
    fn logical_operators_compose() {
        let d = doc();
        let f = Filter::Eq("country".into(), "Portugal".into())
            .and(Filter::Gt("date".into(), Value::Date(0)));
        assert!(f.matches(&d));
        assert!(Filter::Or(vec![
            Filter::Eq("country".into(), "Austria".into()),
            Filter::Eq("country".into(), "Portugal".into()),
        ])
        .matches(&d));
        assert!(!Filter::Or(vec![]).matches(&d));
        assert!(Filter::And(vec![]).matches(&d));
        assert!(Filter::Not(Box::new(Filter::Eq("country".into(), "Austria".into()))).matches(&d));
        assert!(!Filter::Not(Box::new(Filter::All)).matches(&d));
    }

    #[test]
    fn and_builder_flattens() {
        let f = Filter::Eq("a".into(), 1i64.into())
            .and(Filter::Eq("b".into(), 2i64.into()))
            .and(Filter::Eq("c".into(), 3i64.into()));
        match f {
            Filter::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(Filter::All.and(Filter::Exists("x".into())), Filter::Exists("x".into()));
    }

    #[test]
    fn geo_within_checks_the_point() {
        let d = doc();
        let hit = GeoShape::Rect(BBox::new(-10.0, 36.0, -6.0, 39.0).unwrap());
        let miss = GeoShape::Rect(BBox::new(0.0, 0.0, 1.0, 1.0).unwrap());
        assert!(Filter::GeoWithin("location".into(), hit).matches(&d));
        assert!(!Filter::GeoWithin("location".into(), miss.clone()).matches(&d));
        assert!(!Filter::GeoWithin("missing".into(), miss.clone()).matches(&d));
        // A malformed location never matches.
        let bad = Document::new().with("location", Value::Array(vec![Value::Float(1.0)]));
        assert!(!Filter::GeoWithin("location".into(), miss).matches(&bad));
    }

    #[test]
    fn planner_helpers_find_constraints_inside_and() {
        let shape = GeoShape::Rect(BBox::new(0.0, 0.0, 1.0, 1.0).unwrap());
        let f = Filter::Eq("country".into(), "Portugal".into())
            .and(Filter::GeoWithin("location".into(), shape.clone()))
            .and(Filter::Gt("date".into(), Value::Date(1)));
        assert_eq!(f.exact_value_for("country"), Some(&Value::Str("Portugal".into())));
        assert_eq!(f.exact_value_for("season"), None);
        let (field, s) = f.geo_constraint().unwrap();
        assert_eq!(field, "location");
        assert_eq!(s, &shape);
        assert!(Filter::All.geo_constraint().is_none());
    }
}
