//! An embedded document store — the MongoDB substitute of the EarthQube
//! data tier (§3.2 of the paper).
//!
//! EarthQube stores four collections in MongoDB: image metadata, raw image
//! data, rendered images and user feedback.  The metadata collection is
//! queried by geospatial extent (through MongoDB's built-in 2-D geohashing
//! index), by label codes, by acquisition date and by other attributes.
//! This crate provides the same capabilities as an embedded library:
//!
//! * [`Value`] / [`Document`] — a dynamically typed document model,
//! * [`Filter`] — a query AST with comparison, logical, array and
//!   geospatial predicates,
//! * [`Collection`] — storage with a primary-key index, secondary B-tree
//!   attribute indexes and a geohash-based 2-D index, plus a small query
//!   planner that picks an index and reports an execution plan,
//! * [`Database`] — a named set of collections,
//! * [`wire`] — the checksummed binary snapshot encoding of values,
//!   documents, collections and databases (the durable storage tier).

#![deny(missing_docs)]

pub mod collection;
pub mod database;
pub mod filter;
pub mod index;
pub mod prefilter;
pub mod value;
pub mod wire;

pub use collection::{
    Collection, CollectionDelta, CollectionStats, DirtyLog, QueryPlan, QueryResult,
};
pub use database::Database;
pub use filter::Filter;
pub use index::{AttributeIndex, GeoIndex};
pub use prefilter::PrefilterPlan;
pub use value::{Document, Value};
pub use wire::{
    decode_database, decode_document, decode_value, encode_database, encode_document, encode_value,
};

/// Internal identifier of a stored document.
pub type DocId = u64;

/// Errors returned by the document store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A document with the same primary key already exists.
    DuplicateKey(String),
    /// The referenced document does not exist.
    NotFound(String),
    /// The referenced collection does not exist.
    NoSuchCollection(String),
    /// A document is missing the collection's primary-key field.
    MissingPrimaryKey(String),
    /// An index was requested on a field with unsupported contents.
    BadIndex(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            StoreError::NotFound(k) => write!(f, "document not found: {k}"),
            StoreError::NoSuchCollection(c) => write!(f, "no such collection: {c}"),
            StoreError::MissingPrimaryKey(field) => {
                write!(f, "document is missing primary key field {field}")
            }
            StoreError::BadIndex(msg) => write!(f, "bad index: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        assert!(StoreError::DuplicateKey("a".into()).to_string().contains("duplicate"));
        assert!(StoreError::NotFound("x".into()).to_string().contains("not found"));
        assert!(StoreError::NoSuchCollection("c".into())
            .to_string()
            .contains("no such collection"));
        assert!(StoreError::MissingPrimaryKey("name".into()).to_string().contains("primary key"));
        assert!(StoreError::BadIndex("oops".into()).to_string().contains("bad index"));
    }
}
