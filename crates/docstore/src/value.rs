//! The dynamically typed document model.

use std::collections::BTreeMap;

/// A dynamically typed value, the unit of storage in the document store.
///
/// The variants mirror the BSON types EarthQube actually uses: scalars,
/// strings, arrays (e.g. label-code lists), nested documents (the
/// `properties` sub-document of the metadata collection), raw bytes (band
/// rasters, rendered images) and dates.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array of values.
    Array(Vec<Value>),
    /// Nested document.
    Doc(BTreeMap<String, Value>),
    /// Raw binary data.
    Bytes(Vec<u8>),
    /// A date stored as an ordinal day number (see
    /// `eq_bigearthnet::AcquisitionDate::ordinal`).
    Date(i64),
}

impl Value {
    /// A human-readable name of the value's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Doc(_) => "document",
            Value::Bytes(_) => "bytes",
            Value::Date(_) => "date",
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers are widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a nested document, if it is one.
    pub fn as_doc(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    /// The value as raw bytes, if it is one.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a date ordinal, if it is one.
    pub fn as_date(&self) -> Option<i64> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// A rank used for cross-type ordering (index keys need a total order).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Date(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
            Value::Array(_) => 6,
            Value::Doc(_) => 7,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// A total order across all value types: values of different types are
    /// ordered by type rank; numbers compare numerically across Int/Float.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let rank = self.type_rank().cmp(&other.type_rank());
        if rank != Ordering::Equal {
            return rank;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) if a.as_float().is_some() && b.as_float().is_some() => {
                a.as_float().unwrap().total_cmp(&b.as_float().unwrap())
            }
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => a.cmp(b),
            (Value::Doc(a), Value::Doc(b)) => a.iter().cmp(b.iter()),
            _ => Ordering::Equal,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// A document: a string-keyed map of [`Value`]s with dotted-path access.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    fields: BTreeMap<String, Value>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style field insertion.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Sets a top-level field.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        self.fields.insert(key.to_string(), value.into());
    }

    /// Gets a field by dotted path, e.g. `"properties.labels"`.
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut parts = path.split('.');
        let first = parts.next()?;
        let mut current = self.fields.get(first)?;
        for part in parts {
            current = current.as_doc()?.get(part)?;
        }
        Some(current)
    }

    /// Whether the dotted path resolves to a (possibly null) value.
    pub fn contains(&self, path: &str) -> bool {
        self.get(path).is_some()
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over the top-level fields.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.fields.iter()
    }

    /// The top-level field map.
    pub fn fields(&self) -> &BTreeMap<String, Value> {
        &self.fields
    }

    /// Removes a top-level field, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.fields.remove(key)
    }

    /// Approximate in-memory size in bytes (used for collection statistics).
    pub fn approximate_size(&self) -> usize {
        fn size_of(v: &Value) -> usize {
            match v {
                Value::Null => 1,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) | Value::Date(_) => 8,
                Value::Str(s) => s.len() + 8,
                Value::Bytes(b) => b.len() + 8,
                Value::Array(a) => 8 + a.iter().map(size_of).sum::<usize>(),
                Value::Doc(d) => 8 + d.iter().map(|(k, v)| k.len() + size_of(v)).sum::<usize>(),
            }
        }
        self.fields.iter().map(|(k, v)| k.len() + size_of(v)).sum()
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Self { fields: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_return_only_matching_types() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Date(100).as_date(), Some(100));
        assert_eq!(Value::Bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2u8][..]));
        assert!(Value::Array(vec![Value::Int(1)]).as_array().is_some());
        assert!(Value::Null.as_str().is_none());
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::Doc(BTreeMap::new()).type_name(), "document");
    }

    #[test]
    fn from_impls_build_expected_variants() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(vec![1i64, 2]), Value::Array(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn ordering_is_total_and_numeric_across_int_float() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(2.5) > Value::Int(2));
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), std::cmp::Ordering::Equal);
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        // Different types order by rank, deterministically.
        assert!(Value::Int(100) < Value::Str("a".into()));
        assert!(Value::Date(5) < Value::Str("".into()));
    }

    #[test]
    fn document_dotted_path_access() {
        let mut props = BTreeMap::new();
        props.insert("labels".to_string(), Value::from("ABC"));
        props.insert("season".to_string(), Value::from("Summer"));
        let doc = Document::new()
            .with("name", "patch_1")
            .with("properties", Value::Doc(props))
            .with("size", 42i64);
        assert_eq!(doc.get("name").unwrap().as_str(), Some("patch_1"));
        assert_eq!(doc.get("properties.labels").unwrap().as_str(), Some("ABC"));
        assert_eq!(doc.get("properties.season").unwrap().as_str(), Some("Summer"));
        assert!(doc.get("properties.missing").is_none());
        assert!(doc.get("missing.path").is_none());
        assert!(doc.contains("properties.labels"));
        assert!(!doc.contains("nope"));
        assert_eq!(doc.len(), 3);
        assert!(!doc.is_empty());
    }

    #[test]
    fn document_mutation_and_iteration() {
        let mut doc = Document::new().with("a", 1i64).with("b", 2i64);
        assert_eq!(doc.remove("a"), Some(Value::Int(1)));
        assert_eq!(doc.remove("a"), None);
        doc.set("c", "three");
        let keys: Vec<&String> = doc.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 2);
        assert_eq!(doc.fields().len(), 2);
    }

    #[test]
    fn approximate_size_grows_with_content() {
        let small = Document::new().with("a", 1i64);
        let big = Document::new().with("a", Value::Bytes(vec![0u8; 1000]));
        assert!(big.approximate_size() > small.approximate_size() + 900);
    }

    #[test]
    fn document_from_iterator() {
        let doc: Document =
            vec![("x".to_string(), Value::Int(1)), ("y".to_string(), Value::Int(2))]
                .into_iter()
                .collect();
        assert_eq!(doc.len(), 2);
        assert_eq!(doc.get("y"), Some(&Value::Int(2)));
    }
}
