//! Compiling a filter's indexable prefix into one candidate bitmap.
//!
//! A bitmap-prefiltered search wants to know, *before* touching any
//! document or code, which documents can possibly match a filter.  The
//! compiler walks the [`Filter`] AST against a collection's posting
//! bitmaps (attribute values, array/label elements, geohash cells — see
//! [`crate::index`]) and produces a [`PrefilterPlan`]: an optional
//! candidate [`Bitmap`] plus the **residual** filter that must still be
//! evaluated on the surviving documents.
//!
//! The contract, pinned by the property suite in
//! `tests/proptest_prefilter.rs`, is:
//!
//! ```text
//! filter.matches(doc)  ==  plan.bitmap.map_or(true, |b| b.contains(id))
//!                          && plan.residual.matches(doc)
//! ```
//!
//! for every live document.  Operators compile in one of three ways:
//!
//! * **Exact** (residual contribution `All`): `Eq`, `Ne`, `In`, `Exists`,
//!   `StartsWith`, `Lt`/`Lte`/`Gt`/`Gte`, `ContainsAny` on an indexed
//!   field.  `Ne` is `live \ value-postings`, which by construction
//!   matches documents *missing* the field — exactly the evaluator's
//!   documented semantics.
//! * **Superset** (the leaf stays in the residual): `ContainsExactly`
//!   (element postings bound membership but not multiset equality) and
//!   `GeoWithin` (covering cells are never point-verified).
//! * **Uncompiled** (`bitmap: None`, the leaf stays in the residual):
//!   anything on an unindexed field.
//!
//! One equality caveat decides exactness: the evaluator's `Eq`/`In`/
//! `Contains*` use `==` (`PartialEq`), while posting lookup uses the index
//! B-tree's total [`Value`] order — and the two disagree on numerics
//! (`Int(2)` Ord-equals `Float(2.0)`; `0.0`/`-0.0` split the other way).
//! Numeric **scalar** query values therefore resolve through the index's
//! canonical exact-numeric postings
//! ([`AttributeIndex::numeric_eq_bitmap`]), which key postings the way
//! `==` compares them — ints and floats apart, `±0.0` merged, `NaN`
//! equal to nothing — so `Eq`/`In`/`Contains*` on numbers compile to
//! exact bitmaps too.  Only numerics *nested* inside `Array`/`Doc` query
//! values still force the leaf to stay uncompiled (composite `==` has no
//! posting mirror).  The comparison operators never needed any of this:
//! both the evaluator and the B-tree use [`Value::cmp`], so ranges are
//! exact for every type straight off the ordered map.

use std::ops::Bound;

use eq_hashindex::Bitmap;

use crate::collection::Collection;
use crate::filter::Filter;
use crate::index::AttributeIndex;
use crate::value::Value;

/// The result of compiling a filter against a collection's posting
/// bitmaps: an optional candidate set plus the filter that must still run
/// on the candidates.
#[derive(Debug, Clone)]
pub struct PrefilterPlan {
    /// Every possibly-matching document — `None` when nothing in the
    /// filter is indexable (the caller falls back to scan-then-filter).
    pub bitmap: Option<Bitmap>,
    /// The part of the filter the bitmap does not decide; [`Filter::All`]
    /// when the bitmap alone is exact.
    pub residual: Filter,
}

impl PrefilterPlan {
    /// Whether the bitmap alone decides the filter (no residual work).
    pub fn is_exact(&self) -> bool {
        self.bitmap.is_some() && self.residual == Filter::All
    }

    /// Candidate-set cardinality, if a bitmap was compiled.
    pub fn cardinality(&self) -> Option<u64> {
        self.bitmap.as_ref().map(Bitmap::len)
    }
}

impl Collection {
    /// Compiles a filter's indexable prefix into a candidate bitmap; see
    /// the [module docs](self) for the exactness contract.
    pub fn compile_prefilter(&self, filter: &Filter) -> PrefilterPlan {
        let (bitmap, residual) = compile(self, filter);
        PrefilterPlan { bitmap, residual }
    }
}

/// Recursive compilation: returns `(bitmap, residual)` satisfying the
/// module-level invariant for this sub-filter.
fn compile(c: &Collection, filter: &Filter) -> (Option<Bitmap>, Filter) {
    match filter {
        Filter::All => (None, Filter::All),

        Filter::Eq(field, v) => match c.attribute_index(field) {
            Some(idx) => match exact_value_bitmap(idx, v) {
                Some(bm) => (Some(bm), Filter::All),
                None => uncompiled(filter),
            },
            None => uncompiled(filter),
        },

        Filter::Ne(field, v) => match c.attribute_index(field) {
            Some(idx) => match exact_value_bitmap(idx, v) {
                Some(matching) => (Some(c.live_bitmap().and_not(&matching)), Filter::All),
                None => uncompiled(filter),
            },
            None => uncompiled(filter),
        },

        Filter::Lt(field, v) => range_leaf(c, field, Bound::Unbounded, Bound::Excluded(v), filter),
        Filter::Lte(field, v) => range_leaf(c, field, Bound::Unbounded, Bound::Included(v), filter),
        Filter::Gt(field, v) => range_leaf(c, field, Bound::Excluded(v), Bound::Unbounded, filter),
        Filter::Gte(field, v) => range_leaf(c, field, Bound::Included(v), Bound::Unbounded, filter),

        Filter::In(field, values) => match c.attribute_index(field) {
            Some(idx) => {
                let mut out = Bitmap::new();
                for v in values {
                    let Some(bm) = exact_value_bitmap(idx, v) else {
                        return uncompiled(filter);
                    };
                    out = out.or(&bm);
                }
                (Some(out), Filter::All)
            }
            None => uncompiled(filter),
        },

        Filter::Exists(field) => match c.attribute_index(field) {
            Some(idx) => (Some(idx.present_bitmap().clone()), Filter::All),
            None => uncompiled(filter),
        },

        Filter::StartsWith(field, prefix) => match c.attribute_index(field) {
            Some(idx) => (Some(idx.prefix_bitmap(prefix)), Filter::All),
            None => uncompiled(filter),
        },

        Filter::ContainsAll(field, values) => match c.attribute_index(field) {
            // The vacuous `ContainsAll(field, [])` matches any document
            // whose field is an array or string; `present` is a superset
            // (it also holds scalar-valued documents), so the leaf stays.
            Some(idx) if values.is_empty() => (Some(idx.present_bitmap().clone()), filter.clone()),
            Some(idx) => {
                let mut out: Option<Bitmap> = None;
                for v in values {
                    let Some(bm) = exact_element_bitmap(idx, v) else {
                        return uncompiled(filter);
                    };
                    out = Some(match out {
                        Some(acc) => acc.and(&bm),
                        None => bm,
                    });
                }
                (out, Filter::All)
            }
            None => uncompiled(filter),
        },

        Filter::ContainsAny(field, values) => match c.attribute_index(field) {
            // `any` over an empty list is false: the empty bitmap is exact.
            Some(_) if values.is_empty() => (Some(Bitmap::new()), Filter::All),
            Some(idx) => {
                let mut out = Bitmap::new();
                for v in values {
                    let Some(bm) = exact_element_bitmap(idx, v) else {
                        return uncompiled(filter);
                    };
                    out = out.or(&bm);
                }
                (Some(out), Filter::All)
            }
            None => uncompiled(filter),
        },

        Filter::ContainsExactly(field, values) => match c.attribute_index(field) {
            // Supersets: element postings bound membership, but never the
            // multiset equality — the leaf always stays in the residual.
            Some(idx) if values.is_empty() => (Some(idx.present_bitmap().clone()), filter.clone()),
            Some(idx) => {
                let mut out: Option<Bitmap> = None;
                for v in values {
                    let Some(bm) = exact_element_bitmap(idx, v) else {
                        return uncompiled(filter);
                    };
                    out = Some(match out {
                        Some(acc) => acc.and(&bm),
                        None => bm,
                    });
                }
                (out, filter.clone())
            }
            None => uncompiled(filter),
        },

        Filter::GeoWithin(field, shape) => match c.geo_index() {
            Some((geo_field, idx)) if geo_field == field => {
                let (bm, _cells) = idx.bitmap_in_shape(shape);
                // Covering cells are a superset: exact point-in-shape
                // verification stays in the residual.
                (Some(bm), filter.clone())
            }
            _ => uncompiled(filter),
        },

        Filter::And(fs) => {
            let mut bitmap: Option<Bitmap> = None;
            let mut residuals = Vec::new();
            for f in fs {
                let (b, r) = compile(c, f);
                if let Some(b) = b {
                    bitmap = Some(match bitmap {
                        Some(acc) => acc.and(&b),
                        None => b,
                    });
                }
                if r != Filter::All {
                    residuals.push(r);
                }
            }
            let residual = match residuals.len() {
                0 => Filter::All,
                1 => residuals.swap_remove(0),
                _ => Filter::And(residuals),
            };
            (bitmap, residual)
        }

        Filter::Or(fs) => {
            // A disjunction only has a candidate set when *every* branch
            // has one (a branch without a bitmap can match anything).
            let mut bitmap = Some(Bitmap::new());
            let mut all_exact = true;
            for f in fs {
                let (b, r) = compile(c, f);
                match (&bitmap, b) {
                    (Some(acc), Some(b)) => bitmap = Some(acc.or(&b)),
                    _ => bitmap = None,
                }
                all_exact &= r == Filter::All;
                if bitmap.is_none() {
                    break;
                }
            }
            match (&bitmap, all_exact) {
                (Some(_), true) => (bitmap, Filter::All),
                // Per-branch residuals cannot be OR-ed independently of
                // their bitmaps, so a partially-exact disjunction keeps
                // the whole `Or` in the residual over the union bitmap.
                (Some(_), false) => (bitmap, filter.clone()),
                (None, _) => (None, filter.clone()),
            }
        }

        Filter::Not(inner) => {
            let (b, r) = compile(c, inner);
            match (b, r) {
                // Only an *exact* inner bitmap can be complemented; a
                // superset's complement would drop matching documents.
                (Some(b), Filter::All) => (Some(c.live_bitmap().and_not(&b)), Filter::All),
                _ => uncompiled(filter),
            }
        }
    }
}

/// A leaf that compiles to nothing: no bitmap, itself as the residual.
fn uncompiled(filter: &Filter) -> (Option<Bitmap>, Filter) {
    (None, filter.clone())
}

/// Shared compilation of the four comparison operators.
fn range_leaf(
    c: &Collection,
    field: &str,
    lo: Bound<&Value>,
    hi: Bound<&Value>,
    filter: &Filter,
) -> (Option<Bitmap>, Filter) {
    match c.attribute_index(field) {
        Some(idx) => (Some(idx.range_bitmap(lo, hi)), Filter::All),
        None => uncompiled(filter),
    }
}

/// The **exact** `==` equality bitmap for one query value, when the index
/// can supply one: numeric scalars go through the canonical numeric
/// postings (`Int(2)` and `Float(2.0)` resolve to distinct sets, `NaN` to
/// the empty set), every other `==`-faithful value through the ordered
/// posting map.  `None` means no exact bitmap exists — numerics nested
/// inside `Array`/`Doc` query values — and the leaf must stay uncompiled.
fn exact_value_bitmap(idx: &AttributeIndex, v: &Value) -> Option<Bitmap> {
    if let Some(bm) = idx.numeric_eq_bitmap(v) {
        return Some(bm);
    }
    if ord_eq_safe(v) {
        return Some(idx.value_bitmap(v).cloned().unwrap_or_default());
    }
    None
}

/// [`exact_value_bitmap`]'s counterpart for the `Contains*` family:
/// documents whose indexed value *contains* an element `==` to `v`.
fn exact_element_bitmap(idx: &AttributeIndex, v: &Value) -> Option<Bitmap> {
    if let Some(bm) = idx.numeric_element_bitmap(v) {
        return Some(bm);
    }
    if ord_eq_safe(v) {
        return Some(idx.element_bitmap(v).cloned().unwrap_or_default());
    }
    None
}

/// Whether `==` and the index order's equality coincide for this value:
/// `Int`/`Float` anywhere inside breaks the correspondence (`Int(2)`
/// Ord-equals `Float(2.0)` but `!=` it; `NaN`/`±0.0` split the other
/// way), so such values cannot drive an exact equality bitmap **through
/// the ordered posting map**.  Numeric *scalars* are instead resolved
/// through the canonical numeric postings before this check is consulted
/// (see [`exact_value_bitmap`]); only composite values with numerics
/// inside reach here and stay uncompiled.
fn ord_eq_safe(v: &Value) -> bool {
    match v {
        Value::Int(_) | Value::Float(_) => false,
        Value::Array(elements) => elements.iter().all(ord_eq_safe),
        Value::Doc(doc) => doc.iter().all(|(_, inner)| ord_eq_safe(inner)),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Document;
    use eq_geo::{BBox, GeoShape};

    fn labelled(name: &str, country: &str, labels: &str, date: i64) -> Document {
        Document::new()
            .with("name", name)
            .with("country", country)
            .with("labels", labels)
            .with("date", Value::Date(date))
            .with(
                "location",
                Value::Array(vec![Value::Float(14.0 + date as f64 * 0.001), Value::Float(47.5)]),
            )
    }

    fn sample() -> Collection {
        let mut c = Collection::new("metadata", "name");
        c.create_attribute_index("country");
        c.create_attribute_index("labels");
        c.create_attribute_index("date");
        c.create_geo_index("location").unwrap();
        c.insert(labelled("p0", "Austria", "AB", 100)).unwrap();
        c.insert(labelled("p1", "Austria", "BC", 200)).unwrap();
        c.insert(labelled("p2", "Portugal", "A", 300)).unwrap();
        c.insert(labelled("p3", "Portugal", "CD", 400)).unwrap();
        c.insert(labelled("p4", "Finland", "AAB", 500)).unwrap();
        c
    }

    /// The module-level invariant, checked exhaustively over a collection.
    fn assert_invariant(c: &Collection, filter: &Filter) {
        let plan = c.compile_prefilter(filter);
        for (&id, doc) in c.iter() {
            let in_bitmap = plan.bitmap.as_ref().is_none_or(|b| b.contains(id));
            let residual_ok = plan.residual.matches(doc);
            assert_eq!(
                filter.matches(doc),
                in_bitmap && residual_ok,
                "invariant broken for doc {id} under {filter:?} (plan {plan:?})"
            );
        }
    }

    #[test]
    fn eq_in_ne_and_exists_compile_exactly() {
        let c = sample();
        for f in [
            Filter::Eq("country".into(), "Austria".into()),
            Filter::Eq("country".into(), "Nowhere".into()),
            Filter::In("country".into(), vec!["Austria".into(), "Finland".into()]),
            Filter::In("country".into(), vec![]),
            Filter::Ne("country".into(), "Austria".into()),
            Filter::Exists("labels".into()),
            Filter::StartsWith("country".into(), "Po".into()),
        ] {
            let plan = c.compile_prefilter(&f);
            assert!(plan.is_exact(), "{f:?} should compile exactly, got {plan:?}");
            assert_invariant(&c, &f);
        }
        // Cardinalities drive the planner.
        let plan = c.compile_prefilter(&Filter::Eq("country".into(), "Austria".into()));
        assert_eq!(plan.cardinality(), Some(2));
    }

    #[test]
    fn ne_matches_documents_missing_the_field() {
        let mut c = sample();
        // A document without `country` at all.
        c.insert(Document::new().with("name", "bare").with("labels", "Z")).unwrap();
        let f = Filter::Ne("country".into(), "Austria".into());
        let plan = c.compile_prefilter(&f);
        assert!(plan.is_exact());
        let bare_id = c.find(&Filter::Eq("name".into(), "bare".into())).ids[0];
        assert!(
            plan.bitmap.as_ref().is_some_and(|b| b.contains(bare_id)),
            "Ne must keep documents missing the field"
        );
        assert_invariant(&c, &f);
    }

    #[test]
    fn ranges_compile_exactly_for_any_value_type() {
        let c = sample();
        for f in [
            Filter::Lt("date".into(), Value::Date(300)),
            Filter::Lte("date".into(), Value::Date(300)),
            Filter::Gt("date".into(), Value::Date(300)),
            Filter::Gte("date".into(), Value::Date(300)),
        ] {
            let plan = c.compile_prefilter(&f);
            assert!(plan.is_exact(), "{f:?} should compile exactly");
            assert_invariant(&c, &f);
        }
        let lt = c.compile_prefilter(&Filter::Lt("date".into(), Value::Date(300)));
        assert_eq!(lt.cardinality(), Some(2));
    }

    #[test]
    fn label_contains_operators_use_element_postings() {
        let c = sample();
        // ContainsAny/All are exact through element postings.
        let any = c
            .compile_prefilter(&Filter::ContainsAny("labels".into(), vec!["A".into(), "D".into()]));
        assert!(any.is_exact());
        assert_eq!(any.cardinality(), Some(4)); // p0, p2, p3, p4
        let all = c
            .compile_prefilter(&Filter::ContainsAll("labels".into(), vec!["A".into(), "B".into()]));
        assert!(all.is_exact());
        assert_eq!(all.cardinality(), Some(2)); // p0, p4
                                                // ContainsExactly is a superset: the leaf survives in the residual.
        let exactly = c.compile_prefilter(&Filter::ContainsExactly(
            "labels".into(),
            vec!["A".into(), "B".into()],
        ));
        assert!(!exactly.is_exact());
        assert_eq!(exactly.cardinality(), Some(2), "p0 (AB) and p4 (AAB) both survive the bitmap");
        for f in [
            Filter::ContainsAny("labels".into(), vec!["A".into(), "D".into()]),
            Filter::ContainsAny("labels".into(), vec![]),
            Filter::ContainsAll("labels".into(), vec!["A".into(), "B".into()]),
            Filter::ContainsAll("labels".into(), vec![]),
            Filter::ContainsExactly("labels".into(), vec!["A".into(), "B".into()]),
            Filter::ContainsExactly("labels".into(), vec![]),
        ] {
            assert_invariant(&c, &f);
        }
    }

    #[test]
    fn geo_within_is_a_superset_with_residual_verification() {
        let c = sample();
        let shape = GeoShape::Rect(BBox::new(13.9, 47.0, 14.25, 48.0).unwrap());
        let f = Filter::GeoWithin("location".into(), shape);
        let plan = c.compile_prefilter(&f);
        assert!(plan.bitmap.is_some(), "geo leaf should produce a cell-cover bitmap");
        assert_eq!(plan.residual, f, "geo verification must stay in the residual");
        assert_invariant(&c, &f);
    }

    #[test]
    fn and_intersects_and_or_unions() {
        let c = sample();
        let f = Filter::Eq("country".into(), "Austria".into())
            .and(Filter::ContainsAny("labels".into(), vec!["B".into()]));
        let plan = c.compile_prefilter(&f);
        assert!(plan.is_exact());
        assert_eq!(plan.cardinality(), Some(2)); // p0, p1
        assert_invariant(&c, &f);

        let f = Filter::Or(vec![
            Filter::Eq("country".into(), "Finland".into()),
            Filter::Eq("country".into(), "Portugal".into()),
        ]);
        let plan = c.compile_prefilter(&f);
        assert!(plan.is_exact());
        assert_eq!(plan.cardinality(), Some(3)); // p2, p3, p4
        assert_invariant(&c, &f);

        // An Or with a superset branch keeps the whole Or in the residual.
        let shape = GeoShape::Rect(BBox::new(13.9, 47.0, 14.25, 48.0).unwrap());
        let f = Filter::Or(vec![
            Filter::Eq("country".into(), "Finland".into()),
            Filter::GeoWithin("location".into(), shape),
        ]);
        let plan = c.compile_prefilter(&f);
        assert!(plan.bitmap.is_some());
        assert_eq!(plan.residual, f);
        assert_invariant(&c, &f);

        // An Or with an uncompilable branch has no bitmap at all.
        let f = Filter::Or(vec![
            Filter::Eq("country".into(), "Finland".into()),
            Filter::Eq("unindexed".into(), "x".into()),
        ]);
        let plan = c.compile_prefilter(&f);
        assert!(plan.bitmap.is_none());
        assert_invariant(&c, &f);
    }

    #[test]
    fn not_complements_only_exact_children() {
        let c = sample();
        let f = Filter::Not(Box::new(Filter::Eq("country".into(), "Austria".into())));
        let plan = c.compile_prefilter(&f);
        assert!(plan.is_exact());
        assert_eq!(plan.cardinality(), Some(3));
        assert_invariant(&c, &f);

        // Not over a superset leaf must NOT complement the bitmap.
        let shape = GeoShape::Rect(BBox::new(13.9, 47.0, 14.25, 48.0).unwrap());
        let f = Filter::Not(Box::new(Filter::GeoWithin("location".into(), shape)));
        let plan = c.compile_prefilter(&f);
        assert!(plan.bitmap.is_none());
        assert_eq!(plan.residual, f);
        assert_invariant(&c, &f);
    }

    #[test]
    fn numeric_equality_compiles_exactly_through_canonical_postings() {
        let mut c = Collection::new("t", "name");
        c.create_attribute_index("x");
        c.insert(Document::new().with("name", "a").with("x", Value::Float(2.0))).unwrap();
        c.insert(Document::new().with("name", "b").with("x", Value::Int(2))).unwrap();
        c.insert(Document::new().with("name", "z").with("x", Value::Float(-0.0))).unwrap();
        c.insert(
            Document::new()
                .with("name", "arr")
                .with("x", Value::Array(vec![Value::Int(2), Value::Float(3.5)])),
        )
        .unwrap();
        c.insert(Document::new().with("name", "bare")).unwrap();

        // Int(2) and Float(2.0) share a B-tree key under the index order
        // but are `!=` to the evaluator; the canonical numeric postings
        // keep them apart, so equality-family leaves compile *exactly*.
        for f in [
            Filter::Eq("x".into(), Value::Int(2)),
            Filter::Eq("x".into(), Value::Float(2.0)),
            Filter::Eq("x".into(), Value::Float(0.0)), // merges with the stored -0.0
            Filter::Eq("x".into(), Value::Float(f64::NAN)), // == nothing: empty, still exact
            Filter::Ne("x".into(), Value::Int(2)),
            Filter::In("x".into(), vec![Value::Int(2), Value::Float(3.5), "y".into()]),
            Filter::ContainsAny("x".into(), vec![Value::Int(2)]),
            Filter::ContainsAll("x".into(), vec![Value::Int(2), Value::Float(3.5)]),
        ] {
            let plan = c.compile_prefilter(&f);
            assert!(plan.is_exact(), "{f:?} should compile exactly, got {plan:?}");
            assert_invariant(&c, &f);
        }
        let eq_int = c.compile_prefilter(&Filter::Eq("x".into(), Value::Int(2)));
        assert_eq!(eq_int.cardinality(), Some(1), "only doc b holds Int(2)");
        let eq_float = c.compile_prefilter(&Filter::Eq("x".into(), Value::Float(2.0)));
        assert_eq!(eq_float.cardinality(), Some(1), "only doc a holds Float(2.0)");
        assert_eq!(
            c.compile_prefilter(&Filter::Eq("x".into(), Value::Float(0.0))).cardinality(),
            Some(1),
            "-0.0 == 0.0 to the evaluator, so the stored -0.0 matches"
        );
        assert_eq!(
            c.compile_prefilter(&Filter::Eq("x".into(), Value::Float(f64::NAN))).cardinality(),
            Some(0)
        );
        // Ne keeps documents missing the field, like every other Ne.
        assert_eq!(
            c.compile_prefilter(&Filter::Ne("x".into(), Value::Int(2))).cardinality(),
            Some(4)
        );
        // Array elements resolve through the numeric element postings.
        assert_eq!(
            c.compile_prefilter(&Filter::ContainsAny("x".into(), vec![Value::Float(3.5)]))
                .cardinality(),
            Some(1)
        );
        assert_eq!(
            c.compile_prefilter(&Filter::ContainsAny("x".into(), vec![Value::Float(2.0)]))
                .cardinality(),
            Some(0),
            "the array holds Int(2), which the evaluator's == keeps distinct from Float(2.0)"
        );

        // Composite query values with numerics inside have no posting
        // mirror for `==` and must stay uncompiled.
        for f in [
            Filter::Eq("x".into(), Value::Array(vec![Value::Int(2), Value::Float(3.5)])),
            Filter::In("x".into(), vec![Value::Array(vec![Value::Int(2)])]),
        ] {
            let plan = c.compile_prefilter(&f);
            assert!(plan.bitmap.is_none(), "{f:?} must stay uncompiled");
            assert_invariant(&c, &f);
        }

        // Ranges stay exact even for numerics (cmp on both sides).
        let f = Filter::Lte("x".into(), Value::Float(2.5));
        assert!(c.compile_prefilter(&f).is_exact());
        assert_invariant(&c, &f);
    }

    #[test]
    fn deletes_keep_postings_and_universe_in_sync() {
        let mut c = sample();
        c.delete_by_key(&"p0".into()).unwrap();
        c.delete_by_key(&"p4".into()).unwrap();
        for f in [
            Filter::Eq("country".into(), "Austria".into()),
            Filter::Ne("country".into(), "Austria".into()),
            Filter::ContainsAll("labels".into(), vec!["A".into(), "B".into()]),
            Filter::Exists("labels".into()),
        ] {
            assert_invariant(&c, &f);
        }
        let all = c
            .compile_prefilter(&Filter::ContainsAll("labels".into(), vec!["A".into(), "B".into()]));
        assert_eq!(all.cardinality(), Some(0), "both AB-labelled documents are gone");
        assert_eq!(c.live_bitmap().len(), 3);
    }
}
