//! Binary wire format for the document store: values, documents,
//! collections and whole databases.
//!
//! This is the docstore's half of the durable snapshot format (see the
//! repository's `ARCHITECTURE.md`, "Durability"): little-endian, length
//! prefixed, and decoded with [`eq_wire::Reader`]'s checked reads, so a
//! truncated or bit-flipped input returns a clean [`WireError`] instead of
//! panicking or over-allocating.
//!
//! Layouts (all integers little-endian):
//!
//! ```text
//! value       := tag:u8 payload
//!   0 Null    | 1 Bool b:u8 | 2 Int i64 | 3 Float f64-bits | 4 Str string
//!   5 Array n:u32 value*n    | 6 Doc n:u32 (string value)*n
//!   7 Bytes bytes            | 8 Date i64
//! document    := n:u32 (string value)*n          (fields in key order)
//! collection  := name pk next_id:u64
//!                attrs:u32 string*                (attribute-index fields)
//!                geo:u8 [string]                  (optional geo-index field)
//!                docs:u32 (doc_id:u64 document)*  (in insertion order)
//! database    := n:u32 collection*n               (in name order)
//! ```
//!
//! Only *storage* state is serialized; query filters are runtime values and
//! are deliberately not part of the format.  Encoding is deterministic
//! (documents iterate their `BTreeMap` fields in key order, collections in
//! insertion order, databases in name order), so encoding the same logical
//! state twice yields byte-identical output — which is what lets the
//! property suite assert encode→decode→encode fixpoints.

use crate::collection::{Collection, CollectionDelta};
use crate::database::Database;
use crate::value::{Document, Value};
use crate::DocId;
use eq_wire::{Reader, WireError, Writer};

/// Maximum nesting depth accepted when decoding a [`Value`].  Corrupt input
/// could otherwise encode arbitrarily deep `Array`/`Doc` towers and blow
/// the decoder's stack; genuine EarthQube documents nest two levels deep.
pub const MAX_VALUE_DEPTH: usize = 64;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_ARRAY: u8 = 5;
const TAG_DOC: u8 = 6;
const TAG_BYTES: u8 = 7;
const TAG_DATE: u8 = 8;

/// Encodes a value.
pub fn encode_value(value: &Value, w: &mut Writer) {
    match value {
        Value::Null => w.u8(TAG_NULL),
        Value::Bool(b) => {
            w.u8(TAG_BOOL);
            w.bool(*b);
        }
        Value::Int(i) => {
            w.u8(TAG_INT);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(TAG_FLOAT);
            w.f64(*f);
        }
        Value::Str(s) => {
            w.u8(TAG_STR);
            w.str(s);
        }
        Value::Array(items) => {
            w.u8(TAG_ARRAY);
            w.seq_len(items.len());
            for item in items {
                encode_value(item, w);
            }
        }
        Value::Doc(fields) => {
            w.u8(TAG_DOC);
            w.seq_len(fields.len());
            for (key, val) in fields {
                w.str(key);
                encode_value(val, w);
            }
        }
        Value::Bytes(b) => {
            w.u8(TAG_BYTES);
            w.bytes(b);
        }
        Value::Date(d) => {
            w.u8(TAG_DATE);
            w.i64(*d);
        }
    }
}

/// Decodes a value.
///
/// # Errors
/// Returns a [`WireError`] on truncation, an unknown tag, invalid UTF-8 or
/// nesting deeper than [`MAX_VALUE_DEPTH`]; never panics.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    decode_value_at(r, 0)
}

fn decode_value_at(r: &mut Reader<'_>, depth: usize) -> Result<Value, WireError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(WireError::Corrupt(format!("value nesting exceeds {MAX_VALUE_DEPTH} levels")));
    }
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => Ok(Value::Bool(r.bool()?)),
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_FLOAT => Ok(Value::Float(r.f64()?)),
        TAG_STR => Ok(Value::Str(r.str()?.to_string())),
        TAG_ARRAY => {
            let n = r.seq_len(1)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value_at(r, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_DOC => {
            let n = r.seq_len(1)?;
            let mut fields = std::collections::BTreeMap::new();
            for _ in 0..n {
                let key = r.str()?.to_string();
                let val = decode_value_at(r, depth + 1)?;
                if fields.insert(key.clone(), val).is_some() {
                    return Err(WireError::Corrupt(format!("duplicate document key {key:?}")));
                }
            }
            Ok(Value::Doc(fields))
        }
        TAG_BYTES => Ok(Value::Bytes(r.bytes()?.to_vec())),
        TAG_DATE => Ok(Value::Date(r.i64()?)),
        other => Err(WireError::Corrupt(format!("unknown value tag {other:#04x}"))),
    }
}

/// Encodes a document (fields in key order, so output is deterministic).
pub fn encode_document(doc: &Document, w: &mut Writer) {
    w.seq_len(doc.len());
    for (key, value) in doc.iter() {
        w.str(key);
        encode_value(value, w);
    }
}

/// Decodes a document.
///
/// # Errors
/// Returns a [`WireError`] on any structural problem; never panics.
pub fn decode_document(r: &mut Reader<'_>) -> Result<Document, WireError> {
    let n = r.seq_len(1)?;
    let mut fields = Vec::with_capacity(n);
    let mut last_key: Option<String> = None;
    for _ in 0..n {
        let key = r.str()?.to_string();
        if last_key.as_deref().is_some_and(|prev| prev >= key.as_str()) {
            return Err(WireError::Corrupt(format!("document keys out of order at {key:?}")));
        }
        let value = decode_value_at(r, 1)?;
        last_key = Some(key.clone());
        fields.push((key, value));
    }
    Ok(fields.into_iter().collect())
}

/// Encodes a collection: schema (name, primary key, declared indexes) plus
/// every document with its internal id, in insertion order.
pub fn encode_collection(collection: &Collection, w: &mut Writer) {
    let stats = collection.stats();
    w.str(collection.name());
    w.str(collection.primary_key());
    w.u64(collection.next_id());
    w.seq_len(stats.attribute_indexes.len());
    for field in &stats.attribute_indexes {
        w.str(field);
    }
    match &stats.geo_index {
        Some(field) => {
            w.u8(1);
            w.str(field);
        }
        None => w.u8(0),
    }
    w.seq_len(collection.len());
    for (&id, doc) in collection.iter() {
        w.u64(id);
        encode_document(doc, w);
    }
}

/// Decodes a collection, rebuilding its primary-key, attribute and geo
/// indexes from the stored documents.
///
/// # Errors
/// Returns a [`WireError`] on structural corruption, including logical
/// inconsistencies a bit flip can produce (duplicate primary keys, ids at
/// or above `next_id`).
pub fn decode_collection(r: &mut Reader<'_>) -> Result<Collection, WireError> {
    let name = r.str()?.to_string();
    let primary_key = r.str()?.to_string();
    let next_id = r.u64()?;
    let n_attrs = r.seq_len(1)?;
    let mut attr_fields = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        attr_fields.push(r.str()?.to_string());
    }
    let geo_field = match r.u8()? {
        0 => None,
        1 => Some(r.str()?.to_string()),
        other => return Err(WireError::Corrupt(format!("invalid geo-index flag {other:#04x}"))),
    };
    let n_docs = r.seq_len(8)?;
    let mut docs: Vec<(DocId, Document)> = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let id = r.u64()?;
        docs.push((id, decode_document(r)?));
    }
    Collection::from_parts(&name, &primary_key, next_id, docs, &attr_fields, geo_field.as_deref())
        .map_err(|e| WireError::Corrupt(format!("collection {name:?} is inconsistent: {e}")))
}

/// Encodes a collection delta: the documents that changed since a base
/// snapshot, as captured by [`Collection::capture_delta`].
///
/// Layout: `name next_id:u64 deletes:u32 value* upserts:u32 (doc_id:u64
/// document)*` — deletes in key order, upserts in ascending id order.
pub fn encode_collection_delta(delta: &CollectionDelta, w: &mut Writer) {
    w.str(&delta.name);
    w.u64(delta.next_id);
    w.seq_len(delta.deletes.len());
    for key in &delta.deletes {
        encode_value(key, w);
    }
    w.seq_len(delta.upserts.len());
    for (id, doc) in &delta.upserts {
        w.u64(*id);
        encode_document(doc, w);
    }
}

/// Decodes a collection delta, validating that upsert ids are strictly
/// ascending and below the delta's watermark.
///
/// # Errors
/// Returns a [`WireError`] on any structural problem; never panics.
pub fn decode_collection_delta(r: &mut Reader<'_>) -> Result<CollectionDelta, WireError> {
    let name = r.str()?.to_string();
    let next_id = r.u64()?;
    let n_deletes = r.seq_len(1)?;
    let mut deletes = Vec::with_capacity(n_deletes);
    for _ in 0..n_deletes {
        deletes.push(decode_value(r)?);
    }
    let n_upserts = r.seq_len(8)?;
    let mut upserts: Vec<(DocId, Document)> = Vec::with_capacity(n_upserts);
    for _ in 0..n_upserts {
        let id = r.u64()?;
        if upserts.last().is_some_and(|(prev, _)| id <= *prev) {
            return Err(WireError::Corrupt(format!("delta document ids out of order at {id}")));
        }
        if id >= next_id {
            return Err(WireError::Corrupt(format!(
                "delta document id {id} is not below the delta's next_id {next_id}"
            )));
        }
        upserts.push((id, decode_document(r)?));
    }
    Ok(CollectionDelta { name, next_id, deletes, upserts })
}

/// Encodes a database (collections in name order).
pub fn encode_database(db: &Database, w: &mut Writer) {
    w.seq_len(db.len());
    for collection in db.collections() {
        encode_collection(collection, w);
    }
}

/// Decodes a database.
///
/// # Errors
/// Returns a [`WireError`] on any structural problem; never panics.
pub fn decode_database(r: &mut Reader<'_>) -> Result<Database, WireError> {
    let n = r.seq_len(1)?;
    let mut collections = Vec::with_capacity(n);
    for _ in 0..n {
        collections.push(decode_collection(r)?);
    }
    Ok(Database::from_collections(collections))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;

    fn sample_doc(name: &str) -> Document {
        let mut nested = std::collections::BTreeMap::new();
        nested.insert("labels".to_string(), Value::Str("ABC".into()));
        nested.insert("flag".to_string(), Value::Bool(true));
        Document::new()
            .with("name", name)
            .with("count", 42i64)
            .with("ratio", 2.5f64)
            .with("when", Value::Date(123))
            .with("blob", Value::Bytes(vec![0, 255, 7]))
            .with("tags", Value::Array(vec![Value::Int(1), Value::Null]))
            .with("properties", Value::Doc(nested))
    }

    fn encode_to_vec<T>(value: &T, f: impl Fn(&T, &mut Writer)) -> Vec<u8> {
        let mut w = Writer::new();
        f(value, &mut w);
        w.into_bytes()
    }

    #[test]
    fn value_and_document_roundtrip() {
        let doc = sample_doc("p1");
        let bytes = encode_to_vec(&doc, encode_document);
        let mut r = Reader::new(&bytes);
        let back = decode_document(&mut r).unwrap();
        assert!(r.is_empty(), "document encoding is self-delimiting");
        assert_eq!(back, doc);
        // Deterministic: re-encoding yields identical bytes.
        assert_eq!(encode_to_vec(&back, encode_document), bytes);
    }

    #[test]
    fn unknown_tags_and_bad_flags_are_corrupt() {
        let mut r = Reader::new(&[99]);
        assert!(matches!(decode_value(&mut r), Err(WireError::Corrupt(_))));
        // Bool with an out-of-range payload byte.
        let mut r = Reader::new(&[TAG_BOOL, 9]);
        assert!(matches!(decode_value(&mut r), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // A tower of one-element arrays deeper than the limit.
        let mut bytes = Vec::new();
        for _ in 0..(MAX_VALUE_DEPTH + 2) {
            bytes.push(TAG_ARRAY);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(TAG_NULL);
        let mut r = Reader::new(&bytes);
        assert!(matches!(decode_value(&mut r), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn collection_roundtrip_preserves_ids_indexes_and_plans() {
        let mut c = Collection::new("metadata", "name");
        c.create_attribute_index("count");
        for i in 0..6 {
            c.insert(sample_doc(&format!("p{i}"))).unwrap();
        }
        // Leave an id gap so the roundtrip must preserve it.
        c.delete_by_key(&"p3".into()).unwrap();

        let bytes = encode_to_vec(&c, encode_collection);
        let back = decode_collection(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.next_id(), c.next_id());
        let ids: Vec<_> = back.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, c.iter().map(|(id, _)| *id).collect::<Vec<_>>());
        // Indexed queries take the same path with the same counts.
        let f = Filter::Eq("count".into(), Value::Int(42));
        let (a, b) = (c.find(&f), back.find(&f));
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.plan, b.plan);
        // The new collection allocates fresh ids above the historical ones.
        let mut back = back;
        let new_id = back.insert(sample_doc("fresh")).unwrap();
        assert_eq!(new_id, c.next_id());
    }

    #[test]
    fn database_roundtrip() {
        let mut db = Database::new();
        db.create_collection("metadata", "name").insert(sample_doc("p")).unwrap();
        db.create_collection("feedback", "id")
            .insert(Document::new().with("id", 0i64).with("text", "hi"))
            .unwrap();
        let bytes = encode_to_vec(&db, encode_database);
        let back = decode_database(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.collection_names(), db.collection_names());
        assert_eq!(back.collection("metadata").unwrap().len(), 1);
        assert_eq!(encode_to_vec(&back, encode_database), bytes);
    }

    #[test]
    fn corrupt_collection_internals_are_rejected() {
        // Duplicate primary keys cannot be restored.
        let mut w = Writer::new();
        w.str("c");
        w.str("name");
        w.u64(10);
        w.seq_len(0); // no attribute indexes
        w.u8(0); // no geo index
        w.seq_len(2);
        for id in [0u64, 1] {
            w.u64(id);
            encode_document(&Document::new().with("name", "dup"), &mut w);
        }
        let buf = w.into_bytes();
        assert!(matches!(decode_collection(&mut Reader::new(&buf)), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn duplicate_document_ids_are_rejected() {
        // Two docs with distinct primary keys but the same internal id: a
        // corruption shape the CRC cannot rule out, which must fail decode
        // instead of building a collection that panics later.
        let mut w = Writer::new();
        w.str("c");
        w.str("name");
        w.u64(10);
        w.seq_len(0); // no attribute indexes
        w.u8(0); // no geo index
        w.seq_len(2);
        for name in ["a", "b"] {
            w.u64(0); // same id twice
            encode_document(&Document::new().with("name", name), &mut w);
        }
        let buf = w.into_bytes();
        assert!(matches!(decode_collection(&mut Reader::new(&buf)), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn collection_delta_roundtrips_and_rejects_corruption() {
        let mut base = Collection::new("metadata", "name");
        for i in 0..4 {
            base.insert(sample_doc(&format!("p{i}"))).unwrap();
        }
        base.take_dirty();
        let mut live = base.clone();
        live.delete_by_key(&"p1".into()).unwrap();
        live.insert(sample_doc("p4")).unwrap();
        live.insert(sample_doc("p5")).unwrap();
        let log = live.take_dirty();
        let delta = live.capture_delta(&log);

        let bytes = encode_to_vec(&delta, encode_collection_delta);
        let mut r = Reader::new(&bytes);
        let back = decode_collection_delta(&mut r).unwrap();
        assert!(r.is_empty(), "delta encoding is self-delimiting");
        assert_eq!(back, delta);
        assert_eq!(encode_to_vec(&back, encode_collection_delta), bytes);

        base.apply_delta(back).unwrap();
        assert_eq!(base.len(), live.len());
        assert_eq!(base.next_id(), live.next_id());

        // Every strict prefix fails to decode.
        for cut in 0..bytes.len() {
            assert!(
                decode_collection_delta(&mut Reader::new(&bytes[..cut])).is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn delta_ids_at_or_above_the_watermark_are_rejected() {
        let delta = crate::CollectionDelta {
            name: "c".into(),
            next_id: 3,
            deletes: vec![],
            upserts: vec![(3, sample_doc("p"))],
        };
        let bytes = encode_to_vec(&delta, encode_collection_delta);
        assert!(matches!(
            decode_collection_delta(&mut Reader::new(&bytes)),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_database_prefixes_error_cleanly() {
        let mut db = Database::new();
        db.create_collection("metadata", "name").insert(sample_doc("p")).unwrap();
        let bytes = encode_to_vec(&db, encode_database);
        for cut in 0..bytes.len() {
            assert!(
                decode_database(&mut Reader::new(&bytes[..cut])).is_err(),
                "strict prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }
}
