//! Secondary indexes: ordered attribute indexes and the geohash 2-D index.

use std::collections::BTreeMap;

use eq_geo::{geohash, BBox, GeoShape, Point};

use crate::value::Value;
use crate::DocId;

/// An ordered secondary index over one (dotted-path) attribute.
///
/// Implemented as a B-tree from attribute value to posting list, which
/// supports exact lookups and ordered range scans — the two access paths the
/// query planner uses.
#[derive(Debug, Clone, Default)]
pub struct AttributeIndex {
    entries: BTreeMap<Value, Vec<DocId>>,
    len: usize,
}

impl AttributeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed (value, document) postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Adds a posting.
    pub fn insert(&mut self, key: Value, doc: DocId) {
        self.entries.entry(key).or_default().push(doc);
        self.len += 1;
    }

    /// Removes a posting (if present).
    pub fn remove(&mut self, key: &Value, doc: DocId) {
        if let Some(list) = self.entries.get_mut(key) {
            if let Some(pos) = list.iter().position(|d| *d == doc) {
                list.swap_remove(pos);
                self.len -= 1;
            }
            if list.is_empty() {
                self.entries.remove(key);
            }
        }
    }

    /// Documents whose attribute equals `key`.
    pub fn lookup(&self, key: &Value) -> Vec<DocId> {
        self.entries.get(key).cloned().unwrap_or_default()
    }

    /// Documents whose attribute lies in `[lo, hi]` (inclusive).
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<DocId> {
        let mut out = Vec::new();
        for (_, docs) in self.entries.range(lo.clone()..=hi.clone()) {
            out.extend_from_slice(docs);
        }
        out
    }
}

/// Default geohash precision of the 2-D index: ~5 characters ≈ 5 km cells,
/// a good match for EarthQube's typical query extents.
pub const DEFAULT_GEOHASH_PRECISION: usize = 5;

/// A geohash-based 2-D index over a point attribute, mirroring MongoDB's
/// built-in geohashing index used by EarthQube (§3.2).
///
/// Points are encoded to geohash strings stored in an ordered map; a
/// rectangle query becomes a handful of prefix scans over covering cells,
/// followed by exact point-in-shape verification by the caller.
#[derive(Debug, Clone)]
pub struct GeoIndex {
    precision: usize,
    entries: BTreeMap<String, Vec<(DocId, f64, f64)>>,
    len: usize,
}

impl Default for GeoIndex {
    fn default() -> Self {
        Self::new(DEFAULT_GEOHASH_PRECISION)
    }
}

impl GeoIndex {
    /// Creates an empty index with the given geohash precision (1..=12).
    ///
    /// # Panics
    /// Panics if the precision is out of range.
    pub fn new(precision: usize) -> Self {
        assert!(
            (1..=geohash::MAX_PRECISION).contains(&precision),
            "geohash precision {precision} out of range"
        );
        Self { precision, entries: BTreeMap::new(), len: 0 }
    }

    /// The geohash precision in use.
    pub fn precision(&self) -> usize {
        self.precision
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indexes a point.
    pub fn insert(&mut self, doc: DocId, point: Point) {
        let hash = geohash::encode(point, self.precision).expect("valid precision");
        self.entries.entry(hash).or_default().push((doc, point.lon, point.lat));
        self.len += 1;
    }

    /// Removes a point (if present).
    pub fn remove(&mut self, doc: DocId, point: Point) {
        let hash = geohash::encode(point, self.precision).expect("valid precision");
        if let Some(list) = self.entries.get_mut(&hash) {
            if let Some(pos) = list.iter().position(|(d, _, _)| *d == doc) {
                list.swap_remove(pos);
                self.len -= 1;
            }
            if list.is_empty() {
                self.entries.remove(&hash);
            }
        }
    }

    /// Candidate documents whose point may lie inside `bbox`
    /// (a superset: exact verification is the caller's job).
    ///
    /// Also returns the number of geohash cells scanned, which the query
    /// planner surfaces in its execution report.
    pub fn candidates_in_bbox(&self, bbox: &BBox) -> (Vec<DocId>, usize) {
        let cover = geohash::cover_bbox(bbox, self.precision, 512).expect("valid precision");
        let mut out = Vec::new();
        let mut cells_scanned = 0usize;
        for prefix in &cover {
            // All stored hashes with this prefix form a contiguous range in
            // the ordered map.
            let end = prefix_upper_bound(prefix);
            for (_, points) in self.entries.range(prefix.clone()..end) {
                cells_scanned += 1;
                for (doc, lon, lat) in points {
                    if bbox.contains(Point::new_unchecked(*lon, *lat)) {
                        out.push(*doc);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        (out, cells_scanned.max(cover.len()))
    }

    /// Candidate documents for an arbitrary query shape (uses the shape's
    /// bounding box for the index scan; exact shape verification is the
    /// caller's job).
    pub fn candidates_in_shape(&self, shape: &GeoShape) -> (Vec<DocId>, usize) {
        self.candidates_in_bbox(&shape.bounding_box())
    }
}

/// The smallest string strictly greater than every string with the given
/// prefix (used to turn a prefix into a `BTreeMap` range bound).
fn prefix_upper_bound(prefix: &str) -> String {
    let mut bytes = prefix.as_bytes().to_vec();
    // Geohash alphabet is ASCII; bumping the last byte is always valid here.
    if let Some(last) = bytes.last_mut() {
        *last += 1;
    }
    String::from_utf8(bytes).expect("ascii prefix")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_index_lookup_and_range() {
        let mut idx = AttributeIndex::new();
        idx.insert(Value::Str("Portugal".into()), 1);
        idx.insert(Value::Str("Portugal".into()), 2);
        idx.insert(Value::Str("Austria".into()), 3);
        idx.insert(Value::Date(100), 4);
        idx.insert(Value::Date(200), 5);
        idx.insert(Value::Date(300), 6);

        assert_eq!(idx.len(), 6);
        assert_eq!(idx.distinct_keys(), 5);
        assert_eq!(idx.lookup(&Value::Str("Portugal".into())), vec![1, 2]);
        assert_eq!(idx.lookup(&Value::Str("Serbia".into())), Vec::<DocId>::new());
        let mut r = idx.range(&Value::Date(100), &Value::Date(250));
        r.sort_unstable();
        assert_eq!(r, vec![4, 5]);
    }

    #[test]
    fn attribute_index_remove() {
        let mut idx = AttributeIndex::new();
        idx.insert(Value::Int(1), 10);
        idx.insert(Value::Int(1), 11);
        idx.remove(&Value::Int(1), 10);
        assert_eq!(idx.lookup(&Value::Int(1)), vec![11]);
        idx.remove(&Value::Int(1), 11);
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keys(), 0);
        // Removing a non-existent posting is a no-op.
        idx.remove(&Value::Int(1), 99);
        assert!(idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn geo_index_rejects_bad_precision() {
        let _ = GeoIndex::new(0);
    }

    #[test]
    fn geo_index_finds_points_in_bbox() {
        let mut idx = GeoIndex::new(5);
        // Points around Lisbon and Berlin.
        idx.insert(1, Point::new(-9.14, 38.72).unwrap());
        idx.insert(2, Point::new(-9.20, 38.70).unwrap());
        idx.insert(3, Point::new(13.40, 52.52).unwrap());
        assert_eq!(idx.len(), 3);

        let lisbon = BBox::new(-9.5, 38.5, -8.9, 38.9).unwrap();
        let (hits, cells) = idx.candidates_in_bbox(&lisbon);
        assert_eq!(hits, vec![1, 2]);
        assert!(cells >= 1);

        let berlin = BBox::new(13.0, 52.0, 14.0, 53.0).unwrap();
        let (hits, _) = idx.candidates_in_bbox(&berlin);
        assert_eq!(hits, vec![3]);

        let atlantic = BBox::new(-40.0, 30.0, -30.0, 40.0).unwrap();
        let (hits, _) = idx.candidates_in_bbox(&atlantic);
        assert!(hits.is_empty());
    }

    #[test]
    fn geo_index_remove_and_shape_query() {
        let mut idx = GeoIndex::default();
        assert_eq!(idx.precision(), DEFAULT_GEOHASH_PRECISION);
        let p = Point::new(10.0, 50.0).unwrap();
        idx.insert(7, p);
        idx.remove(7, p);
        assert!(idx.is_empty());
        idx.insert(8, p);
        let shape = GeoShape::Circle(eq_geo::Circle::new(p, 10.0).unwrap());
        let (hits, _) = idx.candidates_in_shape(&shape);
        assert_eq!(hits, vec![8]);
    }

    #[test]
    fn geo_index_candidates_do_not_miss_boundary_points() {
        // Points near a cell boundary must still be found via covering cells.
        let mut idx = GeoIndex::new(5);
        let mut expected = Vec::new();
        for i in 0..50u64 {
            let lon = 12.0 + (i as f64) * 0.01;
            let lat = 51.0 + (i as f64) * 0.005;
            idx.insert(i, Point::new(lon, lat).unwrap());
            expected.push(i);
        }
        let bbox = BBox::new(11.9, 50.9, 12.6, 51.3).unwrap();
        let (hits, _) = idx.candidates_in_bbox(&bbox);
        assert_eq!(hits, expected);
    }

    #[test]
    fn prefix_upper_bound_is_exclusive_end() {
        assert_eq!(prefix_upper_bound("u33"), "u34".to_string());
        assert!("u33zzz" < prefix_upper_bound("u33").as_str());
        assert!("u34" >= prefix_upper_bound("u33").as_str());
    }
}
