//! Secondary indexes: ordered attribute indexes and the geohash 2-D index.
//!
//! Since the bitmap-prefilter work (experiment E13) every index posting is
//! mirrored into a compressed [`Bitmap`]: per distinct attribute value, per
//! distinct *element* of array/string values (the label codes), per geohash
//! cell, and one `present` bitmap per attribute index.  The prefilter
//! compiler ([`crate::prefilter`]) combines these with AND/OR/AND-NOT to
//! turn a filter's indexable prefix into one candidate set without touching
//! any document.

use std::collections::BTreeMap;
use std::ops::Bound;

use eq_geo::{geohash, BBox, GeoShape, Point};
use eq_hashindex::Bitmap;

use crate::value::Value;
use crate::DocId;

/// One attribute value's postings: the document list (ordered scans, the
/// classic planner) and its bitmap mirror (the prefilter compiler).
#[derive(Debug, Clone, Default)]
struct PostingList {
    docs: Vec<DocId>,
    bitmap: Bitmap,
}

/// An ordered secondary index over one (dotted-path) attribute.
///
/// Implemented as a B-tree from attribute value to posting list, which
/// supports exact lookups and ordered range scans — the two access paths the
/// classic query planner uses.  Three bitmap families ride along for the
/// prefilter compiler:
///
/// * a per-value bitmap inside every posting list,
/// * a per-element bitmap over the distinct elements of `Array` values and
///   the characters of `Str` values (as one-character strings — the ASCII
///   label encoding), powering the `Contains*` operators,
/// * a `present` bitmap of every document carrying the field, powering
///   `Exists` and (with the collection's live-ids universe) `Ne`/`Not`.
#[derive(Debug, Clone, Default)]
pub struct AttributeIndex {
    entries: BTreeMap<Value, PostingList>,
    elements: BTreeMap<Value, Bitmap>,
    /// Exact-`==` postings for numeric scalar values, keyed by [`NumKey`]
    /// so `Int(2)` and `Float(2.0)` — which share one `entries` key under
    /// the total order — resolve to distinct bitmaps.
    numeric: BTreeMap<NumKey, Bitmap>,
    /// Exact-`==` postings for numeric *elements* of `Array` values.
    numeric_elements: BTreeMap<NumKey, Bitmap>,
    present: Bitmap,
    len: usize,
}

/// Canonical exact-numeric posting key.  The index B-tree orders values by
/// [`Value::cmp`], under which `Int(2)` and `Float(2.0)` collide on one
/// key and `-0.0`/`+0.0` split into two — both the opposite of what the
/// filter evaluator's `==` sees.  `NumKey` keys numeric postings the way
/// `PartialEq` compares them: integers and floats apart, `-0.0`
/// canonicalised onto `+0.0`, and `NaN` excluded entirely (it equals
/// nothing, itself included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NumKey {
    Int(i64),
    /// IEEE-754 bits of a non-NaN float, `-0.0` stored as `+0.0`.
    Float(u64),
}

/// The canonical posting key of a numeric scalar; `None` for `NaN` (never
/// posted) and for every non-numeric value.
fn num_key(v: &Value) -> Option<NumKey> {
    match v {
        Value::Int(i) => Some(NumKey::Int(*i)),
        Value::Float(f) if !f.is_nan() => {
            let canonical = if *f == 0.0 { 0.0f64 } else { *f };
            Some(NumKey::Float(canonical.to_bits()))
        }
        _ => None,
    }
}

impl AttributeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed (value, document) postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Adds a posting.
    pub fn insert(&mut self, key: Value, doc: DocId) {
        for_each_element(&key, |element| {
            if let Some(nk) = num_key(&element) {
                self.numeric_elements.entry(nk).or_default().insert(doc);
            }
            self.elements.entry(element).or_default().insert(doc);
        });
        if let Some(nk) = num_key(&key) {
            self.numeric.entry(nk).or_default().insert(doc);
        }
        self.present.insert(doc);
        let posting = self.entries.entry(key).or_default();
        posting.docs.push(doc);
        posting.bitmap.insert(doc);
        self.len += 1;
    }

    /// Removes a posting (if present).
    pub fn remove(&mut self, key: &Value, doc: DocId) {
        if let Some(list) = self.entries.get_mut(key) {
            if let Some(pos) = list.docs.iter().position(|d| *d == doc) {
                list.docs.swap_remove(pos);
                list.bitmap.remove(doc);
                self.len -= 1;
                self.present.remove(doc);
                if let Some(nk) = num_key(key) {
                    if let Some(bm) = self.numeric.get_mut(&nk) {
                        bm.remove(doc);
                        if bm.is_empty() {
                            self.numeric.remove(&nk);
                        }
                    }
                }
                for_each_element(key, |element| {
                    if let Some(nk) = num_key(&element) {
                        if let Some(bm) = self.numeric_elements.get_mut(&nk) {
                            bm.remove(doc);
                            if bm.is_empty() {
                                self.numeric_elements.remove(&nk);
                            }
                        }
                    }
                    if let Some(bm) = self.elements.get_mut(&element) {
                        bm.remove(doc);
                        if bm.is_empty() {
                            self.elements.remove(&element);
                        }
                    }
                });
            }
            if self.entries.get(key).is_some_and(|l| l.docs.is_empty()) {
                self.entries.remove(key);
            }
        }
    }

    /// Documents whose attribute equals `key`.
    pub fn lookup(&self, key: &Value) -> Vec<DocId> {
        self.entries.get(key).map(|l| l.docs.clone()).unwrap_or_default()
    }

    /// Documents whose attribute lies in `[lo, hi]` (inclusive).
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<DocId> {
        let mut out = Vec::new();
        for (_, list) in self.entries.range(lo.clone()..=hi.clone()) {
            out.extend_from_slice(&list.docs);
        }
        out
    }

    /// The bitmap of documents whose attribute equals `key` — equality
    /// under the index's total [`Ord`], which the prefilter compiler only
    /// trusts for values where that coincides with `==`.
    pub fn value_bitmap(&self, key: &Value) -> Option<&Bitmap> {
        self.entries.get(key).map(|l| &l.bitmap)
    }

    /// The union bitmap of every posting whose key lies in the given
    /// bounds (the `Lt`/`Lte`/`Gt`/`Gte` compilation: both the evaluator's
    /// comparisons and the B-tree order are [`Value::cmp`], so the result
    /// is exact, and documents missing the field are absent on both
    /// sides).
    pub fn range_bitmap(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Bitmap {
        let mut out = Bitmap::new();
        for (_, list) in self.entries.range((lo, hi)) {
            out = out.or(&list.bitmap);
        }
        out
    }

    /// The union bitmap of every `Str`-keyed posting starting with
    /// `prefix` (the `StartsWith` compilation — non-string values never
    /// match, and string keys are contiguous in the value order).
    pub fn prefix_bitmap(&self, prefix: &str) -> Bitmap {
        let mut out = Bitmap::new();
        let start = Value::Str(prefix.to_string());
        for (key, list) in self.entries.range(start..) {
            match key {
                Value::Str(s) if s.starts_with(prefix) => out = out.or(&list.bitmap),
                _ => break,
            }
        }
        out
    }

    /// The bitmap of documents whose attribute *contains* `element`: an
    /// `Array` value with an equal element, or a `Str` value containing it
    /// as a character (`element` must then be a one-character string).
    pub fn element_bitmap(&self, element: &Value) -> Option<&Bitmap> {
        self.elements.get(element)
    }

    /// The bitmap of every document carrying the indexed field (the
    /// `Exists` compilation; also the base of `Contains*` supersets).
    pub fn present_bitmap(&self) -> &Bitmap {
        &self.present
    }

    /// The **exact** `==` equality bitmap for a numeric scalar query
    /// value, resolved through the canonical numeric postings: `Int` and
    /// `Float` postings are keyed apart, `±0.0` share one key, and a
    /// `NaN` query resolves to the empty set (it `==` nothing).  Returns
    /// `None` when `key` is not a numeric scalar — the caller then
    /// decides via the ordered posting map instead.
    pub fn numeric_eq_bitmap(&self, key: &Value) -> Option<Bitmap> {
        match key {
            Value::Float(f) if f.is_nan() => Some(Bitmap::new()),
            _ => {
                let nk = num_key(key)?;
                Some(self.numeric.get(&nk).cloned().unwrap_or_default())
            }
        }
    }

    /// The exact `==` *element*-containment bitmap for a numeric scalar:
    /// documents whose `Array` value holds an element `==` to `key`.
    /// Same key canonicalisation and `None` contract as
    /// [`numeric_eq_bitmap`](Self::numeric_eq_bitmap).
    pub fn numeric_element_bitmap(&self, key: &Value) -> Option<Bitmap> {
        match key {
            Value::Float(f) if f.is_nan() => Some(Bitmap::new()),
            _ => {
                let nk = num_key(key)?;
                Some(self.numeric_elements.get(&nk).cloned().unwrap_or_default())
            }
        }
    }
}

/// Calls `visit` once per distinct *element* of an indexed value: the
/// elements of an `Array`, or the characters of a `Str` as one-character
/// strings (the ASCII label encoding).  Scalar values have no elements.
/// Duplicate elements may be visited twice; bitmap insert/remove are
/// idempotent, and a document holds at most one value per indexed field,
/// so multiplicity never matters here.
fn for_each_element(key: &Value, mut visit: impl FnMut(Value)) {
    match key {
        Value::Array(elements) => {
            for e in elements {
                visit(e.clone());
            }
        }
        Value::Str(s) => {
            for c in s.chars() {
                visit(Value::Str(c.to_string()));
            }
        }
        _ => {}
    }
}

/// Default geohash precision of the 2-D index: ~5 characters ≈ 5 km cells,
/// a good match for EarthQube's typical query extents.
pub const DEFAULT_GEOHASH_PRECISION: usize = 5;

/// A geohash-based 2-D index over a point attribute, mirroring MongoDB's
/// built-in geohashing index used by EarthQube (§3.2).
///
/// Points are encoded to geohash strings stored in an ordered map; a
/// rectangle query becomes a handful of prefix scans over covering cells,
/// followed by exact point-in-shape verification by the caller.
#[derive(Debug, Clone)]
pub struct GeoIndex {
    precision: usize,
    entries: BTreeMap<String, Vec<(DocId, f64, f64)>>,
    /// Per-cell document bitmaps, keyed like `entries`.  A cell's bitmap
    /// holds every document hashed into it *without* point verification,
    /// so unions over covering cells are supersets by construction.
    cells: BTreeMap<String, Bitmap>,
    len: usize,
}

impl Default for GeoIndex {
    fn default() -> Self {
        Self::new(DEFAULT_GEOHASH_PRECISION)
    }
}

impl GeoIndex {
    /// Creates an empty index with the given geohash precision (1..=12).
    ///
    /// # Panics
    /// Panics if the precision is out of range.
    pub fn new(precision: usize) -> Self {
        assert!(
            (1..=geohash::MAX_PRECISION).contains(&precision),
            "geohash precision {precision} out of range"
        );
        Self { precision, entries: BTreeMap::new(), cells: BTreeMap::new(), len: 0 }
    }

    /// The geohash precision in use.
    pub fn precision(&self) -> usize {
        self.precision
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indexes a point.
    pub fn insert(&mut self, doc: DocId, point: Point) {
        let hash = geohash::encode(point, self.precision).expect("valid precision");
        self.cells.entry(hash.clone()).or_default().insert(doc);
        self.entries.entry(hash).or_default().push((doc, point.lon, point.lat));
        self.len += 1;
    }

    /// Removes a point (if present).
    pub fn remove(&mut self, doc: DocId, point: Point) {
        let hash = geohash::encode(point, self.precision).expect("valid precision");
        if let Some(list) = self.entries.get_mut(&hash) {
            if let Some(pos) = list.iter().position(|(d, _, _)| *d == doc) {
                list.swap_remove(pos);
                self.len -= 1;
                if let Some(bm) = self.cells.get_mut(&hash) {
                    bm.remove(doc);
                    if bm.is_empty() {
                        self.cells.remove(&hash);
                    }
                }
            }
            if self.entries.get(&hash).is_some_and(|l| l.is_empty()) {
                self.entries.remove(&hash);
            }
        }
    }

    /// Candidate documents whose point may lie inside `bbox`
    /// (a superset: exact verification is the caller's job).
    ///
    /// Also returns the number of geohash cells scanned, which the query
    /// planner surfaces in its execution report.
    pub fn candidates_in_bbox(&self, bbox: &BBox) -> (Vec<DocId>, usize) {
        let cover = geohash::cover_bbox(bbox, self.precision, 512).expect("valid precision");
        let mut out = Vec::new();
        let mut cells_scanned = 0usize;
        for prefix in &cover {
            // All stored hashes with this prefix form a contiguous range in
            // the ordered map.
            let end = prefix_upper_bound(prefix);
            for (_, points) in self.entries.range(prefix.clone()..end) {
                cells_scanned += 1;
                for (doc, lon, lat) in points {
                    if bbox.contains(Point::new_unchecked(*lon, *lat)) {
                        out.push(*doc);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        (out, cells_scanned.max(cover.len()))
    }

    /// Candidate documents for an arbitrary query shape (uses the shape's
    /// bounding region for the index scan; exact shape verification is the
    /// caller's job).  A shape crossing the antimeridian covers with two
    /// boxes; each piece is scanned and the results merged.
    pub fn candidates_in_shape(&self, shape: &GeoShape) -> (Vec<DocId>, usize) {
        let cover = shape.bounding_box();
        let mut out = Vec::new();
        let mut cells = 0usize;
        for piece in cover.boxes() {
            let (mut ids, scanned) = self.candidates_in_bbox(piece);
            out.append(&mut ids);
            cells += scanned;
        }
        out.sort_unstable();
        out.dedup();
        (out, cells)
    }

    /// The union bitmap of every cell covering the query shape's bounding
    /// region — a **superset** of the documents inside the shape (cell
    /// membership is never point-verified here, unlike
    /// [`candidates_in_shape`](Self::candidates_in_shape)), so a
    /// `GeoWithin` compiled through this bitmap always keeps the exact
    /// predicate in the residual filter.  A shape crossing the
    /// antimeridian covers with two boxes; both are unioned.
    ///
    /// Also returns the number of geohash cells inspected.
    pub fn bitmap_in_shape(&self, shape: &GeoShape) -> (Bitmap, usize) {
        let cover = shape.bounding_box();
        let mut out = Bitmap::new();
        let mut cells_scanned = 0usize;
        for piece in cover.boxes() {
            let piece_cover =
                geohash::cover_bbox(piece, self.precision, 512).expect("valid precision");
            cells_scanned += piece_cover.len();
            for prefix in &piece_cover {
                let end = prefix_upper_bound(prefix);
                for (_, bm) in self.cells.range(prefix.clone()..end) {
                    out = out.or(bm);
                }
            }
        }
        (out, cells_scanned)
    }
}

/// The smallest string strictly greater than every string with the given
/// prefix (used to turn a prefix into a `BTreeMap` range bound).
fn prefix_upper_bound(prefix: &str) -> String {
    let mut bytes = prefix.as_bytes().to_vec();
    // Geohash alphabet is ASCII; bumping the last byte is always valid here.
    if let Some(last) = bytes.last_mut() {
        *last += 1;
    }
    String::from_utf8(bytes).expect("ascii prefix")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_index_lookup_and_range() {
        let mut idx = AttributeIndex::new();
        idx.insert(Value::Str("Portugal".into()), 1);
        idx.insert(Value::Str("Portugal".into()), 2);
        idx.insert(Value::Str("Austria".into()), 3);
        idx.insert(Value::Date(100), 4);
        idx.insert(Value::Date(200), 5);
        idx.insert(Value::Date(300), 6);

        assert_eq!(idx.len(), 6);
        assert_eq!(idx.distinct_keys(), 5);
        assert_eq!(idx.lookup(&Value::Str("Portugal".into())), vec![1, 2]);
        assert_eq!(idx.lookup(&Value::Str("Serbia".into())), Vec::<DocId>::new());
        let mut r = idx.range(&Value::Date(100), &Value::Date(250));
        r.sort_unstable();
        assert_eq!(r, vec![4, 5]);
    }

    #[test]
    fn attribute_index_remove() {
        let mut idx = AttributeIndex::new();
        idx.insert(Value::Int(1), 10);
        idx.insert(Value::Int(1), 11);
        idx.remove(&Value::Int(1), 10);
        assert_eq!(idx.lookup(&Value::Int(1)), vec![11]);
        idx.remove(&Value::Int(1), 11);
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keys(), 0);
        // Removing a non-existent posting is a no-op.
        idx.remove(&Value::Int(1), 99);
        assert!(idx.is_empty());
    }

    #[test]
    fn numeric_postings_key_ints_and_floats_apart() {
        let mut idx = AttributeIndex::new();
        idx.insert(Value::Int(2), 1);
        idx.insert(Value::Float(2.0), 2);
        idx.insert(Value::Float(-0.0), 3);
        idx.insert(Value::Float(0.0), 4);
        idx.insert(Value::Float(f64::NAN), 5);
        idx.insert(Value::Array(vec![Value::Int(7), Value::Float(7.0)]), 6);

        // Int(2) and Float(2.0) share an `entries` key under the total
        // order, but the numeric postings keep them apart.
        let int2 = idx.numeric_eq_bitmap(&Value::Int(2)).unwrap();
        assert_eq!(int2.iter().collect::<Vec<_>>(), vec![1]);
        let float2 = idx.numeric_eq_bitmap(&Value::Float(2.0)).unwrap();
        assert_eq!(float2.iter().collect::<Vec<_>>(), vec![2]);

        // ±0.0 canonicalise onto one key (PartialEq agrees: -0.0 == 0.0).
        let zero = idx.numeric_eq_bitmap(&Value::Float(-0.0)).unwrap();
        assert_eq!(zero.iter().collect::<Vec<_>>(), vec![3, 4]);

        // NaN == nothing, itself included: the exact bitmap is empty.
        assert!(idx.numeric_eq_bitmap(&Value::Float(f64::NAN)).unwrap().is_empty());

        // Array elements mirror into the numeric element postings.
        let el7 = idx.numeric_element_bitmap(&Value::Int(7)).unwrap();
        assert_eq!(el7.iter().collect::<Vec<_>>(), vec![6]);
        let el7f = idx.numeric_element_bitmap(&Value::Float(7.0)).unwrap();
        assert_eq!(el7f.iter().collect::<Vec<_>>(), vec![6]);

        // Non-numeric queries decline (`None`): the caller falls back to
        // the ordered posting map.
        assert!(idx.numeric_eq_bitmap(&Value::Str("2".into())).is_none());

        // Removal prunes the numeric maps symmetrically.
        idx.remove(&Value::Int(2), 1);
        assert!(idx.numeric_eq_bitmap(&Value::Int(2)).unwrap().is_empty());
        assert_eq!(
            idx.numeric_eq_bitmap(&Value::Float(2.0)).unwrap().iter().collect::<Vec<_>>(),
            vec![2]
        );
        idx.remove(&Value::Array(vec![Value::Int(7), Value::Float(7.0)]), 6);
        assert!(idx.numeric_element_bitmap(&Value::Int(7)).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn geo_index_rejects_bad_precision() {
        let _ = GeoIndex::new(0);
    }

    #[test]
    fn geo_index_finds_points_in_bbox() {
        let mut idx = GeoIndex::new(5);
        // Points around Lisbon and Berlin.
        idx.insert(1, Point::new(-9.14, 38.72).unwrap());
        idx.insert(2, Point::new(-9.20, 38.70).unwrap());
        idx.insert(3, Point::new(13.40, 52.52).unwrap());
        assert_eq!(idx.len(), 3);

        let lisbon = BBox::new(-9.5, 38.5, -8.9, 38.9).unwrap();
        let (hits, cells) = idx.candidates_in_bbox(&lisbon);
        assert_eq!(hits, vec![1, 2]);
        assert!(cells >= 1);

        let berlin = BBox::new(13.0, 52.0, 14.0, 53.0).unwrap();
        let (hits, _) = idx.candidates_in_bbox(&berlin);
        assert_eq!(hits, vec![3]);

        let atlantic = BBox::new(-40.0, 30.0, -30.0, 40.0).unwrap();
        let (hits, _) = idx.candidates_in_bbox(&atlantic);
        assert!(hits.is_empty());
    }

    #[test]
    fn geo_index_remove_and_shape_query() {
        let mut idx = GeoIndex::default();
        assert_eq!(idx.precision(), DEFAULT_GEOHASH_PRECISION);
        let p = Point::new(10.0, 50.0).unwrap();
        idx.insert(7, p);
        idx.remove(7, p);
        assert!(idx.is_empty());
        idx.insert(8, p);
        let shape = GeoShape::Circle(eq_geo::Circle::new(p, 10.0).unwrap());
        let (hits, _) = idx.candidates_in_shape(&shape);
        assert_eq!(hits, vec![8]);
    }

    #[test]
    fn geo_index_candidates_do_not_miss_boundary_points() {
        // Points near a cell boundary must still be found via covering cells.
        let mut idx = GeoIndex::new(5);
        let mut expected = Vec::new();
        for i in 0..50u64 {
            let lon = 12.0 + (i as f64) * 0.01;
            let lat = 51.0 + (i as f64) * 0.005;
            idx.insert(i, Point::new(lon, lat).unwrap());
            expected.push(i);
        }
        let bbox = BBox::new(11.9, 50.9, 12.6, 51.3).unwrap();
        let (hits, _) = idx.candidates_in_bbox(&bbox);
        assert_eq!(hits, expected);
    }

    #[test]
    fn prefix_upper_bound_is_exclusive_end() {
        assert_eq!(prefix_upper_bound("u33"), "u34".to_string());
        assert!("u33zzz" < prefix_upper_bound("u33").as_str());
        assert!("u34" >= prefix_upper_bound("u33").as_str());
    }
}
