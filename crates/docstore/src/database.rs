//! A database: a named set of collections.

use std::collections::BTreeMap;

use crate::collection::{Collection, CollectionDelta};
use crate::StoreError;

/// A named set of [`Collection`]s — the embedded equivalent of the MongoDB
/// database EarthQube connects to.
#[derive(Debug, Clone, Default)]
pub struct Database {
    collections: BTreeMap<String, Collection>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or returns the existing) collection with the given name and
    /// primary key.
    pub fn create_collection(&mut self, name: &str, primary_key: &str) -> &mut Collection {
        self.collections
            .entry(name.to_string())
            .or_insert_with(|| Collection::new(name, primary_key))
    }

    /// The collection with the given name.
    pub fn collection(&self, name: &str) -> Result<&Collection, StoreError> {
        self.collections.get(name).ok_or_else(|| StoreError::NoSuchCollection(name.to_string()))
    }

    /// Mutable access to a collection.
    pub fn collection_mut(&mut self, name: &str) -> Result<&mut Collection, StoreError> {
        self.collections.get_mut(name).ok_or_else(|| StoreError::NoSuchCollection(name.to_string()))
    }

    /// Drops a collection, returning whether it existed.
    pub fn drop_collection(&mut self, name: &str) -> bool {
        self.collections.remove(name).is_some()
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(|s| s.as_str()).collect()
    }

    /// Number of collections.
    pub fn len(&self) -> usize {
        self.collections.len()
    }

    /// Whether the database has no collections.
    pub fn is_empty(&self) -> bool {
        self.collections.is_empty()
    }

    /// Iterates over the collections in name order.
    pub fn collections(&self) -> impl Iterator<Item = &Collection> {
        self.collections.values()
    }

    /// Rebuilds a database from decoded collections (snapshot restoration).
    pub(crate) fn from_collections(collections: Vec<Collection>) -> Self {
        Self { collections: collections.into_iter().map(|c| (c.name().to_string(), c)).collect() }
    }

    /// Installs a fully decoded collection, replacing any existing one
    /// with the same name — how a full collection chunk is applied during
    /// incremental-checkpoint recovery.
    pub fn insert_collection(&mut self, collection: Collection) {
        self.collections.insert(collection.name().to_string(), collection);
    }

    /// Applies a decoded collection delta on top of the already-restored
    /// base collection.
    ///
    /// # Errors
    /// Returns [`StoreError::NoSuchCollection`] when the base chunk for
    /// the named collection has not been applied yet, and propagates any
    /// inconsistency from [`Collection::apply_delta`].
    pub fn apply_delta(&mut self, delta: CollectionDelta) -> Result<(), StoreError> {
        self.collection_mut(&delta.name)?.apply_delta(delta)
    }

    /// Names of the collections with pending dirty state, in name order.
    pub fn dirty_collection_names(&self) -> Vec<&str> {
        self.collections.values().filter(|c| c.is_dirty()).map(Collection::name).collect()
    }

    /// Whether any collection has pending dirty state.
    pub fn is_dirty(&self) -> bool {
        self.collections.values().any(Collection::is_dirty)
    }

    /// Drains every collection's dirty log — after recovery has finished
    /// rebuilding state that is, by construction, already persisted.
    pub fn clear_dirty(&mut self) {
        for collection in self.collections.values_mut() {
            collection.take_dirty();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Document;

    #[test]
    fn create_access_and_drop_collections() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.create_collection("metadata", "name");
        db.create_collection("feedback", "id");
        assert_eq!(db.len(), 2);
        assert_eq!(db.collection_names(), vec!["feedback", "metadata"]);
        assert!(db.collection("metadata").is_ok());
        assert!(db.collection("nope").is_err());
        assert!(db.collection_mut("nope").is_err());
        assert!(db.drop_collection("feedback"));
        assert!(!db.drop_collection("feedback"));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn create_collection_is_idempotent_and_usable() {
        let mut db = Database::new();
        db.create_collection("metadata", "name")
            .insert(Document::new().with("name", "p1"))
            .unwrap();
        // Second create returns the same collection with its contents.
        let c = db.create_collection("metadata", "name");
        assert_eq!(c.len(), 1);
        assert_eq!(db.collection("metadata").unwrap().len(), 1);
    }
}
