//! Collections: document storage, indexes and the query planner.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use eq_geo::Point;
use eq_hashindex::Bitmap;

use crate::filter::Filter;
use crate::index::{AttributeIndex, GeoIndex, DEFAULT_GEOHASH_PRECISION};
use crate::value::{Document, Value};
use crate::{DocId, StoreError};

/// How a query was executed; returned alongside every result so that the
/// experiments (E4/E5) can verify which access path was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// The index that drove the scan (`"pk"`, an attribute field name, or
    /// the geo field), or `None` for a full collection scan.
    pub index_used: Option<String>,
    /// Number of candidate documents examined.
    pub scanned: usize,
    /// Number of documents that matched the filter.
    pub matched: usize,
}

/// The result of a query: matching document ids (in insertion order) plus
/// the execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Ids of the matching documents.
    pub ids: Vec<DocId>,
    /// How the query was executed.
    pub plan: QueryPlan,
}

/// Summary statistics of a collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionStats {
    /// Number of stored documents.
    pub count: usize,
    /// Approximate total size in bytes.
    pub approximate_bytes: usize,
    /// Names of the secondary attribute indexes.
    pub attribute_indexes: Vec<String>,
    /// Whether a geospatial index exists and on which field.
    pub geo_index: Option<String>,
}

/// What changed in a collection since its dirty log was last drained.
///
/// Maintained automatically by every mutating operation.  The persistence
/// tier drains it at a checkpoint cut ([`Collection::take_dirty`]) and
/// turns the drained log into a [`CollectionDelta`]
/// ([`Collection::capture_delta`]); if persisting fails, the drained log
/// is merged back with [`Collection::restore_dirty`] so no change is ever
/// dropped.
#[derive(Debug, Clone, Default)]
pub struct DirtyLog {
    touched: BTreeSet<DocId>,
    deleted: BTreeSet<Value>,
    schema_changed: bool,
}

impl DirtyLog {
    /// Whether nothing changed since the last drain.
    pub fn is_empty(&self) -> bool {
        !self.schema_changed && self.touched.is_empty() && self.deleted.is_empty()
    }

    /// Whether an index was created or re-created since the last drain.
    /// Deltas cannot express schema changes, so a schema-dirty collection
    /// needs a full rewrite instead of a delta chunk.
    pub fn schema_changed(&self) -> bool {
        self.schema_changed
    }

    /// Merges another drained log into this one (set union, flags OR-ed) —
    /// the restore path of a failed checkpoint.
    pub fn merge(&mut self, other: DirtyLog) {
        self.touched.extend(other.touched);
        self.deleted.extend(other.deleted);
        self.schema_changed |= other.schema_changed;
    }
}

/// The documents that changed in one collection since a base snapshot —
/// the payload of an incremental-checkpoint delta chunk.
///
/// Deltas are applied deletes-first: a delete of a key the base never held
/// is tolerated (the document was created and deleted entirely within the
/// delta window), while upsert ids must be fresh and ascending so that
/// replay reproduces the live collection's insertion order exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionDelta {
    /// Name of the collection the delta applies to.
    pub name: String,
    /// The collection's id watermark at capture time.
    pub next_id: DocId,
    /// Primary-key values deleted since the base, in key order.
    pub deletes: Vec<Value>,
    /// Documents inserted since the base, in ascending id order.
    pub upserts: Vec<(DocId, Document)>,
}

/// A collection of documents with a mandatory primary key, optional
/// secondary attribute indexes and an optional geohash 2-D index.
#[derive(Debug, Clone)]
pub struct Collection {
    name: String,
    primary_key: String,
    docs: HashMap<DocId, Document>,
    insertion_order: Vec<DocId>,
    next_id: DocId,
    pk_index: BTreeMap<Value, DocId>,
    attr_indexes: BTreeMap<String, AttributeIndex>,
    geo_field: Option<String>,
    geo_index: Option<GeoIndex>,
    /// Bitmap of every live document id — the universe the prefilter
    /// compiler negates against (`Ne`, `Not`), maintained by every insert
    /// and delete.
    live: Bitmap,
    dirty: DirtyLog,
}

impl Collection {
    /// Creates an empty collection whose documents must carry the given
    /// primary-key field (EarthQube uses the image patch name, §3.2).
    pub fn new(name: &str, primary_key: &str) -> Self {
        Self {
            name: name.to_string(),
            primary_key: primary_key.to_string(),
            docs: HashMap::new(),
            insertion_order: Vec::new(),
            next_id: 0,
            pk_index: BTreeMap::new(),
            attr_indexes: BTreeMap::new(),
            geo_field: None,
            geo_index: None,
            live: Bitmap::new(),
            dirty: DirtyLog::default(),
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary-key field.
    pub fn primary_key(&self) -> &str {
        &self.primary_key
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Declares a secondary index on a (dotted-path) attribute; existing
    /// documents are indexed immediately.
    pub fn create_attribute_index(&mut self, field: &str) {
        let mut index = AttributeIndex::new();
        for (&id, doc) in &self.docs {
            if let Some(v) = doc.get(field) {
                index.insert(v.clone(), id);
            }
        }
        self.attr_indexes.insert(field.to_string(), index);
        self.dirty.schema_changed = true;
    }

    /// Declares a geohash 2-D index on a point attribute (a `[lon, lat]`
    /// array field); existing documents are indexed immediately.
    ///
    /// # Errors
    /// Returns [`StoreError::BadIndex`] if a geo index already exists on a
    /// different field.
    pub fn create_geo_index(&mut self, field: &str) -> Result<(), StoreError> {
        if let Some(existing) = &self.geo_field {
            if existing != field {
                return Err(StoreError::BadIndex(format!(
                    "geo index already exists on field {existing}"
                )));
            }
        }
        let mut index = GeoIndex::new(DEFAULT_GEOHASH_PRECISION);
        for (&id, doc) in &self.docs {
            if let Some(p) = point_of(doc, field) {
                index.insert(id, p);
            }
        }
        self.geo_field = Some(field.to_string());
        self.geo_index = Some(index);
        self.dirty.schema_changed = true;
        Ok(())
    }

    /// Whether an attribute index exists on the field.
    pub fn has_attribute_index(&self, field: &str) -> bool {
        self.attr_indexes.contains_key(field)
    }

    /// The attribute index on a field, if one was declared.
    pub fn attribute_index(&self, field: &str) -> Option<&AttributeIndex> {
        self.attr_indexes.get(field)
    }

    /// The geo index and the field it covers, if one was declared.
    pub fn geo_index(&self) -> Option<(&str, &GeoIndex)> {
        match (&self.geo_field, &self.geo_index) {
            (Some(field), Some(index)) => Some((field.as_str(), index)),
            _ => None,
        }
    }

    /// The bitmap of every live document id — the universe against which
    /// the prefilter compiler evaluates `Ne` and `Not` (there is no
    /// unbounded complement on [`Bitmap`]).
    pub fn live_bitmap(&self) -> &Bitmap {
        &self.live
    }

    /// Inserts a document.
    ///
    /// # Errors
    /// Fails if the primary-key field is missing or already present.
    pub fn insert(&mut self, doc: Document) -> Result<DocId, StoreError> {
        let id = self.next_id;
        self.insert_at(id, doc)?;
        self.next_id = id + 1;
        Ok(id)
    }

    /// Inserts a document under an explicit internal id (the shared core of
    /// [`insert`](Self::insert) and snapshot restoration, which must
    /// reproduce historical ids exactly — including gaps left by deletes).
    fn insert_at(&mut self, id: DocId, doc: Document) -> Result<(), StoreError> {
        let key = doc
            .get(&self.primary_key)
            .cloned()
            .ok_or_else(|| StoreError::MissingPrimaryKey(self.primary_key.clone()))?;
        if self.pk_index.contains_key(&key) {
            return Err(StoreError::DuplicateKey(format!("{key:?}")));
        }
        // Update secondary indexes.
        for (field, index) in self.attr_indexes.iter_mut() {
            if let Some(v) = doc.get(field) {
                index.insert(v.clone(), id);
            }
        }
        if let (Some(field), Some(index)) = (&self.geo_field, self.geo_index.as_mut()) {
            if let Some(p) = point_of(&doc, field) {
                index.insert(id, p);
            }
        }
        self.pk_index.insert(key, id);
        self.docs.insert(id, doc);
        self.insertion_order.push(id);
        self.live.insert(id);
        self.dirty.touched.insert(id);
        Ok(())
    }

    /// The id the next inserted document will receive (serialized into
    /// snapshots so restored collections keep allocating fresh ids).
    pub(crate) fn next_id(&self) -> DocId {
        self.next_id
    }

    /// Rebuilds a collection from its serialized parts: documents are
    /// re-inserted in their historical insertion order under their
    /// historical ids, and all declared indexes are rebuilt from scratch —
    /// so the restored collection answers every query (ids, plans, scan
    /// counts) exactly like the snapshotted one.
    pub(crate) fn from_parts(
        name: &str,
        primary_key: &str,
        next_id: DocId,
        docs: Vec<(DocId, Document)>,
        attr_fields: &[String],
        geo_field: Option<&str>,
    ) -> Result<Self, StoreError> {
        let mut collection = Collection::new(name, primary_key);
        for field in attr_fields {
            collection.create_attribute_index(field);
        }
        if let Some(field) = geo_field {
            collection.create_geo_index(field)?;
        }
        for (id, doc) in docs {
            if id >= next_id {
                return Err(StoreError::BadIndex(format!(
                    "document id {id} is not below the collection's next_id {next_id}"
                )));
            }
            if collection.docs.contains_key(&id) {
                return Err(StoreError::BadIndex(format!("duplicate document id {id}")));
            }
            collection.insert_at(id, doc)?;
        }
        collection.next_id = next_id;
        // A freshly restored collection is byte-for-byte what the snapshot
        // holds: nothing is pending persistence.
        collection.dirty = DirtyLog::default();
        Ok(collection)
    }

    /// Whether any change since the last dirty-log drain is pending.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Read access to the pending dirty log.
    pub fn dirty(&self) -> &DirtyLog {
        &self.dirty
    }

    /// Drains the dirty log, leaving it empty — the checkpoint cut.
    pub fn take_dirty(&mut self) -> DirtyLog {
        std::mem::take(&mut self.dirty)
    }

    /// Merges a previously drained log back into the pending one, so a
    /// failed checkpoint re-persists everything on its next attempt.
    pub fn restore_dirty(&mut self, log: DirtyLog) {
        self.dirty.merge(log);
    }

    /// Captures the delta a drained dirty log describes against the
    /// current contents: every still-present touched document becomes an
    /// upsert, every recorded key a delete.
    pub fn capture_delta(&self, dirty: &DirtyLog) -> CollectionDelta {
        CollectionDelta {
            name: self.name.clone(),
            next_id: self.next_id,
            deletes: dirty.deleted.iter().cloned().collect(),
            upserts: dirty
                .touched
                .iter()
                .filter_map(|id| self.docs.get(id).map(|doc| (*id, doc.clone())))
                .collect(),
        }
    }

    /// Applies a decoded delta on top of the current contents: deletes
    /// first (a key the collection does not hold is tolerated), then
    /// upserts, whose ids must be fresh and at or above the current
    /// watermark so replay reproduces insertion order exactly.
    ///
    /// # Errors
    /// Returns [`StoreError::BadIndex`] on an id that is stale, duplicate
    /// or not below the delta's own watermark, and propagates primary-key
    /// violations from the underlying inserts.
    pub fn apply_delta(&mut self, delta: CollectionDelta) -> Result<(), StoreError> {
        for key in &delta.deletes {
            match self.delete_by_key(key) {
                Ok(()) | Err(StoreError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let mut last_id = None;
        for (id, doc) in delta.upserts {
            if last_id.is_some_and(|prev| id <= prev) {
                return Err(StoreError::BadIndex(format!(
                    "delta document ids out of order at {id}"
                )));
            }
            last_id = Some(id);
            if id >= delta.next_id {
                return Err(StoreError::BadIndex(format!(
                    "delta document id {id} is not below the delta's next_id {}",
                    delta.next_id
                )));
            }
            if id < self.next_id {
                return Err(StoreError::BadIndex(format!(
                    "delta document id {id} is below the collection's watermark {}",
                    self.next_id
                )));
            }
            if self.docs.contains_key(&id) {
                return Err(StoreError::BadIndex(format!("delta document id {id} already exists")));
            }
            self.insert_at(id, doc)?;
        }
        self.next_id = self.next_id.max(delta.next_id);
        Ok(())
    }

    /// The document with the given internal id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// The document with the given primary-key value.
    pub fn get_by_key(&self, key: &Value) -> Option<&Document> {
        self.pk_index.get(key).and_then(|id| self.docs.get(id))
    }

    /// Deletes the document with the given primary-key value.
    ///
    /// # Errors
    /// Fails if no such document exists.
    pub fn delete_by_key(&mut self, key: &Value) -> Result<(), StoreError> {
        let id = *self.pk_index.get(key).ok_or_else(|| StoreError::NotFound(format!("{key:?}")))?;
        let doc = self.docs.remove(&id).expect("pk index and docs are consistent");
        self.pk_index.remove(key);
        self.insertion_order.retain(|d| *d != id);
        for (field, index) in self.attr_indexes.iter_mut() {
            if let Some(v) = doc.get(field) {
                index.remove(v, id);
            }
        }
        if let (Some(field), Some(index)) = (&self.geo_field, self.geo_index.as_mut()) {
            if let Some(p) = point_of(&doc, field) {
                index.remove(id, p);
            }
        }
        self.live.remove(id);
        self.dirty.touched.remove(&id);
        self.dirty.deleted.insert(key.clone());
        Ok(())
    }

    /// Replaces the document stored under the given primary-key value.
    ///
    /// # Errors
    /// Fails if no such document exists or the new document's key differs.
    pub fn replace_by_key(&mut self, key: &Value, doc: Document) -> Result<(), StoreError> {
        if doc.get(&self.primary_key) != Some(key) {
            return Err(StoreError::MissingPrimaryKey(self.primary_key.clone()));
        }
        self.delete_by_key(key)?;
        self.insert(doc).map(|_| ())
    }

    /// Runs a query, picking the best available index.
    ///
    /// Planner order (mirrors what MongoDB would do for these shapes):
    /// 1. exact primary-key equality,
    /// 2. geospatial predicate through the geo index,
    /// 3. exact equality on an attribute index,
    /// 4. full collection scan.
    pub fn find(&self, filter: &Filter) -> QueryResult {
        // 1. Primary-key point lookup.
        if let Some(key) = filter.exact_value_for(&self.primary_key) {
            let mut ids = Vec::new();
            let mut scanned = 0;
            if let Some(&id) = self.pk_index.get(key) {
                scanned = 1;
                if filter.matches(&self.docs[&id]) {
                    ids.push(id);
                }
            }
            let matched = ids.len();
            return QueryResult {
                ids,
                plan: QueryPlan { index_used: Some("pk".into()), scanned, matched },
            };
        }

        // 2. Geo index.
        if let (Some((field, shape)), Some(geo_field), Some(index)) =
            (filter.geo_constraint(), self.geo_field.as_deref(), self.geo_index.as_ref())
        {
            if field == geo_field {
                let (candidates, _cells) = index.candidates_in_shape(shape);
                let scanned = candidates.len();
                let ids: Vec<DocId> =
                    candidates.into_iter().filter(|id| filter.matches(&self.docs[id])).collect();
                let matched = ids.len();
                return QueryResult {
                    ids,
                    plan: QueryPlan { index_used: Some(geo_field.to_string()), scanned, matched },
                };
            }
        }

        // 3. Attribute index on an exact equality.
        for (field, index) in &self.attr_indexes {
            if let Some(value) = filter.exact_value_for(field) {
                let candidates = index.lookup(value);
                let scanned = candidates.len();
                let mut ids: Vec<DocId> =
                    candidates.into_iter().filter(|id| filter.matches(&self.docs[id])).collect();
                ids.sort_unstable();
                let matched = ids.len();
                return QueryResult {
                    ids,
                    plan: QueryPlan { index_used: Some(field.clone()), scanned, matched },
                };
            }
        }

        // 4. Full scan in insertion order.
        let mut ids = Vec::new();
        for &id in &self.insertion_order {
            if filter.matches(&self.docs[&id]) {
                ids.push(id);
            }
        }
        let matched = ids.len();
        QueryResult {
            ids,
            plan: QueryPlan { index_used: None, scanned: self.insertion_order.len(), matched },
        }
    }

    /// Like [`find`](Self::find) but returns document references.
    pub fn find_docs(&self, filter: &Filter) -> Vec<&Document> {
        self.find(filter).ids.iter().map(|id| &self.docs[id]).collect()
    }

    /// Number of documents matching a filter.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find(filter).plan.matched
    }

    /// Iterates over all documents in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&DocId, &Document)> {
        self.insertion_order.iter().map(move |id| (id, &self.docs[id]))
    }

    /// Collection statistics.
    pub fn stats(&self) -> CollectionStats {
        CollectionStats {
            count: self.docs.len(),
            approximate_bytes: self.docs.values().map(|d| d.approximate_size()).sum(),
            attribute_indexes: self.attr_indexes.keys().cloned().collect(),
            geo_index: self.geo_field.clone(),
        }
    }
}

fn point_of(doc: &Document, field: &str) -> Option<Point> {
    let arr = doc.get(field)?.as_array()?;
    if arr.len() != 2 {
        return None;
    }
    Point::new(arr[0].as_float()?, arr[1].as_float()?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_geo::{BBox, GeoShape};

    fn patch_doc(
        name: &str,
        country: &str,
        lon: f64,
        lat: f64,
        labels: &str,
        date: i64,
    ) -> Document {
        Document::new()
            .with("name", name)
            .with("country", country)
            .with("labels", labels)
            .with("date", Value::Date(date))
            .with("location", Value::Array(vec![Value::Float(lon), Value::Float(lat)]))
    }

    fn sample_collection() -> Collection {
        let mut c = Collection::new("metadata", "name");
        c.create_attribute_index("country");
        c.create_geo_index("location").unwrap();
        c.insert(patch_doc("p1", "Portugal", -8.5, 37.1, "AB", 100)).unwrap();
        c.insert(patch_doc("p2", "Portugal", -8.6, 37.2, "BC", 200)).unwrap();
        c.insert(patch_doc("p3", "Austria", 14.0, 47.5, "C", 300)).unwrap();
        c.insert(patch_doc("p4", "Finland", 25.0, 62.0, "AD", 400)).unwrap();
        c
    }

    #[test]
    fn insert_get_and_primary_key_constraints() {
        let mut c = sample_collection();
        assert_eq!(c.len(), 4);
        assert_eq!(c.name(), "metadata");
        assert_eq!(c.primary_key(), "name");
        assert!(c.get_by_key(&"p1".into()).is_some());
        assert!(c.get_by_key(&"nope".into()).is_none());
        // Duplicate key rejected.
        let err = c.insert(patch_doc("p1", "Serbia", 20.0, 44.0, "A", 1)).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey(_)));
        // Missing key rejected.
        let err = c.insert(Document::new().with("country", "Serbia")).unwrap_err();
        assert!(matches!(err, StoreError::MissingPrimaryKey(_)));
    }

    #[test]
    fn get_by_internal_id_and_iteration_order() {
        let c = sample_collection();
        let names: Vec<&str> =
            c.iter().map(|(_, d)| d.get("name").unwrap().as_str().unwrap()).collect();
        assert_eq!(names, vec!["p1", "p2", "p3", "p4"]);
        let (first_id, _) = c.iter().next().unwrap();
        assert!(c.get(*first_id).is_some());
        assert!(c.get(9999).is_none());
    }

    #[test]
    fn primary_key_lookup_uses_pk_index() {
        let c = sample_collection();
        let r = c.find(&Filter::Eq("name".into(), "p3".into()));
        assert_eq!(r.ids.len(), 1);
        assert_eq!(r.plan.index_used.as_deref(), Some("pk"));
        assert_eq!(r.plan.scanned, 1);
        // Missing key: zero scanned/matched, still the pk path.
        let r = c.find(&Filter::Eq("name".into(), "missing".into()));
        assert!(r.ids.is_empty());
        assert_eq!(r.plan.index_used.as_deref(), Some("pk"));
    }

    #[test]
    fn attribute_index_is_used_for_equality() {
        let c = sample_collection();
        let r = c.find(&Filter::Eq("country".into(), "Portugal".into()));
        assert_eq!(r.ids.len(), 2);
        assert_eq!(r.plan.index_used.as_deref(), Some("country"));
        assert_eq!(r.plan.scanned, 2); // only the posting list, not the whole collection
                                       // The same query without the index would scan everything.
        let mut no_index = Collection::new("metadata", "name");
        no_index.insert(patch_doc("p1", "Portugal", -8.5, 37.1, "AB", 100)).unwrap();
        no_index.insert(patch_doc("p3", "Austria", 14.0, 47.5, "C", 300)).unwrap();
        let r = no_index.find(&Filter::Eq("country".into(), "Portugal".into()));
        assert_eq!(r.plan.index_used, None);
        assert_eq!(r.plan.scanned, 2);
    }

    #[test]
    fn geo_index_drives_spatial_queries() {
        let c = sample_collection();
        let portugal_box = GeoShape::Rect(BBox::new(-9.5, 36.5, -6.0, 42.0).unwrap());
        let r = c.find(&Filter::GeoWithin("location".into(), portugal_box));
        assert_eq!(r.ids.len(), 2);
        assert_eq!(r.plan.index_used.as_deref(), Some("location"));
        assert!(r.plan.scanned <= 2, "geo index should prune non-candidates");
    }

    #[test]
    fn combined_geo_and_attribute_filter() {
        let c = sample_collection();
        let shape = GeoShape::Rect(BBox::new(-9.5, 36.5, 26.0, 63.0).unwrap());
        let f = Filter::GeoWithin("location".into(), shape)
            .and(Filter::ContainsAny("labels".into(), vec!["A".into()]));
        let r = c.find(&f);
        // p1 (labels AB) and p4 (labels AD) match; p2/p3 have no 'A'.
        assert_eq!(r.ids.len(), 2);
        assert_eq!(r.plan.index_used.as_deref(), Some("location"));
    }

    #[test]
    fn full_scan_fallback_and_count() {
        let c = sample_collection();
        let f = Filter::Gt("date".into(), Value::Date(150));
        let r = c.find(&f);
        assert_eq!(r.plan.index_used, None);
        assert_eq!(r.plan.scanned, 4);
        assert_eq!(r.ids.len(), 3);
        assert_eq!(c.count(&f), 3);
        assert_eq!(c.find_docs(&f).len(), 3);
    }

    #[test]
    fn delete_and_replace_maintain_indexes() {
        let mut c = sample_collection();
        c.delete_by_key(&"p1".into()).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.get_by_key(&"p1".into()).is_none());
        let r = c.find(&Filter::Eq("country".into(), "Portugal".into()));
        assert_eq!(r.ids.len(), 1);
        // Replacing p2 with new country moves it between index postings.
        c.replace_by_key(&"p2".into(), patch_doc("p2", "Austria", 14.1, 47.6, "B", 250)).unwrap();
        assert_eq!(c.count(&Filter::Eq("country".into(), "Portugal".into())), 0);
        assert_eq!(c.count(&Filter::Eq("country".into(), "Austria".into())), 2);
        // Errors.
        assert!(c.delete_by_key(&"ghost".into()).is_err());
        assert!(c
            .replace_by_key(&"p3".into(), patch_doc("other", "Austria", 1.0, 45.9, "C", 1))
            .is_err());
    }

    #[test]
    fn late_index_creation_indexes_existing_documents() {
        let mut c = Collection::new("metadata", "name");
        c.insert(patch_doc("p1", "Portugal", -8.5, 37.1, "AB", 100)).unwrap();
        c.insert(patch_doc("p2", "Austria", 14.0, 47.5, "C", 300)).unwrap();
        c.create_attribute_index("country");
        c.create_geo_index("location").unwrap();
        assert!(c.has_attribute_index("country"));
        let r = c.find(&Filter::Eq("country".into(), "Austria".into()));
        assert_eq!(r.plan.index_used.as_deref(), Some("country"));
        assert_eq!(r.ids.len(), 1);
        // A second geo index on a different field is rejected.
        assert!(matches!(c.create_geo_index("other"), Err(StoreError::BadIndex(_))));
        // Re-creating on the same field is fine (rebuild).
        assert!(c.create_geo_index("location").is_ok());
    }

    #[test]
    fn stats_reflect_contents() {
        let c = sample_collection();
        let s = c.stats();
        assert_eq!(s.count, 4);
        assert!(s.approximate_bytes > 0);
        assert_eq!(s.attribute_indexes, vec!["country".to_string()]);
        assert_eq!(s.geo_index.as_deref(), Some("location"));
    }

    #[test]
    fn dirty_log_tracks_inserts_deletes_and_schema_changes() {
        let mut c = sample_collection();
        assert!(c.is_dirty(), "fresh inserts and index creation are dirty");
        let drained = c.take_dirty();
        assert!(!c.is_dirty());
        assert!(drained.schema_changed());

        // Mutations after the drain accumulate in a fresh log.
        c.insert(patch_doc("p5", "Serbia", 20.0, 44.0, "B", 500)).unwrap();
        c.delete_by_key(&"p1".into()).unwrap();
        assert!(c.is_dirty());
        let log = c.take_dirty();
        assert!(!log.schema_changed());
        let delta = c.capture_delta(&log);
        assert_eq!(delta.deletes, vec![Value::from("p1")]);
        assert_eq!(delta.upserts.len(), 1);
        assert_eq!(delta.upserts[0].0, 4, "p5 got the next dense id");

        // A document created and deleted inside one window yields only a
        // (tolerated) delete, not an upsert.
        c.insert(patch_doc("ghost", "Nowhere", 0.0, 0.0, "X", 1)).unwrap();
        c.delete_by_key(&"ghost".into()).unwrap();
        let log = c.take_dirty();
        let delta = c.capture_delta(&log);
        assert!(delta.upserts.is_empty());
        assert_eq!(delta.deletes, vec![Value::from("ghost")]);
    }

    #[test]
    fn restore_dirty_merges_a_failed_drain_back() {
        let mut c = sample_collection();
        let first = c.take_dirty();
        c.insert(patch_doc("p5", "Serbia", 20.0, 44.0, "B", 500)).unwrap();
        c.restore_dirty(first);
        let merged = c.take_dirty();
        assert!(merged.schema_changed());
        let delta = c.capture_delta(&merged);
        assert_eq!(delta.upserts.len(), 5, "both windows' documents survive the merge");
    }

    #[test]
    fn apply_delta_reproduces_the_source_collection() {
        let mut base = sample_collection();
        base.take_dirty();
        let mut live = base.clone();
        live.delete_by_key(&"p2".into()).unwrap();
        live.insert(patch_doc("p5", "Serbia", 20.0, 44.0, "B", 500)).unwrap();
        let log = live.take_dirty();
        let delta = live.capture_delta(&log);

        base.apply_delta(delta).unwrap();
        assert_eq!(base.len(), live.len());
        assert_eq!(base.next_id(), live.next_id());
        let order: Vec<DocId> = base.iter().map(|(id, _)| *id).collect();
        assert_eq!(order, live.iter().map(|(id, _)| *id).collect::<Vec<_>>());
        let f = Filter::Eq("country".into(), Value::from("Serbia"));
        assert_eq!(base.find(&f), live.find(&f));
    }

    #[test]
    fn apply_delta_rejects_stale_and_disordered_ids() {
        let mut c = sample_collection();
        c.take_dirty();
        let stale = CollectionDelta {
            name: "metadata".into(),
            next_id: 10,
            deletes: vec![],
            upserts: vec![(0, patch_doc("x", "X", 0.0, 0.0, "A", 1))],
        };
        assert!(matches!(c.apply_delta(stale), Err(StoreError::BadIndex(_))));

        let disordered = CollectionDelta {
            name: "metadata".into(),
            next_id: 10,
            deletes: vec![],
            upserts: vec![
                (5, patch_doc("x", "X", 0.0, 0.0, "A", 1)),
                (4, patch_doc("y", "Y", 0.0, 0.0, "A", 1)),
            ],
        };
        assert!(matches!(c.apply_delta(disordered), Err(StoreError::BadIndex(_))));

        let above_watermark = CollectionDelta {
            name: "metadata".into(),
            next_id: 5,
            deletes: vec![],
            upserts: vec![(5, patch_doc("x", "X", 0.0, 0.0, "A", 1))],
        };
        assert!(matches!(c.apply_delta(above_watermark), Err(StoreError::BadIndex(_))));
    }

    #[test]
    fn documents_without_indexed_fields_are_tolerated() {
        let mut c = Collection::new("misc", "key");
        c.create_attribute_index("country");
        c.create_geo_index("location").unwrap();
        c.insert(Document::new().with("key", "a")).unwrap();
        assert_eq!(c.len(), 1);
        let r = c.find(&Filter::All);
        assert_eq!(r.ids.len(), 1);
    }
}
