//! Property-based tests: the indexed query paths must agree with a naive
//! full-scan reference evaluation, and index maintenance must survive random
//! insert/delete sequences.

use eq_docstore::{Collection, Document, Filter, Value};
use eq_geo::{BBox, GeoShape};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Record {
    name: String,
    country: &'static str,
    lon: f64,
    lat: f64,
    date: i64,
    labels: String,
}

fn arb_record(id: usize) -> impl Strategy<Value = Record> {
    let countries = prop_oneof![
        Just("Portugal"),
        Just("Austria"),
        Just("Finland"),
        Just("Serbia"),
        Just("Ireland"),
    ];
    (
        countries,
        -9.0f64..25.0,
        37.0f64..65.0,
        0i64..1000,
        proptest::collection::vec(prop_oneof![Just('A'), Just('B'), Just('C'), Just('D')], 1..4),
    )
        .prop_map(move |(country, lon, lat, date, labels)| Record {
            name: format!("patch_{id}"),
            country,
            lon,
            lat,
            date,
            labels: {
                let mut l: Vec<char> = labels;
                l.sort_unstable();
                l.dedup();
                l.into_iter().collect()
            },
        })
}

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    (1usize..40).prop_flat_map(|n| {
        let strategies: Vec<_> = (0..n).map(arb_record).collect();
        strategies
    })
}

fn to_doc(r: &Record) -> Document {
    Document::new()
        .with("name", r.name.as_str())
        .with("country", r.country)
        .with("date", Value::Date(r.date))
        .with("labels", r.labels.as_str())
        .with("location", Value::Array(vec![Value::Float(r.lon), Value::Float(r.lat)]))
}

fn build_collections(records: &[Record]) -> (Collection, Collection) {
    let mut indexed = Collection::new("metadata", "name");
    indexed.create_attribute_index("country");
    indexed.create_geo_index("location").unwrap();
    let mut plain = Collection::new("metadata", "name");
    for r in records {
        indexed.insert(to_doc(r)).unwrap();
        plain.insert(to_doc(r)).unwrap();
    }
    (indexed, plain)
}

fn matched_names(c: &Collection, f: &Filter) -> Vec<String> {
    let mut names: Vec<String> = c
        .find_docs(f)
        .iter()
        .map(|d| d.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    names.sort();
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_and_unindexed_queries_agree(records in arb_records(), min_date in 0i64..1000) {
        let (indexed, plain) = build_collections(&records);

        let filters = vec![
            Filter::Eq("country".into(), "Portugal".into()),
            Filter::Eq("country".into(), "Austria".into()).and(Filter::Gt("date".into(), Value::Date(min_date))),
            Filter::GeoWithin("location".into(), GeoShape::Rect(BBox::new(-9.5, 36.0, 10.0, 55.0).unwrap())),
            Filter::GeoWithin("location".into(), GeoShape::Rect(BBox::new(10.0, 55.0, 26.0, 66.0).unwrap()))
                .and(Filter::ContainsAny("labels".into(), vec!["A".into()])),
            Filter::ContainsAll("labels".into(), vec!["A".into(), "B".into()]),
            Filter::Gt("date".into(), Value::Date(min_date)),
        ];
        for f in &filters {
            prop_assert_eq!(matched_names(&indexed, f), matched_names(&plain, f));
        }
    }

    #[test]
    fn query_plan_counts_are_consistent(records in arb_records()) {
        let (indexed, _) = build_collections(&records);
        let f = Filter::Eq("country".into(), "Portugal".into());
        let r = indexed.find(&f);
        prop_assert_eq!(r.plan.matched, r.ids.len());
        prop_assert!(r.plan.scanned >= r.plan.matched);
        prop_assert!(r.plan.scanned <= records.len());
    }

    #[test]
    fn deletion_removes_documents_from_all_access_paths(records in arb_records()) {
        let (mut indexed, _) = build_collections(&records);
        // Delete every other document.
        let victims: Vec<String> = records.iter().step_by(2).map(|r| r.name.clone()).collect();
        for name in &victims {
            indexed.delete_by_key(&Value::Str(name.clone())).unwrap();
        }
        for name in &victims {
            prop_assert!(indexed.get_by_key(&Value::Str(name.clone())).is_none());
        }
        // The remaining documents are all still reachable through a country query union.
        let total: usize = ["Portugal", "Austria", "Finland", "Serbia", "Ireland"]
            .iter()
            .map(|c| indexed.count(&Filter::Eq("country".into(), (*c).into())))
            .sum();
        prop_assert_eq!(total, records.len() - victims.len());
    }

    #[test]
    fn primary_key_lookup_always_finds_inserted_documents(records in arb_records()) {
        let (indexed, _) = build_collections(&records);
        for r in &records {
            let res = indexed.find(&Filter::Eq("name".into(), r.name.as_str().into()));
            prop_assert_eq!(res.ids.len(), 1);
            prop_assert_eq!(res.plan.index_used.as_deref(), Some("pk"));
        }
    }
}
