//! Property tests of the wire format: arbitrary values and patch-shaped
//! documents must round-trip encode→decode byte-identically, and decoding
//! any truncated or bit-flipped input must return a clean error — never
//! panic, never over-allocate.
//!
//! Arbitrary `Value` trees are grown by interpreting a random byte script,
//! which gives the vendored (non-recursive) proptest stub full coverage of
//! the recursive value grammar, including arbitrary `f64` bit patterns
//! (NaNs with payloads, -0.0) and non-UTF-8-adjacent strings.

use eq_docstore::wire::{decode_document, decode_value, encode_document, encode_value};
use eq_docstore::{Document, Value};
use eq_wire::{Reader, Writer};
use proptest::prelude::*;

/// Consumes up to `n` bytes of the script as a big-endian integer; an
/// exhausted script reads as zeros.
fn take(script: &mut &[u8], n: usize) -> u64 {
    let mut out = 0u64;
    for _ in 0..n {
        let (byte, rest) = match script.split_first() {
            Some((b, rest)) => (*b, rest),
            None => (0, *script),
        };
        *script = rest;
        out = (out << 8) | byte as u64;
    }
    out
}

/// Interprets a byte script as one `Value`.  Every script byte is consumed
/// at most once, scripts of any content are valid, and nesting is bounded
/// by construction — exactly what a generator for a recursive grammar
/// needs under a strategy stub without recursion support.
fn value_from_script(script: &mut &[u8], depth: u32) -> Value {
    let op = take(script, 1) % 9;
    // Past depth 3, collapse the recursive variants to scalars.
    let op = if depth >= 3 && (op == 5 || op == 6) { op - 4 } else { op };
    match op {
        0 => Value::Null,
        1 => Value::Bool(take(script, 1) % 2 == 1),
        2 => Value::Int(take(script, 8) as i64),
        3 => Value::Float(f64::from_bits(take(script, 8))),
        4 => {
            let len = (take(script, 1) % 9) as usize;
            let mut s = String::new();
            for _ in 0..len {
                // A spread of code points incl. multi-byte ones.
                let c = char::from_u32((take(script, 2) as u32) % 0xD7FF).unwrap_or('ø');
                s.push(c);
            }
            Value::Str(s)
        }
        5 => {
            let n = (take(script, 1) % 4) as usize;
            Value::Array((0..n).map(|_| value_from_script(script, depth + 1)).collect())
        }
        6 => {
            let n = (take(script, 1) % 4) as usize;
            let mut fields = std::collections::BTreeMap::new();
            for i in 0..n {
                let key = format!("k{}_{}", i, take(script, 1));
                fields.insert(key, value_from_script(script, depth + 1));
            }
            Value::Doc(fields)
        }
        7 => {
            let len = (take(script, 1) % 16) as usize;
            Value::Bytes((0..len).map(|_| take(script, 1) as u8).collect())
        }
        _ => Value::Date(take(script, 8) as i64),
    }
}

/// A patch-shaped document: the metadata-collection layout (name, dense
/// id, location pair, bbox quad, nested properties) with script-driven
/// field values, plus a few entirely arbitrary extra fields.
fn document_from_script(script: &mut &[u8]) -> Document {
    let mut properties = std::collections::BTreeMap::new();
    properties.insert("labels".to_string(), Value::Str("ABC".into()));
    properties.insert("date".to_string(), Value::Date(take(script, 8) as i64));
    let mut doc = Document::new()
        .with("name", format!("patch_{}", take(script, 4)))
        .with("patch_id", take(script, 4) as i64)
        .with(
            "location",
            Value::Array(vec![
                Value::Float(f64::from_bits(take(script, 8))),
                Value::Float(f64::from_bits(take(script, 8))),
            ]),
        )
        .with("properties", Value::Doc(properties));
    for i in 0..(take(script, 1) % 4) {
        doc.set(&format!("extra_{i}"), value_from_script(script, 1));
    }
    doc
}

fn encoded_value(value: &Value) -> Vec<u8> {
    let mut w = Writer::new();
    encode_value(value, &mut w);
    w.into_bytes()
}

fn encoded_document(doc: &Document) -> Vec<u8> {
    let mut w = Writer::new();
    encode_document(doc, &mut w);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode→decode→encode is a byte-identical fixpoint for arbitrary
    /// values (bit-pattern equality even for NaN floats, which `==` on the
    /// decoded `Value` could not check).
    #[test]
    fn value_roundtrip_is_byte_identical(script in proptest::collection::vec(0u8..=255u8, 0..96)) {
        let value = value_from_script(&mut script.as_slice(), 0);
        let bytes = encoded_value(&value);
        let mut r = Reader::new(&bytes);
        let decoded = decode_value(&mut r).expect("own encoding must decode");
        prop_assert!(r.is_empty(), "value encoding must be self-delimiting");
        prop_assert_eq!(encoded_value(&decoded), bytes);
    }

    /// Patch-shaped documents round-trip byte-identically as well.
    #[test]
    fn patch_document_roundtrip_is_byte_identical(
        script in proptest::collection::vec(0u8..=255u8, 0..96),
    ) {
        let doc = document_from_script(&mut script.as_slice());
        let bytes = encoded_document(&doc);
        let mut r = Reader::new(&bytes);
        let decoded = decode_document(&mut r).expect("own encoding must decode");
        prop_assert!(r.is_empty());
        prop_assert_eq!(encoded_document(&decoded), bytes);
    }

    /// Every strict prefix of a valid encoding fails to decode — with an
    /// error, not a panic.  (Each encoded byte is required, so truncation
    /// anywhere must surface as `UnexpectedEof`/`Corrupt`.)
    #[test]
    fn truncated_prefixes_return_clean_errors(
        script in proptest::collection::vec(0u8..=255u8, 0..64),
    ) {
        let value = value_from_script(&mut script.as_slice(), 0);
        let bytes = encoded_value(&value);
        for cut in 0..bytes.len() {
            let result = decode_value(&mut Reader::new(&bytes[..cut]));
            prop_assert!(result.is_err(), "prefix of {}/{} bytes decoded", cut, bytes.len());
        }
    }

    /// Decoding a bit-flipped encoding never panics and never allocates
    /// absurdly: it either fails cleanly or yields some other valid value
    /// (a flip inside an integer payload is still a well-formed integer).
    #[test]
    fn bit_flips_never_panic(
        script in proptest::collection::vec(0u8..=255u8, 1..64),
        flip in 0usize..4096,
    ) {
        let value = value_from_script(&mut script.as_slice(), 0);
        let mut bytes = encoded_value(&value);
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Must not panic; both Ok and Err are acceptable outcomes.
        let result = decode_value(&mut Reader::new(&bytes));
        if let Ok(decoded) = result {
            // Whatever decoded must itself re-encode and re-decode.
            let rebytes = encoded_value(&decoded);
            prop_assert!(decode_value(&mut Reader::new(&rebytes)).is_ok());
        }
    }

    /// Same corruption-safety for the document decoder, which additionally
    /// validates key ordering.
    #[test]
    fn document_bit_flips_never_panic(
        script in proptest::collection::vec(0u8..=255u8, 1..64),
        flip in 0usize..4096,
    ) {
        let doc = document_from_script(&mut script.as_slice());
        let mut bytes = encoded_document(&doc);
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let _ = decode_document(&mut Reader::new(&bytes));
    }
}
