//! Property-based tests for the bitmap prefilter compiler: for random
//! corpora and random filter ASTs, the compiled plan must satisfy the
//! exactness contract
//!
//! ```text
//! filter.matches(doc) == bitmap.map_or(true, |b| b.contains(id))
//!                        && residual.matches(doc)
//! ```
//!
//! for every live document — i.e. resolving the bitmap and then running
//! the residual on its survivors yields exactly the naive full-scan match
//! set.  The corpus deliberately includes documents with missing fields
//! (`Ne` matches them, comparisons never do), a mixed int/float numeric
//! field whose values overlap numerically (where index-order equality and
//! `==` diverge, so equality leaves must resolve through the canonical
//! numeric postings to compile exactly) and multi-character element
//! needles (which can never match the per-character string elements).
//!
//! Filter ASTs are built from a drawn token stream by a small
//! recursive-descent constructor (the vendored proptest stub has no
//! `prop_recursive`), so every operator — leaves, supersets, uncompiled
//! fields and nested `And`/`Or`/`Not` — gets exercised.

use eq_docstore::{Collection, Document, Filter, Value};
use eq_geo::{BBox, GeoShape};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Record {
    name: String,
    country: Option<&'static str>,
    labels: Option<String>,
    score: Option<Value>,
    lon: f64,
    lat: f64,
    date: i64,
}

fn arb_record(id: usize) -> impl Strategy<Value = Record> {
    (
        0u8..5,
        proptest::collection::vec(prop_oneof![Just('A'), Just('B'), Just('C')], 1..4),
        0u8..5,
        0u8..3,
        0i64..4,
        -9.0f64..25.0,
        37.0f64..65.0,
        0i64..1000,
    )
        .prop_map(move |(csel, lchars, lpresent, ssel, sval, lon, lat, date)| Record {
            name: format!("patch_{id}"),
            country: ["Portugal", "Austria", "Finland", "Serbia"].get(csel as usize).copied(),
            labels: (lpresent > 0).then(|| {
                let mut l = lchars;
                l.sort_unstable();
                l.dedup();
                l.into_iter().collect()
            }),
            // Half ints, half floats, overlapping numerically: Int(2) and
            // Float(2.0) land on the same B-tree key but are `!=`.
            score: match ssel {
                0 => None,
                1 => Some(Value::Int(sval)),
                _ => Some(Value::Float(sval as f64)),
            },
            lon,
            lat,
            date,
        })
}

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    (1usize..32).prop_flat_map(|n| {
        let strategies: Vec<_> = (0..n).map(arb_record).collect();
        strategies
    })
}

fn to_doc(r: &Record) -> Document {
    let mut doc = Document::new()
        .with("name", r.name.as_str())
        .with("date", Value::Date(r.date))
        .with("location", Value::Array(vec![Value::Float(r.lon), Value::Float(r.lat)]));
    if let Some(c) = r.country {
        doc = doc.with("country", c);
    }
    if let Some(l) = &r.labels {
        doc = doc.with("labels", l.as_str());
    }
    if let Some(s) = &r.score {
        doc = doc.with("score", s.clone());
    }
    doc
}

fn build_collection(records: &[Record]) -> Collection {
    let mut coll = Collection::new("metadata", "name");
    coll.create_attribute_index("country");
    coll.create_attribute_index("labels");
    coll.create_attribute_index("date");
    coll.create_attribute_index("score");
    coll.create_geo_index("location").unwrap();
    for r in records {
        coll.insert(to_doc(r)).unwrap();
    }
    coll
}

/// One drawn token: `(op, field, value-kind, number, lon, lat)`.
type Tok = (u8, u8, u8, i64, f64, f64);

fn arb_tok() -> impl Strategy<Value = Tok> {
    (0u8..=255, 0u8..=255, 0u8..=255, 0i64..1000, -9.0f64..20.0, 37.0f64..60.0)
}

fn arb_toks() -> impl Strategy<Value = Vec<Tok>> {
    proptest::collection::vec(arb_tok(), 1..16)
}

fn token_value(kind: u8, num: i64) -> Value {
    match kind % 5 {
        0 => ["Portugal", "Austria", "Nowhere"][(num % 3) as usize].into(),
        1 => ["A", "B", "C", "AB", "Z"][(num % 5) as usize].into(),
        2 => Value::Date(num),
        3 => Value::Int(num % 4),
        _ => Value::Float((num % 4) as f64),
    }
}

/// Recursive-descent filter constructor over the token stream.  `depth`
/// bounds nesting; an exhausted stream degrades to `Filter::All`.
fn build_filter(toks: &mut std::slice::Iter<'_, Tok>, depth: u32) -> Filter {
    let Some(&(op, field, kind, num, lon, lat)) = toks.next() else {
        return Filter::All;
    };
    let field = ["country", "labels", "date", "score", "unindexed"][(field % 5) as usize];
    let value = token_value(kind, num);
    let list = |n: i64| -> Vec<Value> {
        (0..n % 3).map(|i| token_value(kind.wrapping_add(i as u8), num + i)).collect()
    };
    let ops = if depth == 0 { 14 } else { 17 };
    match op % ops {
        0 => Filter::All,
        1 => Filter::Eq(field.into(), value),
        2 => Filter::Ne(field.into(), value),
        3 => Filter::Lt(field.into(), value),
        4 => Filter::Lte(field.into(), value),
        5 => Filter::Gt(field.into(), value),
        6 => Filter::Gte(field.into(), value),
        7 => Filter::In(field.into(), list(num)),
        8 => Filter::ContainsAll(field.into(), list(num)),
        9 => Filter::ContainsAny(field.into(), list(num)),
        10 => Filter::ContainsExactly(field.into(), list(num)),
        11 => Filter::Exists(field.into()),
        12 => Filter::StartsWith(field.into(), ["Po", "A", "Z"][(num % 3) as usize].into()),
        13 => {
            let bbox = BBox::new(lon, lat, lon + 3.0, lat + 2.5).expect("box stays in range");
            Filter::GeoWithin("location".into(), GeoShape::Rect(bbox))
        }
        14 => Filter::And((0..1 + num % 3).map(|_| build_filter(toks, depth - 1)).collect()),
        15 => Filter::Or((0..1 + num % 3).map(|_| build_filter(toks, depth - 1)).collect()),
        _ => Filter::Not(Box::new(build_filter(toks, depth - 1))),
    }
}

/// Asserts the compiler contract over every live document of `coll`.
fn assert_contract(coll: &Collection, filter: &Filter) -> Result<(), TestCaseError> {
    let plan = coll.compile_prefilter(filter);
    for (&id, doc) in coll.iter() {
        let naive = filter.matches(doc);
        let via_plan =
            plan.bitmap.as_ref().is_none_or(|b| b.contains(id)) && plan.residual.matches(doc);
        prop_assert!(
            naive == via_plan,
            "doc {} disagrees under {:?} (plan: {:?})",
            id,
            filter,
            plan
        );
    }
    // The candidate set never leaks dead documents.
    if let Some(bitmap) = &plan.bitmap {
        for id in bitmap.iter() {
            prop_assert!(coll.live_bitmap().contains(id), "dead doc {id} in bitmap");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_plans_satisfy_the_exactness_contract(
        records in arb_records(),
        toks in arb_toks(),
    ) {
        let coll = build_collection(&records);
        let mut it = toks.iter();
        while it.len() > 0 {
            let filter = build_filter(&mut it, 2);
            assert_contract(&coll, &filter)?;
        }
    }

    #[test]
    fn the_contract_survives_random_deletions(
        records in arb_records(),
        toks in arb_toks(),
        stride in 2usize..4,
    ) {
        let mut coll = build_collection(&records);
        for r in records.iter().step_by(stride) {
            coll.delete_by_key(&Value::Str(r.name.clone())).unwrap();
        }
        let mut it = toks.iter();
        let filter = build_filter(&mut it, 2);
        assert_contract(&coll, &filter)?;
        // Postings shrank with the documents: a full-universe Ne bitmap
        // has exactly the live cardinality.
        let plan = coll.compile_prefilter(&Filter::Ne("country".into(), "Nowhere".into()));
        prop_assert_eq!(plan.cardinality(), Some(coll.live_bitmap().len()));
    }

    #[test]
    fn ne_bitmaps_keep_documents_missing_the_field(records in arb_records()) {
        let coll = build_collection(&records);
        for country in ["Portugal", "Austria", "Nowhere"] {
            let f = Filter::Ne("country".into(), country.into());
            let plan = coll.compile_prefilter(&f);
            prop_assert!(plan.is_exact(), "Ne on an indexed field compiles exactly");
            for (&id, doc) in coll.iter() {
                if doc.get("country").is_none() {
                    prop_assert!(
                        plan.bitmap.as_ref().is_some_and(|b| b.contains(id)),
                        "doc {} missing `country` must survive Ne({})",
                        id,
                        country
                    );
                }
            }
            assert_contract(&coll, &f)?;
        }
    }

    #[test]
    fn numeric_scalar_equality_always_compiles_exactly(
        records in arb_records(),
        nums in proptest::collection::vec((0i64..6, 0u8..2), 1..8),
    ) {
        // The `score` field mixes Int and Float postings that overlap
        // numerically; equality on numeric *scalars* must nonetheless
        // compile to an exact bitmap via the canonical numeric postings.
        let coll = build_collection(&records);
        let scalar = |&(n, as_float): &(i64, u8)| {
            if as_float == 1 { Value::Float(n as f64) } else { Value::Int(n) }
        };
        for pair in &nums {
            let v = scalar(pair);
            for f in [
                Filter::Eq("score".into(), v.clone()),
                Filter::Ne("score".into(), v.clone()),
                Filter::In("score".into(), nums.iter().map(scalar).collect()),
                Filter::ContainsAny("score".into(), vec![v.clone()]),
            ] {
                let plan = coll.compile_prefilter(&f);
                prop_assert!(plan.is_exact(), "{:?} should compile exactly, got {:?}", f, plan);
                assert_contract(&coll, &f)?;
            }
            // Int(n) and Float(n.0) postings stay disjoint even though
            // they share one ordered-map key.
            let as_int = coll.compile_prefilter(&Filter::Eq("score".into(), Value::Int(pair.0)));
            let as_float =
                coll.compile_prefilter(&Filter::Eq("score".into(), Value::Float(pair.0 as f64)));
            if let (Some(a), Some(b)) = (&as_int.bitmap, &as_float.bitmap) {
                prop_assert!(a.and(b).is_empty(), "Int/Float postings must not overlap");
            }
        }
    }

    #[test]
    fn or_and_not_residuals_compose_correctly(
        records in arb_records(),
        toks in arb_toks(),
    ) {
        let coll = build_collection(&records);
        // Or over arbitrary leaves (some exact, some supersets, some
        // uncompiled) and Not over each single leaf: the compositions the
        // compiler must never get wrong by distributing residuals.
        let mut it = toks.iter();
        let mut leaves = Vec::new();
        while it.len() > 0 {
            leaves.push(build_filter(&mut it, 0));
        }
        assert_contract(&coll, &Filter::Or(leaves.clone()))?;
        assert_contract(&coll, &Filter::Not(Box::new(Filter::Or(leaves.clone()))))?;
        for leaf in &leaves {
            assert_contract(&coll, &Filter::Not(Box::new(leaf.clone())))?;
        }
    }

    #[test]
    fn resolving_the_plan_reproduces_the_naive_match_set(
        records in arb_records(),
        toks in arb_toks(),
    ) {
        let coll = build_collection(&records);
        let mut it = toks.iter();
        let filter = build_filter(&mut it, 2);
        let plan = coll.compile_prefilter(&filter);
        // Resolve: candidates (or all live docs) filtered by the residual.
        let mut resolved: Vec<u64> = match &plan.bitmap {
            Some(bitmap) => bitmap
                .iter()
                .filter(|id| coll.get(*id).is_some_and(|d| plan.residual.matches(d)))
                .collect(),
            None => coll
                .iter()
                .filter(|(_, d)| plan.residual.matches(d))
                .map(|(&id, _)| id)
                .collect(),
        };
        resolved.sort_unstable();
        let mut naive: Vec<u64> =
            coll.iter().filter(|(_, d)| filter.matches(d)).map(|(&id, _)| id).collect();
        naive.sort_unstable();
        prop_assert_eq!(resolved, naive);
    }
}
