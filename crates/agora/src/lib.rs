//! A minimal AgoraEO asset registry.
//!
//! The paper positions EarthQube inside the larger AgoraEO vision (§1):
//! "an ecosystem where one can offer, discover, combine, and efficiently
//! execute EO-related assets, such as datasets, algorithms, and tools".
//! This crate provides that integration point at library scale: a thread-safe
//! registry where the other crates register themselves as assets (the
//! BigEarthNet dataset, the MiLaN model, the hash index, the EarthQube
//! search service) and where simple pipelines over assets can be recorded.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use parking_lot::RwLock;

/// The kinds of assets AgoraEO manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AssetKind {
    /// A data archive (e.g. BigEarthNet).
    Dataset,
    /// A trained model (e.g. MiLaN).
    Model,
    /// A search index (e.g. the Hamming hash table).
    Index,
    /// A callable service (e.g. the EarthQube back-end).
    Service,
    /// A supporting tool (e.g. the RGB renderer).
    Tool,
}

impl AssetKind {
    /// Human-readable name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            AssetKind::Dataset => "dataset",
            AssetKind::Model => "model",
            AssetKind::Index => "index",
            AssetKind::Service => "service",
            AssetKind::Tool => "tool",
        }
    }
}

/// Metadata describing a registered asset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Asset {
    /// Unique asset name (registry key).
    pub name: String,
    /// Asset kind.
    pub kind: AssetKind,
    /// Human-readable description.
    pub description: String,
    /// Free-form discovery tags.
    pub tags: Vec<String>,
    /// The asset owner / providing party.
    pub provider: String,
}

/// A recorded composition of assets into an executable pipeline, e.g.
/// `bigearthnet → milan → hash-index → earthqube`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Pipeline name.
    pub name: String,
    /// Ordered asset names; every stage must be registered.
    pub stages: Vec<String>,
}

/// Errors returned by the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgoraError {
    /// An asset with the same name is already registered.
    Duplicate(String),
    /// A referenced asset is not registered.
    UnknownAsset(String),
    /// A pipeline referenced an empty stage list.
    EmptyPipeline,
}

impl std::fmt::Display for AgoraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgoraError::Duplicate(n) => write!(f, "asset already registered: {n}"),
            AgoraError::UnknownAsset(n) => write!(f, "unknown asset: {n}"),
            AgoraError::EmptyPipeline => write!(f, "a pipeline needs at least one stage"),
        }
    }
}

impl std::error::Error for AgoraError {}

/// A thread-safe asset registry.
#[derive(Debug, Default)]
pub struct AssetRegistry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    assets: BTreeMap<String, Asset>,
    pipelines: BTreeMap<String, Pipeline>,
}

impl AssetRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an asset.
    ///
    /// # Errors
    /// Fails if an asset with the same name is already registered.
    pub fn offer(&self, asset: Asset) -> Result<(), AgoraError> {
        let mut inner = self.inner.write();
        if inner.assets.contains_key(&asset.name) {
            return Err(AgoraError::Duplicate(asset.name));
        }
        inner.assets.insert(asset.name.clone(), asset);
        Ok(())
    }

    /// Removes an asset, returning whether it existed.  Pipelines that
    /// reference it are removed as well.
    pub fn withdraw(&self, name: &str) -> bool {
        let mut inner = self.inner.write();
        let existed = inner.assets.remove(name).is_some();
        if existed {
            inner.pipelines.retain(|_, p| !p.stages.iter().any(|s| s == name));
        }
        existed
    }

    /// The asset with the given name.
    pub fn get(&self, name: &str) -> Option<Asset> {
        self.inner.read().assets.get(name).cloned()
    }

    /// Number of registered assets.
    pub fn len(&self) -> usize {
        self.inner.read().assets.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All assets of a given kind, sorted by name.
    pub fn discover_by_kind(&self, kind: AssetKind) -> Vec<Asset> {
        self.inner.read().assets.values().filter(|a| a.kind == kind).cloned().collect()
    }

    /// All assets carrying the given tag, sorted by name.
    pub fn discover_by_tag(&self, tag: &str) -> Vec<Asset> {
        self.inner
            .read()
            .assets
            .values()
            .filter(|a| a.tags.iter().any(|t| t == tag))
            .cloned()
            .collect()
    }

    /// Records a pipeline over registered assets.
    ///
    /// # Errors
    /// Fails if the stage list is empty or references unknown assets.
    pub fn compose(&self, name: &str, stages: Vec<String>) -> Result<(), AgoraError> {
        if stages.is_empty() {
            return Err(AgoraError::EmptyPipeline);
        }
        let mut inner = self.inner.write();
        for s in &stages {
            if !inner.assets.contains_key(s) {
                return Err(AgoraError::UnknownAsset(s.clone()));
            }
        }
        inner.pipelines.insert(name.to_string(), Pipeline { name: name.to_string(), stages });
        Ok(())
    }

    /// The recorded pipeline with the given name.
    pub fn pipeline(&self, name: &str) -> Option<Pipeline> {
        self.inner.read().pipelines.get(name).cloned()
    }

    /// Names of all recorded pipelines, sorted.
    pub fn pipeline_names(&self) -> Vec<String> {
        self.inner.read().pipelines.keys().cloned().collect()
    }
}

/// Convenience constructor for an asset.
pub fn asset(
    name: &str,
    kind: AssetKind,
    description: &str,
    provider: &str,
    tags: &[&str],
) -> Asset {
    Asset {
        name: name.to_string(),
        kind,
        description: description.to_string(),
        provider: provider.to_string(),
        tags: tags.iter().map(|t| t.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> AssetRegistry {
        let r = AssetRegistry::new();
        r.offer(asset(
            "bigearthnet",
            AssetKind::Dataset,
            "BigEarthNet-MM archive",
            "TU Berlin",
            &["eo", "sentinel"],
        ))
        .unwrap();
        r.offer(asset(
            "milan",
            AssetKind::Model,
            "Deep hashing network",
            "RSiM",
            &["hashing", "cbir"],
        ))
        .unwrap();
        r.offer(asset("hash-index", AssetKind::Index, "Hamming hash table", "DIMA", &["cbir"]))
            .unwrap();
        r.offer(asset("earthqube", AssetKind::Service, "Search engine", "DIMA", &["search", "eo"]))
            .unwrap();
        r
    }

    #[test]
    fn offer_get_and_duplicate_detection() {
        let r = sample_registry();
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.get("milan").unwrap().kind, AssetKind::Model);
        assert!(r.get("unknown").is_none());
        let err = r.offer(asset("milan", AssetKind::Model, "dup", "x", &[])).unwrap_err();
        assert_eq!(err, AgoraError::Duplicate("milan".into()));
    }

    #[test]
    fn discovery_by_kind_and_tag() {
        let r = sample_registry();
        assert_eq!(r.discover_by_kind(AssetKind::Dataset).len(), 1);
        assert_eq!(r.discover_by_kind(AssetKind::Tool).len(), 0);
        let cbir = r.discover_by_tag("cbir");
        assert_eq!(cbir.len(), 2);
        assert!(cbir.iter().any(|a| a.name == "milan"));
        assert!(r.discover_by_tag("nonexistent").is_empty());
    }

    #[test]
    fn pipelines_require_known_assets() {
        let r = sample_registry();
        assert_eq!(r.compose("cbir", vec![]), Err(AgoraError::EmptyPipeline));
        assert_eq!(
            r.compose("cbir", vec!["bigearthnet".into(), "ghost".into()]),
            Err(AgoraError::UnknownAsset("ghost".into()))
        );
        r.compose(
            "cbir",
            vec!["bigearthnet".into(), "milan".into(), "hash-index".into(), "earthqube".into()],
        )
        .unwrap();
        assert_eq!(r.pipeline("cbir").unwrap().stages.len(), 4);
        assert_eq!(r.pipeline_names(), vec!["cbir".to_string()]);
        assert!(r.pipeline("nope").is_none());
    }

    #[test]
    fn withdraw_removes_asset_and_dependent_pipelines() {
        let r = sample_registry();
        r.compose("cbir", vec!["milan".into(), "hash-index".into()]).unwrap();
        assert!(r.withdraw("milan"));
        assert!(!r.withdraw("milan"));
        assert!(r.get("milan").is_none());
        assert!(r.pipeline("cbir").is_none(), "pipelines referencing withdrawn assets must go");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn kind_names() {
        assert_eq!(AssetKind::Dataset.name(), "dataset");
        assert_eq!(AssetKind::Service.name(), "service");
    }

    #[test]
    fn registry_is_usable_across_threads() {
        let r = std::sync::Arc::new(sample_registry());
        let mut handles = Vec::new();
        for i in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                r.offer(asset(&format!("tool-{i}"), AssetKind::Tool, "t", "p", &[])).unwrap();
                r.discover_by_kind(AssetKind::Tool).len()
            }));
        }
        for h in handles {
            assert!(h.join().unwrap() >= 1);
        }
        assert_eq!(r.discover_by_kind(AssetKind::Tool).len(), 4);
    }
}
