//! Property tests of the RPC protocol: arbitrary requests and responses
//! must round-trip encode→decode exactly, truncating a frame anywhere must
//! fail cleanly, and flipping any single bit of a frame must be *detected*
//! (the CRC-32 guarantees it for the payload; magic/length/checksum
//! corruption is caught structurally).
//!
//! Message shapes are grown by interpreting a random byte script — the
//! same technique as the docstore wire proptests — which gives the
//! vendored (non-recursive) proptest stub full coverage of the message
//! grammar, including every request and response tag.

use eq_bigearthnet::bands::BandData;
use eq_bigearthnet::labels::LabelSet;
use eq_bigearthnet::patch::{AcquisitionDate, Patch, PatchId, PatchMetadata, Satellite, Season};
use eq_bigearthnet::{Country, Label};
use eq_geo::{BBox, Circle, GeoShape, Point, Polygon};
use eq_proto::{
    ErrorCode, ErrorPayload, IngestPayload, LabelFilterSpec, LabelOp, PlanSpec, QuerySpec, Request,
    RequestBody, Response, ResponseBody, ResultRow, SearchPayload, StatsPayload,
};
use proptest::prelude::*;

/// Consumes up to `n` bytes of the script as a big-endian integer; an
/// exhausted script reads as zeros.
fn take(script: &mut &[u8], n: usize) -> u64 {
    let mut out = 0u64;
    for _ in 0..n {
        let (byte, rest) = match script.split_first() {
            Some((b, rest)) => (*b, rest),
            None => (0, *script),
        };
        *script = rest;
        out = (out << 8) | byte as u64;
    }
    out
}

fn string_from_script(script: &mut &[u8]) -> String {
    let len = (take(script, 1) % 9) as usize;
    (0..len).map(|_| char::from_u32((take(script, 2) as u32) % 0xD7FF).unwrap_or('ø')).collect()
}

fn date_from_script(script: &mut &[u8]) -> AcquisitionDate {
    AcquisitionDate::new(
        2000 + (take(script, 1) % 30) as u16,
        1 + (take(script, 1) % 12) as u8,
        1 + (take(script, 1) % 28) as u8,
    )
    .expect("in-range date")
}

fn shape_from_script(script: &mut &[u8]) -> GeoShape {
    // Small integer-ish coordinates: valid for every shape constructor.
    let coord = |script: &mut &[u8]| (take(script, 1) as f64) / 4.0 - 30.0;
    match take(script, 1) % 3 {
        0 => {
            let (lon, lat) = (coord(script), coord(script));
            GeoShape::Rect(
                BBox::new(lon, lat, lon + 1.0 + coord(script).abs() / 100.0, lat + 1.0)
                    .expect("ordered bbox"),
            )
        }
        1 => GeoShape::Circle(
            Circle::new(
                Point::new(coord(script), coord(script)).expect("in-range point"),
                1.0 + (take(script, 1) as f64),
            )
            .expect("positive radius"),
        ),
        _ => {
            let n = 3 + (take(script, 1) % 4) as usize;
            GeoShape::Polygon(
                Polygon::new(
                    (0..n)
                        .map(|i| {
                            Point::new(coord(script) + i as f64, coord(script) - i as f64)
                                .expect("in-range point")
                        })
                        .collect(),
                )
                .expect("non-degenerate polygon"),
            )
        }
    }
}

fn query_from_script(script: &mut &[u8]) -> QuerySpec {
    let shape = (take(script, 1) % 2 == 1).then(|| shape_from_script(script));
    let date_range = (take(script, 1) % 2 == 1).then(|| {
        let a = date_from_script(script);
        let b = date_from_script(script);
        (a.min(b), a.max(b))
    });
    let satellites =
        (0..take(script, 1) % 3).map(|_| Satellite::ALL[(take(script, 1) % 2) as usize]).collect();
    let seasons =
        (0..take(script, 1) % 5).map(|_| Season::ALL[(take(script, 1) % 4) as usize]).collect();
    let countries = (0..take(script, 1) % 4)
        .map(|_| Country::ALL[(take(script, 1) as usize) % Country::ALL.len()])
        .collect();
    let labels = (take(script, 1) % 2 == 1).then(|| LabelFilterSpec {
        op: [LabelOp::Some, LabelOp::Exactly, LabelOp::AtLeastAndMore]
            [(take(script, 1) % 3) as usize],
        labels: (0..take(script, 1) % 5)
            .map(|_| Label::from_index((take(script, 1) as usize) % Label::COUNT).unwrap())
            .collect(),
    });
    QuerySpec { shape, date_range, satellites, seasons, countries, labels }
}

fn patch_from_script(script: &mut &[u8]) -> Patch {
    let band = |script: &mut &[u8]| {
        let size = 1 + (take(script, 1) % 4) as usize;
        BandData::from_pixels(size, (0..size * size).map(|_| take(script, 2) as u16).collect())
    };
    Patch {
        meta: PatchMetadata {
            id: PatchId(take(script, 4) as u32),
            name: format!("patch_{}", take(script, 4)),
            bbox: BBox::new(-9.0, 37.0, -8.9, 37.1).unwrap(),
            labels: LabelSet::from_bits(take(script, 8)),
            country: Country::ALL[(take(script, 1) as usize) % Country::ALL.len()],
            date: date_from_script(script),
        },
        s2_bands: (0..take(script, 1) % 4).map(|_| band(script)).collect(),
        s1_bands: (0..take(script, 1) % 3).map(|_| band(script)).collect(),
    }
}

fn request_from_script(script: &mut &[u8]) -> Request {
    let id = take(script, 8);
    let body = match take(script, 1) % 7 {
        0 => RequestBody::Ping,
        1 => RequestBody::Search(query_from_script(script)),
        2 => RequestBody::SimilarTo { name: string_from_script(script), k: take(script, 2) },
        3 => RequestBody::SearchByNewExample {
            patch: Box::new(patch_from_script(script)),
            k: take(script, 2),
        },
        4 => RequestBody::Ingest {
            patches: (0..take(script, 1) % 3).map(|_| patch_from_script(script)).collect(),
        },
        5 => RequestBody::Feedback {
            text: string_from_script(script),
            category: (take(script, 1) % 2 == 1).then(|| string_from_script(script)),
        },
        _ => RequestBody::Stats,
    };
    Request { id, body }
}

fn response_from_script(script: &mut &[u8]) -> Response {
    let id = take(script, 8);
    let body = match take(script, 1) % 6 {
        0 => ResponseBody::Pong,
        1 => {
            let rows = (0..take(script, 1) % 5)
                .map(|_| ResultRow {
                    name: string_from_script(script),
                    country: string_from_script(script),
                    date: string_from_script(script),
                    labels: (0..take(script, 1) % 4).map(|_| string_from_script(script)).collect(),
                    distance: (take(script, 1) % 2 == 1).then(|| take(script, 4) as u32),
                })
                .collect();
            ResponseBody::Search(SearchPayload {
                rows,
                page_size: take(script, 1),
                label_counts: (0..take(script, 1) % 50).map(|_| take(script, 2)).collect(),
                image_count: take(script, 2),
                plan: (take(script, 1) % 2 == 1).then(|| PlanSpec {
                    index_used: (take(script, 1) % 2 == 1).then(|| string_from_script(script)),
                    scanned: take(script, 3),
                    matched: take(script, 3),
                }),
            })
        }
        2 => ResponseBody::Ingest(IngestPayload {
            metadata_docs: take(script, 2),
            image_docs: take(script, 2),
            rendered_docs: take(script, 2),
        }),
        3 => ResponseBody::Feedback { id: take(script, 8) as i64 },
        4 => ResponseBody::Stats(StatsPayload {
            queries_served: take(script, 4),
            cache_hits: take(script, 4),
            cache_misses: take(script, 4),
            cache_entries: take(script, 2),
            archive_size: take(script, 4),
            ingested_images: take(script, 2),
            shard_occupancy: (0..take(script, 1) % 9).map(|_| take(script, 3)).collect(),
        }),
        _ => ResponseBody::Error(ErrorPayload {
            code: [
                ErrorCode::UnknownImage,
                ErrorCode::Store,
                ErrorCode::CbirNotReady,
                ErrorCode::BadRequest,
                ErrorCode::Persist,
                ErrorCode::Internal,
            ][(take(script, 1) % 6) as usize],
            message: string_from_script(script),
        }),
    };
    Response { id, body }
}

fn request_frame(request: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    eq_proto::write_request(&mut buf, request).unwrap();
    buf
}

fn response_frame(response: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    eq_proto::write_response(&mut buf, response).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Requests round-trip exactly, and re-encoding the decoded message is
    /// a byte-identical fixpoint.
    #[test]
    fn request_roundtrip_is_exact(script in proptest::collection::vec(0u8..=255u8, 0..96)) {
        let request = request_from_script(&mut script.as_slice());
        let frame = request_frame(&request);
        let mut cursor = std::io::Cursor::new(&frame);
        let back = eq_proto::read_request(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(&back, &request);
        prop_assert_eq!(request_frame(&back), frame);
    }

    /// Responses round-trip exactly as well.
    #[test]
    fn response_roundtrip_is_exact(script in proptest::collection::vec(0u8..=255u8, 0..96)) {
        let response = response_from_script(&mut script.as_slice());
        let frame = response_frame(&response);
        let back = eq_proto::read_response(&mut std::io::Cursor::new(&frame))
            .unwrap()
            .expect("one frame");
        prop_assert_eq!(&back, &response);
        prop_assert_eq!(response_frame(&back), frame);
    }

    /// Truncating a request frame anywhere past the empty prefix must fail
    /// cleanly; the empty prefix is a clean EOF (`Ok(None)`), never a
    /// message.
    #[test]
    fn truncated_frames_error_cleanly(script in proptest::collection::vec(0u8..=255u8, 0..64)) {
        let request = request_from_script(&mut script.as_slice());
        let frame = request_frame(&request);
        // Sample cut points (patch-bearing frames can be sizeable).
        let stride = (frame.len() / 61).max(1);
        for cut in (0..frame.len()).step_by(stride) {
            let result = eq_proto::read_request(&mut std::io::Cursor::new(&frame[..cut]));
            match result {
                Ok(None) => prop_assert!(cut == 0, "only the empty prefix is a clean EOF"),
                Ok(Some(_)) => prop_assert!(false, "prefix of {}/{} decoded", cut, frame.len()),
                Err(_) => {}
            }
        }
    }

    /// Every single-bit flip of a frame is detected: the CRC-32 catches
    /// payload corruption, and magic/length/checksum corruption is caught
    /// structurally.  No flipped frame may ever decode as a message.
    #[test]
    fn single_bit_flips_are_always_rejected(
        script in proptest::collection::vec(0u8..=255u8, 0..64),
        flip in 0usize..1 << 20,
    ) {
        let request = request_from_script(&mut script.as_slice());
        let mut frame = request_frame(&request);
        let bit = flip % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        let result = eq_proto::read_request(&mut std::io::Cursor::new(&frame));
        prop_assert!(
            !matches!(result, Ok(Some(_))),
            "bit flip {} went undetected", bit
        );
    }

    /// A frame stream survives a corrupt *predecessor* being cut out: the
    /// reader reports the fault on the corrupt frame without consuming the
    /// following one (resynchronisation is by closing the connection, as
    /// the server does — but bytes after the reported fault are untouched).
    #[test]
    fn corruption_does_not_bleed_into_following_frames(
        script in proptest::collection::vec(0u8..=255u8, 0..48),
    ) {
        let request = request_from_script(&mut script.as_slice());
        let good = request_frame(&request);
        // Stream = [corrupted frame][good frame].
        let mut corrupted = good.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xFF;
        let mut stream = corrupted;
        stream.extend_from_slice(&good);
        let mut cursor = std::io::Cursor::new(&stream);
        prop_assert!(eq_proto::read_request(&mut cursor).is_err());
        // The reader stopped exactly at the frame boundary: the next read
        // yields the intact frame.
        let back = eq_proto::read_request(&mut cursor).unwrap().expect("second frame");
        prop_assert_eq!(back, request);
    }
}
