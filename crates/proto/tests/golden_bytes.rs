//! Golden-bytes conformance suite: the exact frame encoding of every
//! protocol message type is pinned to fixture files committed under
//! `tests/golden/`.  Any byte-layout change — reordered fields, a new
//! tag value, a different length prefix — fails these tests instead of
//! silently breaking old clients, so protocol drift across PRs is a
//! reviewed decision (regenerate with `EQ_PROTO_BLESS=1 cargo test -p
//! eq_proto --test golden_bytes`, then bump [`eq_proto::PROTOCOL_VERSION`]).
//!
//! Each fixture is checked both ways:
//! * **encode**: the canonical sample message must serialize to the exact
//!   fixture bytes,
//! * **decode**: the fixture bytes must parse back into the exact sample —
//!   so a future build can still read frames produced by this one.

use std::path::PathBuf;

use eq_bigearthnet::bands::BandData;
use eq_bigearthnet::labels::LabelSet;
use eq_bigearthnet::patch::{AcquisitionDate, Patch, PatchId, PatchMetadata, Satellite, Season};
use eq_bigearthnet::{Country, Label};
use eq_geo::{BBox, Circle, GeoShape, Point, Polygon};
use eq_proto::{
    ErrorCode, ErrorPayload, FilterStrategySpec, FilteredPayload, FilteredPlanSpec, IngestPayload,
    LabelFilterSpec, LabelOp, PlanSpec, PrefilterModeSpec, QuerySpec, ReplChunkPayload,
    ReplRecordsPayload, ReplStatePayload, Request, RequestBody, Response, ResponseBody, ResultRow,
    SearchPayload, StatsPayload,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Asserts `bytes` matches the committed fixture (or rewrites the fixture
/// when blessing).
fn check(name: &str, bytes: &[u8]) {
    let path = golden_dir().join(format!("{name}.bin"));
    if std::env::var_os("EQ_PROTO_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); regenerate with EQ_PROTO_BLESS=1")
    });
    assert_eq!(
        bytes,
        expected.as_slice(),
        "{name}: encoding drifted from the committed fixture — if intentional, \
         bless new fixtures AND bump PROTOCOL_VERSION"
    );
}

fn check_request(name: &str, request: &Request) {
    let mut bytes = Vec::new();
    eq_proto::write_request(&mut bytes, request).unwrap();
    check(name, &bytes);
    // The fixture decodes back to the exact message.
    let back = eq_proto::read_request(&mut std::io::Cursor::new(&bytes)).unwrap().unwrap();
    assert_eq!(&back, request, "{name}: fixture did not decode to the sample");
}

fn check_response(name: &str, response: &Response) {
    let mut bytes = Vec::new();
    eq_proto::write_response(&mut bytes, response).unwrap();
    check(name, &bytes);
    let back = eq_proto::read_response(&mut std::io::Cursor::new(&bytes)).unwrap().unwrap();
    assert_eq!(&back, response, "{name}: fixture did not decode to the sample");
}

/// A hand-built 2×2/1×1 patch — deliberately *not* generator output, so
/// the fixtures pin only the protocol, never the generator's internals.
fn sample_patch() -> Patch {
    Patch {
        meta: PatchMetadata {
            id: PatchId(7),
            name: "S2A_MSIL2A_20170717T100031_T29SNC_23_42".into(),
            bbox: BBox::new(-8.5, 40.0, -8.49, 40.01).unwrap(),
            labels: LabelSet::from_labels([Label::SeaAndOcean, Label::ConiferousForest]),
            country: Country::Portugal,
            date: AcquisitionDate::new(2017, 7, 17).unwrap(),
        },
        s2_bands: vec![
            BandData::from_pixels(2, vec![0, 1, 2, 3]),
            BandData::from_pixels(1, vec![65535]),
        ],
        s1_bands: vec![BandData::from_pixels(2, vec![9, 8, 7, 6])],
    }
}

fn sample_query() -> QuerySpec {
    QuerySpec {
        shape: Some(GeoShape::Rect(BBox::new(-9.5, 36.9, -6.2, 42.2).unwrap())),
        date_range: Some((
            AcquisitionDate::new(2017, 6, 1).unwrap(),
            AcquisitionDate::new(2018, 5, 31).unwrap(),
        )),
        satellites: vec![Satellite::Sentinel1, Satellite::Sentinel2],
        seasons: vec![Season::Summer, Season::Winter],
        countries: vec![Country::Portugal, Country::Finland],
        labels: Some(LabelFilterSpec {
            op: LabelOp::AtLeastAndMore,
            labels: vec![Label::SeaAndOcean, Label::ConiferousForest],
        }),
    }
}

#[test]
fn request_ping() {
    check_request("request_ping", &Request { id: 1, body: RequestBody::Ping });
}

#[test]
fn request_search_full_query() {
    check_request(
        "request_search_full_query",
        &Request { id: 0x0123_4567_89AB_CDEF, body: RequestBody::Search(sample_query()) },
    );
}

#[test]
fn request_search_empty_query() {
    check_request(
        "request_search_empty_query",
        &Request { id: 2, body: RequestBody::Search(QuerySpec::default()) },
    );
}

#[test]
fn request_search_circle_and_polygon_shapes() {
    let circle = QuerySpec {
        shape: Some(GeoShape::Circle(Circle::new(Point::new(10.5, 50.25).unwrap(), 42.0).unwrap())),
        ..QuerySpec::default()
    };
    check_request("request_search_circle", &Request { id: 3, body: RequestBody::Search(circle) });
    let polygon = QuerySpec {
        shape: Some(GeoShape::Polygon(
            Polygon::new(vec![
                Point::new(0.0, 0.0).unwrap(),
                Point::new(2.0, 0.0).unwrap(),
                Point::new(1.0, 3.0).unwrap(),
            ])
            .unwrap(),
        )),
        ..QuerySpec::default()
    };
    check_request("request_search_polygon", &Request { id: 4, body: RequestBody::Search(polygon) });
}

#[test]
fn request_similar_to() {
    check_request(
        "request_similar_to",
        &Request { id: 5, body: RequestBody::SimilarTo { name: "patch_0".into(), k: 10 } },
    );
}

#[test]
fn request_search_by_new_example() {
    check_request(
        "request_search_by_new_example",
        &Request {
            id: 6,
            body: RequestBody::SearchByNewExample { patch: Box::new(sample_patch()), k: 5 },
        },
    );
}

#[test]
fn request_ingest() {
    check_request(
        "request_ingest",
        &Request { id: 7, body: RequestBody::Ingest { patches: vec![sample_patch()] } },
    );
}

#[test]
fn request_feedback() {
    check_request(
        "request_feedback_with_category",
        &Request {
            id: 8,
            body: RequestBody::Feedback {
                text: "héllo".into(), category: Some("reaction".into())
            },
        },
    );
    check_request(
        "request_feedback_no_category",
        &Request { id: 9, body: RequestBody::Feedback { text: "plain".into(), category: None } },
    );
}

#[test]
fn request_stats() {
    check_request("request_stats", &Request { id: 10, body: RequestBody::Stats });
}

#[test]
fn request_metrics_text() {
    check_request("request_metrics_text", &Request { id: 17, body: RequestBody::MetricsText });
}

#[test]
fn request_similar_to_filtered() {
    check_request(
        "request_similar_to_filtered",
        &Request {
            id: 19,
            body: RequestBody::SimilarToFiltered {
                name: "patch_0".into(),
                k: 10,
                spec: sample_query(),
                mode: PrefilterModeSpec::Auto,
            },
        },
    );
}

#[test]
fn request_similar_within_filtered() {
    check_request(
        "request_similar_within_filtered",
        &Request {
            id: 20,
            body: RequestBody::SimilarWithinFiltered {
                name: "patch_0".into(),
                radius: 8,
                spec: QuerySpec::default(),
                mode: PrefilterModeSpec::ForceBitmap,
            },
        },
    );
}

#[test]
fn request_repl_state() {
    check_request("request_repl_state", &Request { id: 21, body: RequestBody::ReplState });
}

#[test]
fn request_repl_manifest() {
    check_request("request_repl_manifest", &Request { id: 22, body: RequestBody::ReplManifest });
}

#[test]
fn request_repl_chunk() {
    check_request(
        "request_repl_chunk",
        &Request {
            id: 23,
            body: RequestBody::ReplChunk {
                file: "chunk.000000002.images.eqc".into(),
                offset: 8_388_608,
                max_bytes: 8_388_608,
            },
        },
    );
}

#[test]
fn request_repl_pull() {
    check_request(
        "request_repl_pull",
        &Request {
            id: 24,
            body: RequestBody::ReplPull {
                replica_id: 0x00C0_FFEE,
                generation: 3,
                segment: 2,
                offset: 16,
                max_bytes: 1_048_576,
            },
        },
    );
}

#[test]
fn response_pong() {
    check_response("response_pong", &Response { id: 1, body: ResponseBody::Pong });
}

#[test]
fn response_search() {
    let mut label_counts = vec![0u64; Label::COUNT];
    label_counts[Label::SeaAndOcean.index()] = 2;
    label_counts[Label::ConiferousForest.index()] = 1;
    check_response(
        "response_search",
        &Response {
            id: 11,
            body: ResponseBody::Search(SearchPayload {
                rows: vec![
                    ResultRow {
                        name: "patch_a".into(),
                        country: "Portugal".into(),
                        date: "2017-07-17".into(),
                        labels: vec!["Sea and ocean".into(), "Coniferous forest".into()],
                        distance: Some(3),
                    },
                    ResultRow {
                        name: "patch_b".into(),
                        country: "Finland".into(),
                        date: "2018-01-02".into(),
                        labels: vec!["Sea and ocean".into()],
                        distance: None,
                    },
                ],
                page_size: 50,
                label_counts,
                image_count: 2,
                plan: Some(PlanSpec {
                    index_used: Some("country".into()),
                    scanned: 40,
                    matched: 2,
                }),
            }),
        },
    );
}

#[test]
fn response_search_empty_no_plan() {
    check_response(
        "response_search_empty",
        &Response {
            id: 12,
            body: ResponseBody::Search(SearchPayload {
                rows: vec![],
                page_size: 50,
                label_counts: vec![0; Label::COUNT],
                image_count: 0,
                plan: None,
            }),
        },
    );
}

#[test]
fn response_ingest() {
    check_response(
        "response_ingest",
        &Response {
            id: 13,
            body: ResponseBody::Ingest(IngestPayload {
                metadata_docs: 3,
                image_docs: 3,
                rendered_docs: 3,
            }),
        },
    );
}

#[test]
fn response_feedback() {
    check_response(
        "response_feedback",
        &Response { id: 14, body: ResponseBody::Feedback { id: 42 } },
    );
}

#[test]
fn response_stats() {
    check_response(
        "response_stats",
        &Response {
            id: 15,
            body: ResponseBody::Stats(StatsPayload {
                queries_served: 600,
                cache_hits: 200,
                cache_misses: 400,
                cache_entries: 37,
                archive_size: 40_000,
                ingested_images: 12,
                shard_occupancy: vec![5000, 5000, 5001, 4999],
            }),
        },
    );
}

#[test]
fn response_errors() {
    for (name, code, message) in [
        ("response_error_unknown_image", ErrorCode::UnknownImage, "ghost"),
        ("response_error_store", ErrorCode::Store, "duplicate key"),
        ("response_error_cbir_not_ready", ErrorCode::CbirNotReady, ""),
        ("response_error_bad_request", ErrorCode::BadRequest, "inverted date range"),
        ("response_error_persist", ErrorCode::Persist, "disk full"),
        ("response_error_internal", ErrorCode::Internal, "boom"),
        ("response_error_overloaded", ErrorCode::Overloaded, "per-client quota exceeded"),
        ("response_error_not_primary", ErrorCode::NotPrimary, "this server is a read replica"),
    ] {
        check_response(
            name,
            &Response {
                id: 16,
                body: ResponseBody::Error(ErrorPayload { code, message: message.into() }),
            },
        );
    }
}

#[test]
fn response_metrics_text() {
    check_response(
        "response_metrics_text",
        &Response {
            id: 18,
            body: ResponseBody::MetricsText(
                "eq_queries_served_total 600\neq_net_accepted_total 4\n".into(),
            ),
        },
    );
}

#[test]
fn response_filtered() {
    let mut label_counts = vec![0u64; Label::COUNT];
    label_counts[Label::SeaAndOcean.index()] = 1;
    check_response(
        "response_filtered",
        &Response {
            id: 25,
            body: ResponseBody::Filtered(FilteredPayload {
                search: SearchPayload {
                    rows: vec![ResultRow {
                        name: "patch_a".into(),
                        country: "Portugal".into(),
                        date: "2017-07-17".into(),
                        labels: vec!["Sea and ocean".into()],
                        distance: Some(5),
                    }],
                    page_size: 50,
                    label_counts,
                    image_count: 1,
                    plan: None,
                },
                plan: FilteredPlanSpec {
                    strategy: FilterStrategySpec::BitmapPrefilter,
                    candidates: Some(17),
                    residual: false,
                    matching: 17,
                },
            }),
        },
    );
}

#[test]
fn response_filtered_post_filter() {
    check_response(
        "response_filtered_post_filter",
        &Response {
            id: 26,
            body: ResponseBody::Filtered(FilteredPayload {
                search: SearchPayload {
                    rows: vec![],
                    page_size: 50,
                    label_counts: vec![0; Label::COUNT],
                    image_count: 0,
                    plan: None,
                },
                plan: FilteredPlanSpec {
                    strategy: FilterStrategySpec::PostFilter,
                    candidates: None,
                    residual: false,
                    matching: 3,
                },
            }),
        },
    );
}

#[test]
fn response_repl_state() {
    check_response(
        "response_repl_state",
        &Response {
            id: 27,
            body: ResponseBody::ReplState(ReplStatePayload {
                primary: true,
                attached: true,
                generation: 7,
                first_segment: 2,
                segment: 4,
                offset: 2048,
            }),
        },
    );
}

#[test]
fn response_repl_manifest() {
    check_response(
        "response_repl_manifest",
        &Response {
            id: 28,
            body: ResponseBody::ReplManifest { bytes: vec![0x45, 0x51, 0x4D, 0x41, 0x4E, 0x49] },
        },
    );
}

#[test]
fn response_repl_chunk() {
    check_response(
        "response_repl_chunk",
        &Response {
            id: 29,
            body: ResponseBody::ReplChunk(ReplChunkPayload {
                total_len: 1_048_576,
                bytes: vec![0x5A; 32],
            }),
        },
    );
}

#[test]
fn response_repl_records() {
    check_response(
        "response_repl_records",
        &Response {
            id: 30,
            body: ResponseBody::ReplRecords(ReplRecordsPayload {
                reseed: false,
                generation: 7,
                entries: vec![vec![1, 2, 3, 4, 5], vec![6, 7]],
                rotate: true,
                next_segment: 5,
                next_offset: 16,
                primary_segment: 5,
                primary_offset: 16,
            }),
        },
    );
}

#[test]
fn response_repl_records_reseed() {
    check_response(
        "response_repl_records_reseed",
        &Response {
            id: 31,
            body: ResponseBody::ReplRecords(ReplRecordsPayload {
                reseed: true,
                generation: 9,
                entries: vec![],
                rotate: false,
                next_segment: 0,
                next_offset: 0,
                primary_segment: 0,
                primary_offset: 0,
            }),
        },
    );
}

// Orphan-fixture detection lives in eq_lint's `golden` rule now: the
// referenced-name set is derived from this file's source instead of a
// hand-maintained `known` array, so adding a conformance test above
// automatically blesses its fixture name.
