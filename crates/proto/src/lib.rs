//! The EarthQube binary RPC protocol.
//!
//! The paper positions EarthQube as a multi-user service; this crate
//! defines the wire contract between a remote client and the serving
//! process — the request/response boundary everything network-facing in
//! the workspace is built on.  It deliberately contains **no sockets and
//! no server**: just message types, their byte layout, and checked
//! encode/decode over arbitrary `std::io` streams.  The TCP serving tier
//! (`NetServer`) and the blocking client (`EqClient`) live in
//! `eq_earthqube::net` and speak exclusively through this crate.
//!
//! # Frame layout
//!
//! Every message travels in one [`eq_wire::frame`] frame:
//!
//! ```text
//! frame    := magic[4] len:u32le crc32(payload):u32le payload[len]
//! payload  := version:u16 request_id:u64 tag:u8 body
//! ```
//!
//! * `magic` is direction-tagged — [`REQUEST_MAGIC`] (`"EQRQ"`) for
//!   client→server frames, [`RESPONSE_MAGIC`] (`"EQRS"`) for
//!   server→client — so a confused endpoint fails on the first frame
//!   instead of misinterpreting bytes.
//! * `version` is checked on decode; a peer from an incompatible build is
//!   rejected with a clear error, not a garbled message.
//! * `request_id` is chosen by the client and echoed verbatim in the
//!   response, which is what makes pipelining safe: a client may write N
//!   requests back-to-back and match the N responses by id.
//! * the CRC-32 plus the length prefix make every transport fault a
//!   *detected* fault: truncation, bit flips and oversized lengths all
//!   surface as typed errors (see `eq_wire::frame::FrameError`).
//!
//! # Message catalogue
//!
//! | Request ([`RequestBody`])        | Response ([`ResponseBody`])      |
//! |----------------------------------|----------------------------------|
//! | `Ping`                           | `Pong`                           |
//! | `Search(QuerySpec)`              | `Search(SearchPayload)`          |
//! | `SimilarTo { name, k }`          | `Search(SearchPayload)`          |
//! | `SearchByNewExample { patch, k }`| `Search(SearchPayload)`          |
//! | `Ingest { patches }`             | `Ingest(IngestPayload)`          |
//! | `Feedback { text, category }`    | `Feedback { id }`                |
//! | `Stats`                          | `Stats(StatsPayload)`            |
//! | `MetricsText`                    | `MetricsText(String)`            |
//! | `SimilarToFiltered { .. }`       | `Filtered(FilteredPayload)`      |
//! | `SimilarWithinFiltered { .. }`   | `Filtered(FilteredPayload)`      |
//! | `ReplState`                      | `ReplState(ReplStatePayload)`    |
//! | `ReplManifest`                   | `ReplManifest { bytes }`         |
//! | `ReplChunk { file, .. }`         | `ReplChunk(ReplChunkPayload)`    |
//! | `ReplPull { position, .. }`      | `ReplRecords(ReplRecordsPayload)`|
//! | *(any, on failure)*              | `Error(ErrorPayload)`            |
//!
//! The `Repl*` kinds are the replication plane: a read replica pulls raw
//! WAL record payloads from the primary by `(generation, segment,
//! offset)` position, seeding itself from the shipped manifest + chunk
//! files when its position is too far behind the primary's retained
//! segments (see `eq_earthqube::replicate`).
//!
//! The payload structs mirror the serving-layer types (`SearchResponse`,
//! `ServerStats`, `IngestReport`) field for field, so the conversion in
//! `eq_earthqube::net` is lossless — a remote client reconstructs results
//! byte-identical to an in-process call.  Protocol drift is guarded by the
//! golden-bytes conformance suite in `tests/golden_bytes.rs`: the encoding
//! of every message type is pinned to committed fixture files.

#![deny(missing_docs)]

use std::io::{Read, Write};

use eq_bigearthnet::patch::{AcquisitionDate, Patch, Satellite, Season};
use eq_bigearthnet::wire::{decode_patch, encode_patch};
use eq_bigearthnet::{Country, Label};
use eq_geo::{BBox, Circle, GeoShape, Point, Polygon};
use eq_wire::frame::{read_frame, write_frame, FrameError};
use eq_wire::{Reader, WireError, Writer};

/// Protocol version; bumped on any byte-layout change.  Decoders reject
/// frames carrying any other version.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame magic of client→server frames.
pub const REQUEST_MAGIC: [u8; 4] = *b"EQRQ";

/// Frame magic of server→client frames.
pub const RESPONSE_MAGIC: [u8; 4] = *b"EQRS";

/// Maximum accepted frame payload, request and response alike (64 MiB —
/// comfortably above any realistic ingest batch, far below an allocation
/// a hostile length prefix could weaponise).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Errors crossing the protocol layer: either the stream/frame failed, or
/// a frame arrived intact but its payload bytes are not a valid message.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport-level failure: I/O, torn frame, bad magic, oversized
    /// length, checksum mismatch.
    Frame(FrameError),
    /// The frame was delivered intact but its payload does not decode as a
    /// protocol message (wrong version, bad tag, corrupt field).
    Message(WireError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Frame(e) => write!(f, "{e}"),
            ProtoError::Message(e) => write!(f, "invalid protocol message: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        ProtoError::Frame(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        ProtoError::Message(e)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client→server message: a request id (echoed by the response) plus
/// the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id; the server echoes it in the matching response.
    pub id: u64,
    /// The requested operation.
    pub body: RequestBody,
}

/// The operations of the protocol (one per `QueryServer` entry point).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe; answered with [`ResponseBody::Pong`].
    Ping,
    /// Query-panel metadata search.
    Search(QuerySpec),
    /// "Retrieve similar images" for an indexed archive image.
    SimilarTo {
        /// The query image's patch name.
        name: String,
        /// Number of neighbours to retrieve.
        k: u64,
    },
    /// Query-by-new-example: the client uploads a patch to encode.
    SearchByNewExample {
        /// The uploaded patch (bands and all — this is the upload path).
        patch: Box<Patch>,
        /// Number of neighbours to retrieve.
        k: u64,
    },
    /// Append patches to the live archive through the write path.
    Ingest {
        /// The patches to ingest, in order.
        patches: Vec<Patch>,
    },
    /// Store an anonymous feedback comment.
    Feedback {
        /// The free-text comment.
        text: String,
        /// Optional category (e.g. "reaction").
        category: Option<String>,
    },
    /// Fetch a snapshot of the serving counters.
    Stats,
    /// Fetch the serving and network-tier counters rendered as
    /// Prometheus-style scrape text; answered with
    /// [`ResponseBody::MetricsText`].
    MetricsText,
    /// "Retrieve similar images", restricted to archive images matching a
    /// metadata filter; answered with [`ResponseBody::Filtered`].
    SimilarToFiltered {
        /// The query image's patch name.
        name: String,
        /// Number of neighbours to retrieve.
        k: u64,
        /// The metadata filter restricting the candidate set.
        spec: QuerySpec,
        /// Filter-execution strategy selection.
        mode: PrefilterModeSpec,
    },
    /// All filtered matches within a Hamming radius of an archive image;
    /// answered with [`ResponseBody::Filtered`].
    SimilarWithinFiltered {
        /// The query image's patch name.
        name: String,
        /// Inclusive Hamming radius.
        radius: u32,
        /// The metadata filter restricting the candidate set.
        spec: QuerySpec,
        /// Filter-execution strategy selection.
        mode: PrefilterModeSpec,
    },
    /// Replication handshake: report the server's role and durable WAL
    /// position; answered with [`ResponseBody::ReplState`].
    ReplState,
    /// Fetch the primary's current checkpoint manifest (raw file bytes);
    /// answered with [`ResponseBody::ReplManifest`].
    ReplManifest,
    /// Fetch a slice of a checkpoint chunk file named by the manifest;
    /// answered with [`ResponseBody::ReplChunk`].
    ReplChunk {
        /// Chunk file name, exactly as listed in the manifest.
        file: String,
        /// Byte offset into the chunk file.
        offset: u64,
        /// Maximum bytes to return in one response.
        max_bytes: u64,
    },
    /// Pull WAL records at and after a replica's durable position;
    /// answered with [`ResponseBody::ReplRecords`].
    ReplPull {
        /// Stable id of the pulling replica, for retention tracking.
        replica_id: u64,
        /// WAL generation the replica is following.
        generation: u32,
        /// Segment index the replica wants records from.
        segment: u32,
        /// Byte offset into that segment (first byte not yet applied).
        offset: u64,
        /// Soft cap on the summed record payload bytes in the response.
        max_bytes: u64,
    },
}

const REQ_PING: u8 = 1;
const REQ_SEARCH: u8 = 2;
const REQ_SIMILAR_TO: u8 = 3;
const REQ_NEW_EXAMPLE: u8 = 4;
const REQ_INGEST: u8 = 5;
const REQ_FEEDBACK: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_METRICS_TEXT: u8 = 8;
const REQ_SIMILAR_TO_FILTERED: u8 = 9;
const REQ_SIMILAR_WITHIN_FILTERED: u8 = 10;
const REQ_REPL_STATE: u8 = 11;
const REQ_REPL_MANIFEST: u8 = 12;
const REQ_REPL_CHUNK: u8 = 13;
const REQ_REPL_PULL: u8 = 14;

fn encode_envelope(w: &mut Writer, id: u64) {
    w.u16(PROTOCOL_VERSION);
    w.u64(id);
}

fn encode_new_example_body(w: &mut Writer, patch: &Patch, k: u64) {
    w.u8(REQ_NEW_EXAMPLE);
    encode_patch(patch, w);
    w.u64(k);
}

fn encode_ingest_body(w: &mut Writer, patches: &[Patch]) {
    w.u8(REQ_INGEST);
    w.seq_len(patches.len());
    for patch in patches {
        encode_patch(patch, w);
    }
}

/// Encodes a query-by-new-example request from a *borrowed* patch —
/// byte-identical to `Request::encode` with the same fields, without the
/// caller having to clone raster data into an owned [`RequestBody`].
pub fn encode_new_example_request(id: u64, patch: &Patch, k: u64) -> Vec<u8> {
    let mut w = Writer::new();
    encode_envelope(&mut w, id);
    encode_new_example_body(&mut w, patch, k);
    w.into_bytes()
}

/// Encodes an ingest request from *borrowed* patches — the client upload
/// hot path; byte-identical to `Request::encode` with the same fields.
pub fn encode_ingest_request(id: u64, patches: &[Patch]) -> Vec<u8> {
    let mut w = Writer::new();
    encode_envelope(&mut w, id);
    encode_ingest_body(&mut w, patches);
    w.into_bytes()
}

impl Request {
    /// Serializes the request into frame-payload bytes (version, id, tag,
    /// body — everything but the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        encode_envelope(&mut w, self.id);
        match &self.body {
            RequestBody::Ping => w.u8(REQ_PING),
            RequestBody::Search(spec) => {
                w.u8(REQ_SEARCH);
                spec.encode(&mut w);
            }
            RequestBody::SimilarTo { name, k } => {
                w.u8(REQ_SIMILAR_TO);
                w.str(name);
                w.u64(*k);
            }
            RequestBody::SearchByNewExample { patch, k } => {
                encode_new_example_body(&mut w, patch, *k)
            }
            RequestBody::Ingest { patches } => encode_ingest_body(&mut w, patches),
            RequestBody::Feedback { text, category } => {
                w.u8(REQ_FEEDBACK);
                w.str(text);
                encode_option_str(category.as_deref(), &mut w);
            }
            RequestBody::Stats => w.u8(REQ_STATS),
            RequestBody::MetricsText => w.u8(REQ_METRICS_TEXT),
            RequestBody::SimilarToFiltered { name, k, spec, mode } => {
                w.u8(REQ_SIMILAR_TO_FILTERED);
                w.str(name);
                w.u64(*k);
                spec.encode(&mut w);
                mode.encode(&mut w);
            }
            RequestBody::SimilarWithinFiltered { name, radius, spec, mode } => {
                w.u8(REQ_SIMILAR_WITHIN_FILTERED);
                w.str(name);
                w.u32(*radius);
                spec.encode(&mut w);
                mode.encode(&mut w);
            }
            RequestBody::ReplState => w.u8(REQ_REPL_STATE),
            RequestBody::ReplManifest => w.u8(REQ_REPL_MANIFEST),
            RequestBody::ReplChunk { file, offset, max_bytes } => {
                w.u8(REQ_REPL_CHUNK);
                w.str(file);
                w.u64(*offset);
                w.u64(*max_bytes);
            }
            RequestBody::ReplPull { replica_id, generation, segment, offset, max_bytes } => {
                w.u8(REQ_REPL_PULL);
                w.u64(*replica_id);
                w.u32(*generation);
                w.u32(*segment);
                w.u64(*offset);
                w.u64(*max_bytes);
            }
        }
        w.into_bytes()
    }

    /// Decodes frame-payload bytes into a request.
    ///
    /// # Errors
    /// Returns [`WireError`] on a version mismatch, an unknown tag, corrupt
    /// fields or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let id = decode_envelope(&mut r)?;
        let body = match r.u8()? {
            REQ_PING => RequestBody::Ping,
            REQ_SEARCH => RequestBody::Search(QuerySpec::decode(&mut r)?),
            REQ_SIMILAR_TO => RequestBody::SimilarTo { name: r.str()?.to_string(), k: r.u64()? },
            REQ_NEW_EXAMPLE => RequestBody::SearchByNewExample {
                patch: Box::new(decode_patch(&mut r)?),
                k: r.u64()?,
            },
            REQ_INGEST => {
                // An encoded patch is at least metadata + two sequence
                // lengths; 30 bytes is a safe floor bounding preallocation.
                let n = r.seq_len(30)?;
                let patches =
                    (0..n).map(|_| decode_patch(&mut r)).collect::<Result<Vec<_>, _>>()?;
                RequestBody::Ingest { patches }
            }
            REQ_FEEDBACK => RequestBody::Feedback {
                text: r.str()?.to_string(),
                category: decode_option_str(&mut r)?,
            },
            REQ_STATS => RequestBody::Stats,
            REQ_METRICS_TEXT => RequestBody::MetricsText,
            REQ_SIMILAR_TO_FILTERED => RequestBody::SimilarToFiltered {
                name: r.str()?.to_string(),
                k: r.u64()?,
                spec: QuerySpec::decode(&mut r)?,
                mode: PrefilterModeSpec::decode(&mut r)?,
            },
            REQ_SIMILAR_WITHIN_FILTERED => RequestBody::SimilarWithinFiltered {
                name: r.str()?.to_string(),
                radius: r.u32()?,
                spec: QuerySpec::decode(&mut r)?,
                mode: PrefilterModeSpec::decode(&mut r)?,
            },
            REQ_REPL_STATE => RequestBody::ReplState,
            REQ_REPL_MANIFEST => RequestBody::ReplManifest,
            REQ_REPL_CHUNK => RequestBody::ReplChunk {
                file: r.str()?.to_string(),
                offset: r.u64()?,
                max_bytes: r.u64()?,
            },
            REQ_REPL_PULL => RequestBody::ReplPull {
                replica_id: r.u64()?,
                generation: r.u32()?,
                segment: r.u32()?,
                offset: r.u64()?,
                max_bytes: r.u64()?,
            },
            other => return Err(WireError::Corrupt(format!("unknown request tag {other}"))),
        };
        expect_empty(&r)?;
        Ok(Self { id, body })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One server→client message: the echoed request id plus the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// The outcome.
    pub body: ResponseBody,
}

/// The response payloads of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Answer to [`RequestBody::Ping`].
    Pong,
    /// Answer to the three search request kinds.
    Search(SearchPayload),
    /// Answer to [`RequestBody::Ingest`].
    Ingest(IngestPayload),
    /// Answer to [`RequestBody::Feedback`]: the stored entry's id.
    Feedback {
        /// Sequential feedback id assigned by the server.
        id: i64,
    },
    /// Answer to [`RequestBody::Stats`].
    Stats(StatsPayload),
    /// The request failed; carries the server-side error.
    Error(ErrorPayload),
    /// Answer to [`RequestBody::MetricsText`]: the scrape text, one
    /// `name value` metric per line (Prometheus text exposition style).
    MetricsText(String),
    /// Answer to the filtered similarity request kinds: the result panel
    /// plus the filter-execution plan report.
    Filtered(FilteredPayload),
    /// Answer to [`RequestBody::ReplState`].
    ReplState(ReplStatePayload),
    /// Answer to [`RequestBody::ReplManifest`]: the manifest file's raw
    /// bytes (decodable with `eq_wire::manifest::decode_manifest`).
    ReplManifest {
        /// The manifest file bytes.
        bytes: Vec<u8>,
    },
    /// Answer to [`RequestBody::ReplChunk`].
    ReplChunk(ReplChunkPayload),
    /// Answer to [`RequestBody::ReplPull`].
    ReplRecords(ReplRecordsPayload),
}

const RESP_PONG: u8 = 1;
const RESP_SEARCH: u8 = 2;
const RESP_INGEST: u8 = 3;
const RESP_FEEDBACK: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_METRICS_TEXT: u8 = 7;
const RESP_FILTERED: u8 = 8;
const RESP_REPL_STATE: u8 = 9;
const RESP_REPL_MANIFEST: u8 = 10;
const RESP_REPL_CHUNK: u8 = 11;
const RESP_REPL_RECORDS: u8 = 12;

impl Response {
    /// Serializes the response into frame-payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(PROTOCOL_VERSION);
        w.u64(self.id);
        match &self.body {
            ResponseBody::Pong => w.u8(RESP_PONG),
            ResponseBody::Search(payload) => {
                w.u8(RESP_SEARCH);
                payload.encode(&mut w);
            }
            ResponseBody::Ingest(payload) => {
                w.u8(RESP_INGEST);
                payload.encode(&mut w);
            }
            ResponseBody::Feedback { id } => {
                w.u8(RESP_FEEDBACK);
                w.i64(*id);
            }
            ResponseBody::Stats(payload) => {
                w.u8(RESP_STATS);
                payload.encode(&mut w);
            }
            ResponseBody::Error(payload) => {
                w.u8(RESP_ERROR);
                payload.encode(&mut w);
            }
            ResponseBody::MetricsText(text) => {
                w.u8(RESP_METRICS_TEXT);
                w.str(text);
            }
            ResponseBody::Filtered(payload) => {
                w.u8(RESP_FILTERED);
                payload.encode(&mut w);
            }
            ResponseBody::ReplState(payload) => {
                w.u8(RESP_REPL_STATE);
                payload.encode(&mut w);
            }
            ResponseBody::ReplManifest { bytes } => {
                w.u8(RESP_REPL_MANIFEST);
                w.bytes(bytes);
            }
            ResponseBody::ReplChunk(payload) => {
                w.u8(RESP_REPL_CHUNK);
                payload.encode(&mut w);
            }
            ResponseBody::ReplRecords(payload) => {
                w.u8(RESP_REPL_RECORDS);
                payload.encode(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Decodes frame-payload bytes into a response.
    ///
    /// # Errors
    /// Returns [`WireError`] on a version mismatch, an unknown tag, corrupt
    /// fields or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let id = decode_envelope(&mut r)?;
        let body = match r.u8()? {
            RESP_PONG => ResponseBody::Pong,
            RESP_SEARCH => ResponseBody::Search(SearchPayload::decode(&mut r)?),
            RESP_INGEST => ResponseBody::Ingest(IngestPayload::decode(&mut r)?),
            RESP_FEEDBACK => ResponseBody::Feedback { id: r.i64()? },
            RESP_STATS => ResponseBody::Stats(StatsPayload::decode(&mut r)?),
            RESP_ERROR => ResponseBody::Error(ErrorPayload::decode(&mut r)?),
            RESP_METRICS_TEXT => ResponseBody::MetricsText(r.str()?.to_string()),
            RESP_FILTERED => ResponseBody::Filtered(FilteredPayload::decode(&mut r)?),
            RESP_REPL_STATE => ResponseBody::ReplState(ReplStatePayload::decode(&mut r)?),
            RESP_REPL_MANIFEST => ResponseBody::ReplManifest { bytes: r.bytes()?.to_vec() },
            RESP_REPL_CHUNK => ResponseBody::ReplChunk(ReplChunkPayload::decode(&mut r)?),
            RESP_REPL_RECORDS => ResponseBody::ReplRecords(ReplRecordsPayload::decode(&mut r)?),
            other => return Err(WireError::Corrupt(format!("unknown response tag {other}"))),
        };
        expect_empty(&r)?;
        Ok(Self { id, body })
    }
}

/// Reads and checks the shared envelope prefix (version, request id).
fn decode_envelope(r: &mut Reader<'_>) -> Result<u64, WireError> {
    let version = r.u16()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::Corrupt(format!(
            "protocol version {version} (this build speaks {PROTOCOL_VERSION})"
        )));
    }
    r.u64()
}

fn expect_empty(r: &Reader<'_>) -> Result<(), WireError> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(WireError::Corrupt(format!("{} trailing bytes after the message", r.remaining())))
    }
}

// ---------------------------------------------------------------------------
// Query specification
// ---------------------------------------------------------------------------

/// The label-filter operators, mirroring `eq_earthqube::LabelOperator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelOp {
    /// At least one of the selected labels.
    Some,
    /// Exactly the selected labels.
    Exactly,
    /// All the selected labels and possibly more.
    AtLeastAndMore,
}

/// A label filter: operator plus selected CLC Level-3 labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelFilterSpec {
    /// The operator.
    pub op: LabelOp,
    /// The selected labels.
    pub labels: Vec<Label>,
}

/// The query-panel request as it crosses the wire, mirroring
/// `eq_earthqube::ImageQuery` field for field.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySpec {
    /// Geospatial restriction.
    pub shape: Option<GeoShape>,
    /// Acquisition-date range, inclusive on both ends.
    pub date_range: Option<(AcquisitionDate, AcquisitionDate)>,
    /// Satellites of interest.
    pub satellites: Vec<Satellite>,
    /// Seasons of interest (empty = all).
    pub seasons: Vec<Season>,
    /// Countries of interest (empty = all).
    pub countries: Vec<Country>,
    /// Label filter; `None` = no label filtering.
    pub labels: Option<LabelFilterSpec>,
}

impl QuerySpec {
    /// Encodes the query specification.
    pub fn encode(&self, w: &mut Writer) {
        match &self.shape {
            None => w.u8(0),
            Some(shape) => {
                w.u8(1);
                encode_geo_shape(shape, w);
            }
        }
        match &self.date_range {
            None => w.u8(0),
            Some((from, to)) => {
                w.u8(1);
                encode_date(*from, w);
                encode_date(*to, w);
            }
        }
        w.seq_len(self.satellites.len());
        for sat in &self.satellites {
            w.u8(match sat {
                Satellite::Sentinel1 => 1,
                Satellite::Sentinel2 => 2,
            });
        }
        w.seq_len(self.seasons.len());
        for season in &self.seasons {
            w.u8(match season {
                Season::Spring => 1,
                Season::Summer => 2,
                Season::Autumn => 3,
                Season::Winter => 4,
            });
        }
        w.seq_len(self.countries.len());
        for country in &self.countries {
            w.str(country.name());
        }
        match &self.labels {
            None => w.u8(0),
            Some(filter) => {
                w.u8(1);
                w.u8(match filter.op {
                    LabelOp::Some => 1,
                    LabelOp::Exactly => 2,
                    LabelOp::AtLeastAndMore => 3,
                });
                w.seq_len(filter.labels.len());
                for label in &filter.labels {
                    w.u16(label.index() as u16);
                }
            }
        }
    }

    /// Decodes a query specification.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or corrupt fields.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shape = match r.bool()? {
            false => None,
            true => Some(decode_geo_shape(r)?),
        };
        let date_range = match r.bool()? {
            false => None,
            true => Some((decode_date(r)?, decode_date(r)?)),
        };
        let n = r.seq_len(1)?;
        let satellites = (0..n)
            .map(|_| match r.u8()? {
                1 => Ok(Satellite::Sentinel1),
                2 => Ok(Satellite::Sentinel2),
                other => Err(WireError::Corrupt(format!("unknown satellite tag {other}"))),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let n = r.seq_len(1)?;
        let seasons = (0..n)
            .map(|_| match r.u8()? {
                1 => Ok(Season::Spring),
                2 => Ok(Season::Summer),
                3 => Ok(Season::Autumn),
                4 => Ok(Season::Winter),
                other => Err(WireError::Corrupt(format!("unknown season tag {other}"))),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let n = r.seq_len(4)?;
        let countries = (0..n)
            .map(|_| {
                let name = r.str()?;
                Country::from_name(name)
                    .ok_or_else(|| WireError::Corrupt(format!("unknown country {name:?}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let labels = match r.bool()? {
            false => None,
            true => {
                let op = match r.u8()? {
                    1 => LabelOp::Some,
                    2 => LabelOp::Exactly,
                    3 => LabelOp::AtLeastAndMore,
                    other => {
                        return Err(WireError::Corrupt(format!(
                            "unknown label operator tag {other}"
                        )))
                    }
                };
                let n = r.seq_len(2)?;
                let labels = (0..n)
                    .map(|_| {
                        let idx = r.u16()? as usize;
                        Label::from_index(idx).ok_or_else(|| {
                            WireError::Corrupt(format!("label index {idx} out of range"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(LabelFilterSpec { op, labels })
            }
        };
        Ok(Self { shape, date_range, satellites, seasons, countries, labels })
    }
}

fn encode_date(date: AcquisitionDate, w: &mut Writer) {
    w.u16(date.year);
    w.u8(date.month);
    w.u8(date.day);
}

fn decode_date(r: &mut Reader<'_>) -> Result<AcquisitionDate, WireError> {
    let (year, month, day) = (r.u16()?, r.u8()?, r.u8()?);
    AcquisitionDate::new(year, month, day)
        .ok_or_else(|| WireError::Corrupt(format!("invalid date {year}-{month}-{day}")))
}

const SHAPE_RECT: u8 = 1;
const SHAPE_CIRCLE: u8 = 2;
const SHAPE_POLYGON: u8 = 3;

fn encode_geo_shape(shape: &GeoShape, w: &mut Writer) {
    match shape {
        GeoShape::Rect(bbox) => {
            w.u8(SHAPE_RECT);
            w.f64(bbox.min_lon);
            w.f64(bbox.min_lat);
            w.f64(bbox.max_lon);
            w.f64(bbox.max_lat);
        }
        GeoShape::Circle(circle) => {
            w.u8(SHAPE_CIRCLE);
            w.f64(circle.center.lon);
            w.f64(circle.center.lat);
            w.f64(circle.radius_km);
        }
        GeoShape::Polygon(polygon) => {
            w.u8(SHAPE_POLYGON);
            w.seq_len(polygon.vertices().len());
            for v in polygon.vertices() {
                w.f64(v.lon);
                w.f64(v.lat);
            }
        }
    }
}

fn decode_geo_shape(r: &mut Reader<'_>) -> Result<GeoShape, WireError> {
    let geo = |e: eq_geo::GeoError| WireError::Corrupt(format!("invalid query shape: {e}"));
    match r.u8()? {
        SHAPE_RECT => {
            let (min_lon, min_lat, max_lon, max_lat) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
            Ok(GeoShape::Rect(BBox::new(min_lon, min_lat, max_lon, max_lat).map_err(geo)?))
        }
        SHAPE_CIRCLE => {
            let center = Point::new(r.f64()?, r.f64()?).map_err(geo)?;
            Ok(GeoShape::Circle(Circle::new(center, r.f64()?).map_err(geo)?))
        }
        SHAPE_POLYGON => {
            let n = r.seq_len(16)?;
            let vertices = (0..n)
                .map(|_| Point::new(r.f64()?, r.f64()?).map_err(geo))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(GeoShape::Polygon(Polygon::new(vertices).map_err(geo)?))
        }
        other => Err(WireError::Corrupt(format!("unknown shape tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Result payloads
// ---------------------------------------------------------------------------

/// One row of the result panel as it crosses the wire, mirroring
/// `eq_earthqube::ResultEntry`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRow {
    /// Patch name.
    pub name: String,
    /// Country of acquisition (display name).
    pub country: String,
    /// Acquisition date (ISO `YYYY-MM-DD`).
    pub date: String,
    /// Full label names.
    pub labels: Vec<String>,
    /// Hamming distance to the query (similarity searches only).
    pub distance: Option<u32>,
}

/// The planner report of a metadata search, mirroring
/// `eq_docstore`'s `QueryPlan`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpec {
    /// The index that drove the scan, or `None` for a full scan.
    pub index_used: Option<String>,
    /// Candidate documents examined.
    pub scanned: u64,
    /// Documents that matched.
    pub matched: u64,
}

/// A full search response as it crosses the wire, mirroring
/// `eq_earthqube::SearchResponse` (result panel, label statistics, plan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchPayload {
    /// All result rows, in rank order (the full panel, not one page).
    pub rows: Vec<ResultRow>,
    /// The result panel's page size.
    pub page_size: u64,
    /// Per-label occurrence counts, indexed by `Label::index`.
    pub label_counts: Vec<u64>,
    /// Number of images the statistics cover.
    pub image_count: u64,
    /// Planner report (`None` for pure CBIR responses).
    pub plan: Option<PlanSpec>,
}

impl SearchPayload {
    /// Encodes the search payload.
    pub fn encode(&self, w: &mut Writer) {
        w.seq_len(self.rows.len());
        for row in &self.rows {
            w.str(&row.name);
            w.str(&row.country);
            w.str(&row.date);
            w.seq_len(row.labels.len());
            for label in &row.labels {
                w.str(label);
            }
            match row.distance {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.u32(d);
                }
            }
        }
        w.u64(self.page_size);
        w.seq_len(self.label_counts.len());
        for &count in &self.label_counts {
            w.u64(count);
        }
        w.u64(self.image_count);
        match &self.plan {
            None => w.u8(0),
            Some(plan) => {
                w.u8(1);
                encode_option_str(plan.index_used.as_deref(), w);
                w.u64(plan.scanned);
                w.u64(plan.matched);
            }
        }
    }

    /// Decodes a search payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or corrupt fields.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(14)?;
        let rows = (0..n)
            .map(|_| {
                let name = r.str()?.to_string();
                let country = r.str()?.to_string();
                let date = r.str()?.to_string();
                let n_labels = r.seq_len(4)?;
                let labels = (0..n_labels)
                    .map(|_| Ok(r.str()?.to_string()))
                    .collect::<Result<Vec<_>, WireError>>()?;
                let distance = match r.bool()? {
                    false => None,
                    true => Some(r.u32()?),
                };
                Ok(ResultRow { name, country, date, labels, distance })
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        let page_size = r.u64()?;
        let n = r.seq_len(8)?;
        let label_counts = (0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
        let image_count = r.u64()?;
        let plan = match r.bool()? {
            false => None,
            true => Some(PlanSpec {
                index_used: decode_option_str(r)?,
                scanned: r.u64()?,
                matched: r.u64()?,
            }),
        };
        Ok(Self { rows, page_size, label_counts, image_count, plan })
    }
}

/// An ingest summary as it crosses the wire, mirroring
/// `eq_earthqube::IngestReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestPayload {
    /// Metadata documents written.
    pub metadata_docs: u64,
    /// Image-data documents written.
    pub image_docs: u64,
    /// Rendered-image documents written.
    pub rendered_docs: u64,
}

impl IngestPayload {
    /// Encodes the ingest payload.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.metadata_docs);
        w.u64(self.image_docs);
        w.u64(self.rendered_docs);
    }

    /// Decodes an ingest payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self { metadata_docs: r.u64()?, image_docs: r.u64()?, rendered_docs: r.u64()? })
    }
}

/// A serving-counter snapshot as it crosses the wire, mirroring
/// `eq_earthqube::ServerStats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsPayload {
    /// Total queries attempted.
    pub queries_served: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries computed on a cache miss.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Images currently indexed.
    pub archive_size: u64,
    /// Images appended through live ingest.
    pub ingested_images: u64,
    /// Items per CBIR index shard, in shard order.
    pub shard_occupancy: Vec<u64>,
}

impl StatsPayload {
    /// Encodes the stats payload.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.queries_served);
        w.u64(self.cache_hits);
        w.u64(self.cache_misses);
        w.u64(self.cache_entries);
        w.u64(self.archive_size);
        w.u64(self.ingested_images);
        w.seq_len(self.shard_occupancy.len());
        for &n in &self.shard_occupancy {
            w.u64(n);
        }
    }

    /// Decodes a stats payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let queries_served = r.u64()?;
        let cache_hits = r.u64()?;
        let cache_misses = r.u64()?;
        let cache_entries = r.u64()?;
        let archive_size = r.u64()?;
        let ingested_images = r.u64()?;
        let n = r.seq_len(8)?;
        let shard_occupancy = (0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            queries_served,
            cache_hits,
            cache_misses,
            cache_entries,
            archive_size,
            ingested_images,
            shard_occupancy,
        })
    }
}

// ---------------------------------------------------------------------------
// Filtered similarity search
// ---------------------------------------------------------------------------

/// Filter-execution strategy selection, mirroring
/// `eq_earthqube::PrefilterMode`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PrefilterModeSpec {
    /// Let the planner choose by filter selectivity.
    #[default]
    Auto,
    /// Always evaluate the filter first and scan only matching items.
    ForceBitmap,
    /// Always run plain CBIR and filter the ranked results afterwards.
    ForcePostFilter,
}

impl PrefilterModeSpec {
    /// Encodes the mode tag.
    pub fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            PrefilterModeSpec::Auto => 1,
            PrefilterModeSpec::ForceBitmap => 2,
            PrefilterModeSpec::ForcePostFilter => 3,
        });
    }

    /// Decodes the mode tag.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or an unknown tag.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            1 => Ok(PrefilterModeSpec::Auto),
            2 => Ok(PrefilterModeSpec::ForceBitmap),
            3 => Ok(PrefilterModeSpec::ForcePostFilter),
            other => Err(WireError::Corrupt(format!("unknown prefilter mode tag {other}"))),
        }
    }
}

/// The strategy a filtered search actually executed, mirroring
/// `eq_earthqube::FilterStrategy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterStrategySpec {
    /// The filter ran first; only matching items were scanned.
    BitmapPrefilter,
    /// Plain CBIR ran first; results were filtered afterwards.
    PostFilter,
}

/// The filtered-search plan report as it crosses the wire, mirroring
/// `eq_earthqube::FilteredPlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilteredPlanSpec {
    /// The strategy that executed.
    pub strategy: FilterStrategySpec,
    /// Candidates scanned under the bitmap strategy (`None` for
    /// post-filtering, which scans the whole index).
    pub candidates: Option<u64>,
    /// Whether a post-filter residual pass still ran (bitmap strategy
    /// falling back for unindexed predicates).
    pub residual: bool,
    /// Archive items matching the metadata filter.
    pub matching: u64,
}

/// A filtered similarity response: the result panel plus the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilteredPayload {
    /// The result panel, label statistics and (CBIR) distances.
    pub search: SearchPayload,
    /// How the filter was executed.
    pub plan: FilteredPlanSpec,
}

impl FilteredPayload {
    /// Encodes the filtered payload.
    pub fn encode(&self, w: &mut Writer) {
        self.search.encode(w);
        w.u8(match self.plan.strategy {
            FilterStrategySpec::BitmapPrefilter => 1,
            FilterStrategySpec::PostFilter => 2,
        });
        match self.plan.candidates {
            None => w.u8(0),
            Some(n) => {
                w.u8(1);
                w.u64(n);
            }
        }
        w.bool(self.plan.residual);
        w.u64(self.plan.matching);
    }

    /// Decodes a filtered payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or corrupt fields.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let search = SearchPayload::decode(r)?;
        let strategy = match r.u8()? {
            1 => FilterStrategySpec::BitmapPrefilter,
            2 => FilterStrategySpec::PostFilter,
            other => {
                return Err(WireError::Corrupt(format!("unknown filter strategy tag {other}")))
            }
        };
        let candidates = match r.bool()? {
            false => None,
            true => Some(r.u64()?),
        };
        let residual = r.bool()?;
        let matching = r.u64()?;
        Ok(Self { search, plan: FilteredPlanSpec { strategy, candidates, residual, matching } })
    }
}

// ---------------------------------------------------------------------------
// Replication plane
// ---------------------------------------------------------------------------

/// A server's replication role and durable WAL position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplStatePayload {
    /// Whether this server accepts writes.
    pub primary: bool,
    /// Whether the server is attached to a durable directory (the
    /// position fields are zero and meaningless when `false`).
    pub attached: bool,
    /// WAL generation of the current lineage.
    pub generation: u32,
    /// First segment of the current lineage (older segments may already
    /// be retired).
    pub first_segment: u32,
    /// Segment currently appended to.
    pub segment: u32,
    /// Byte length of that segment (header included).
    pub offset: u64,
}

impl ReplStatePayload {
    /// Encodes the state payload.
    pub fn encode(&self, w: &mut Writer) {
        w.bool(self.primary);
        w.bool(self.attached);
        w.u32(self.generation);
        w.u32(self.first_segment);
        w.u32(self.segment);
        w.u64(self.offset);
    }

    /// Decodes a state payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            primary: r.bool()?,
            attached: r.bool()?,
            generation: r.u32()?,
            first_segment: r.u32()?,
            segment: r.u32()?,
            offset: r.u64()?,
        })
    }
}

/// One slice of a checkpoint chunk file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplChunkPayload {
    /// Total size of the chunk file, so the fetcher knows when it has
    /// everything.
    pub total_len: u64,
    /// The bytes at the requested offset (may be shorter than asked).
    pub bytes: Vec<u8>,
}

impl ReplChunkPayload {
    /// Encodes the chunk payload.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.total_len);
        w.bytes(&self.bytes);
    }

    /// Decodes a chunk payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self { total_len: r.u64()?, bytes: r.bytes()?.to_vec() })
    }
}

/// A batch of WAL records pulled from the primary.
///
/// `entries` holds raw record *payloads* (the bytes inside the WAL frame,
/// exactly as `eq_earthqube` wrote them); the replica re-frames them into
/// its own mirrored WAL, which keeps both logs byte-identical
/// position-for-position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplRecordsPayload {
    /// The replica's position is unserviceable (wrong generation, or its
    /// segment was already retired): it must discard local state and
    /// re-seed from the primary's snapshot.  All other fields except
    /// `generation` are zero/empty.
    pub reseed: bool,
    /// The primary's current WAL generation.
    pub generation: u32,
    /// Raw WAL record payloads, in log order.
    pub entries: Vec<Vec<u8>>,
    /// The pulled segment is sealed and fully consumed by this batch: the
    /// replica rotates to `next_segment` after applying.
    pub rotate: bool,
    /// Segment to pull from next.
    pub next_segment: u32,
    /// Offset to pull from next.
    pub next_offset: u64,
    /// The primary's live segment index, for lag measurement.
    pub primary_segment: u32,
    /// The primary's live segment length, for lag measurement.
    pub primary_offset: u64,
}

impl ReplRecordsPayload {
    /// Encodes the records payload.
    pub fn encode(&self, w: &mut Writer) {
        w.bool(self.reseed);
        w.u32(self.generation);
        w.seq_len(self.entries.len());
        for entry in &self.entries {
            w.bytes(entry);
        }
        w.bool(self.rotate);
        w.u32(self.next_segment);
        w.u64(self.next_offset);
        w.u32(self.primary_segment);
        w.u64(self.primary_offset);
    }

    /// Decodes a records payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let reseed = r.bool()?;
        let generation = r.u32()?;
        let n = r.seq_len(4)?;
        let entries =
            (0..n).map(|_| Ok(r.bytes()?.to_vec())).collect::<Result<Vec<_>, WireError>>()?;
        Ok(Self {
            reseed,
            generation,
            entries,
            rotate: r.bool()?,
            next_segment: r.u32()?,
            next_offset: r.u64()?,
            primary_segment: r.u32()?,
            primary_offset: r.u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Errors over the wire
// ---------------------------------------------------------------------------

/// Error categories, mirroring `eq_earthqube::EarthQubeError` so a remote
/// client can reconstruct the exact server-side error variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A referenced image does not exist.
    UnknownImage,
    /// The document store failed.
    Store,
    /// The CBIR service is not built.
    CbirNotReady,
    /// The request was malformed.
    BadRequest,
    /// The durable storage tier failed.
    Persist,
    /// Any other server-side failure.
    Internal,
    /// The server shed this request under load (per-client quota or
    /// worker-queue backpressure); the connection stays usable and the
    /// client may retry later.
    Overloaded,
    /// A write reached a read replica; the client should re-discover the
    /// primary and retry there.
    NotPrimary,
}

/// A server-side error as it crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorPayload {
    /// The error category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorPayload {
    /// Encodes the error payload.
    pub fn encode(&self, w: &mut Writer) {
        w.u8(match self.code {
            ErrorCode::UnknownImage => 1,
            ErrorCode::Store => 2,
            ErrorCode::CbirNotReady => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::Persist => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Overloaded => 7,
            ErrorCode::NotPrimary => 8,
        });
        w.str(&self.message);
    }

    /// Decodes an error payload.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or an unknown code.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let code = match r.u8()? {
            1 => ErrorCode::UnknownImage,
            2 => ErrorCode::Store,
            3 => ErrorCode::CbirNotReady,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Persist,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Overloaded,
            8 => ErrorCode::NotPrimary,
            other => return Err(WireError::Corrupt(format!("unknown error code {other}"))),
        };
        Ok(Self { code, message: r.str()?.to_string() })
    }
}

fn encode_option_str(value: Option<&str>, w: &mut Writer) {
    match value {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            w.str(s);
        }
    }
}

fn decode_option_str(r: &mut Reader<'_>) -> Result<Option<String>, WireError> {
    Ok(match r.bool()? {
        false => None,
        true => Some(r.str()?.to_string()),
    })
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

/// Enforces [`MAX_FRAME_LEN`] on the *sending* side: every reader rejects
/// larger frames, so emitting one would only fail at the peer with an
/// opaque transport error instead of a clear local one.
fn check_outgoing(payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(ProtoError::Frame(FrameError::Oversized {
            declared: payload.len() as u64,
            max: MAX_FRAME_LEN as u64,
        }));
    }
    Ok(())
}

/// Writes one request frame to the stream.
///
/// # Errors
/// Returns [`ProtoError::Frame`] on I/O failure or a message exceeding
/// [`MAX_FRAME_LEN`] (which no peer would accept).
pub fn write_request<W: Write>(w: &mut W, request: &Request) -> Result<(), ProtoError> {
    write_request_payload(w, &request.encode())
}

/// Writes pre-encoded request payload bytes (from [`Request::encode`],
/// [`encode_ingest_request`] or [`encode_new_example_request`]) as one
/// request frame.
///
/// # Errors
/// Returns [`ProtoError::Frame`] on I/O failure or a payload exceeding
/// [`MAX_FRAME_LEN`].
pub fn write_request_payload<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtoError> {
    check_outgoing(payload)?;
    write_frame(w, &REQUEST_MAGIC, payload)?;
    Ok(())
}

/// Reads one request frame; `Ok(None)` means the peer closed the stream
/// cleanly on a frame boundary.
///
/// # Errors
/// Returns [`ProtoError`] on transport faults or an invalid message.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, ProtoError> {
    match read_frame(r, &REQUEST_MAGIC, MAX_FRAME_LEN)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Request::decode(&payload)?)),
    }
}

/// Writes one response frame to the stream.
///
/// # Errors
/// Returns [`ProtoError::Frame`] on I/O failure or a message exceeding
/// [`MAX_FRAME_LEN`] (which no peer would accept).
pub fn write_response<W: Write>(w: &mut W, response: &Response) -> Result<(), ProtoError> {
    let payload = response.encode();
    check_outgoing(&payload)?;
    write_frame(w, &RESPONSE_MAGIC, &payload)?;
    Ok(())
}

/// Reads one response frame; `Ok(None)` means the server closed the stream
/// cleanly on a frame boundary.
///
/// # Errors
/// Returns [`ProtoError`] on transport faults or an invalid message.
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<Response>, ProtoError> {
    match read_frame(r, &RESPONSE_MAGIC, MAX_FRAME_LEN)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Response::decode(&payload)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};

    fn sample_query() -> QuerySpec {
        QuerySpec {
            shape: Some(GeoShape::Rect(BBox::new(-9.5, 36.9, -6.2, 42.2).unwrap())),
            date_range: Some((
                AcquisitionDate::new(2017, 6, 1).unwrap(),
                AcquisitionDate::new(2018, 5, 31).unwrap(),
            )),
            satellites: vec![Satellite::Sentinel2],
            seasons: vec![Season::Summer, Season::Winter],
            countries: vec![Country::Portugal, Country::Finland],
            labels: Some(LabelFilterSpec {
                op: LabelOp::AtLeastAndMore,
                labels: vec![Label::SeaAndOcean, Label::ConiferousForest],
            }),
        }
    }

    fn roundtrip_request(request: &Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, request).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_request(&mut cursor).unwrap().unwrap();
        assert_eq!(&back, request);
        assert!(read_request(&mut cursor).unwrap().is_none(), "clean EOF after one frame");
    }

    fn roundtrip_response(response: &Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, response).unwrap();
        let back = read_response(&mut std::io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(&back, response);
    }

    #[test]
    fn every_request_kind_roundtrips() {
        let patch = ArchiveGenerator::new(GeneratorConfig::tiny(1, 5)).unwrap().generate_patch(0);
        let requests = vec![
            Request { id: 0, body: RequestBody::Ping },
            Request { id: 1, body: RequestBody::Search(sample_query()) },
            Request { id: 2, body: RequestBody::Search(QuerySpec::default()) },
            Request { id: 3, body: RequestBody::SimilarTo { name: "patch_x".into(), k: 9 } },
            Request {
                id: 4,
                body: RequestBody::SearchByNewExample { patch: Box::new(patch.clone()), k: 5 },
            },
            Request { id: 5, body: RequestBody::Ingest { patches: vec![patch.clone(), patch] } },
            Request {
                id: 6,
                body: RequestBody::Feedback { text: "nice".into(), category: Some("r".into()) },
            },
            Request { id: 7, body: RequestBody::Feedback { text: "…".into(), category: None } },
            Request { id: u64::MAX, body: RequestBody::Stats },
            Request { id: 8, body: RequestBody::MetricsText },
            Request {
                id: 9,
                body: RequestBody::SimilarToFiltered {
                    name: "patch_y".into(),
                    k: 12,
                    spec: sample_query(),
                    mode: PrefilterModeSpec::Auto,
                },
            },
            Request {
                id: 10,
                body: RequestBody::SimilarWithinFiltered {
                    name: "patch_z".into(),
                    radius: 6,
                    spec: QuerySpec::default(),
                    mode: PrefilterModeSpec::ForcePostFilter,
                },
            },
            Request { id: 11, body: RequestBody::ReplState },
            Request { id: 12, body: RequestBody::ReplManifest },
            Request {
                id: 13,
                body: RequestBody::ReplChunk {
                    file: "chunk.0001.static.eqc".into(),
                    offset: 4096,
                    max_bytes: 1 << 22,
                },
            },
            Request {
                id: 14,
                body: RequestBody::ReplPull {
                    replica_id: 0xDEAD_BEEF,
                    generation: 17,
                    segment: 3,
                    offset: 16,
                    max_bytes: 1 << 20,
                },
            },
        ];
        for request in &requests {
            roundtrip_request(request);
        }
    }

    #[test]
    fn every_response_kind_roundtrips() {
        let search = SearchPayload {
            rows: vec![
                ResultRow {
                    name: "p0".into(),
                    country: "Portugal".into(),
                    date: "2017-07-17".into(),
                    labels: vec!["Sea and ocean".into()],
                    distance: Some(3),
                },
                ResultRow {
                    name: "p1".into(),
                    country: "Finland".into(),
                    date: "2018-01-02".into(),
                    labels: vec![],
                    distance: None,
                },
            ],
            page_size: 50,
            label_counts: vec![0; Label::COUNT],
            image_count: 2,
            plan: Some(PlanSpec { index_used: Some("country".into()), scanned: 10, matched: 2 }),
        };
        let responses = vec![
            Response { id: 0, body: ResponseBody::Pong },
            Response { id: 1, body: ResponseBody::Search(search) },
            Response {
                id: 2,
                body: ResponseBody::Ingest(IngestPayload {
                    metadata_docs: 3,
                    image_docs: 3,
                    rendered_docs: 3,
                }),
            },
            Response { id: 3, body: ResponseBody::Feedback { id: -7 } },
            Response {
                id: 4,
                body: ResponseBody::Stats(StatsPayload {
                    queries_served: 100,
                    cache_hits: 40,
                    cache_misses: 60,
                    cache_entries: 12,
                    archive_size: 500,
                    ingested_images: 20,
                    shard_occupancy: vec![63, 62, 63],
                }),
            },
            Response {
                id: 5,
                body: ResponseBody::Error(ErrorPayload {
                    code: ErrorCode::UnknownImage,
                    message: "unknown image: ghost".into(),
                }),
            },
            Response {
                id: 6,
                body: ResponseBody::Error(ErrorPayload {
                    code: ErrorCode::Overloaded,
                    message: "per-client quota exceeded".into(),
                }),
            },
            Response {
                id: 7,
                body: ResponseBody::MetricsText(
                    "eq_queries_served_total 100\neq_net_accepted_total 3\n".into(),
                ),
            },
            Response {
                id: 8,
                body: ResponseBody::Error(ErrorPayload {
                    code: ErrorCode::NotPrimary,
                    message: "writes must go to the primary".into(),
                }),
            },
            Response {
                id: 9,
                body: ResponseBody::Filtered(FilteredPayload {
                    search: SearchPayload {
                        rows: vec![],
                        page_size: 50,
                        label_counts: vec![0; Label::COUNT],
                        image_count: 0,
                        plan: None,
                    },
                    plan: FilteredPlanSpec {
                        strategy: FilterStrategySpec::BitmapPrefilter,
                        candidates: Some(42),
                        residual: true,
                        matching: 120,
                    },
                }),
            },
            Response {
                id: 10,
                body: ResponseBody::ReplState(ReplStatePayload {
                    primary: true,
                    attached: true,
                    generation: 9,
                    first_segment: 2,
                    segment: 5,
                    offset: 8192,
                }),
            },
            Response { id: 11, body: ResponseBody::ReplManifest { bytes: vec![1, 2, 3, 4] } },
            Response {
                id: 12,
                body: ResponseBody::ReplChunk(ReplChunkPayload {
                    total_len: 1 << 20,
                    bytes: vec![0xAB; 64],
                }),
            },
            Response {
                id: 13,
                body: ResponseBody::ReplRecords(ReplRecordsPayload {
                    reseed: false,
                    generation: 9,
                    entries: vec![vec![7; 10], vec![8; 3]],
                    rotate: true,
                    next_segment: 6,
                    next_offset: 16,
                    primary_segment: 6,
                    primary_offset: 16,
                }),
            },
            Response {
                id: 14,
                body: ResponseBody::ReplRecords(ReplRecordsPayload {
                    reseed: true,
                    generation: 11,
                    entries: vec![],
                    rotate: false,
                    next_segment: 0,
                    next_offset: 0,
                    primary_segment: 0,
                    primary_offset: 0,
                }),
            },
        ];
        for response in &responses {
            roundtrip_response(response);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = Request { id: 1, body: RequestBody::Ping }.encode();
        bytes[0] = 99; // version low byte
        assert!(matches!(Request::decode(&bytes), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request { id: 1, body: RequestBody::Stats }.encode();
        bytes.push(0);
        assert!(matches!(Request::decode(&bytes), Err(WireError::Corrupt(_))));
        let mut bytes = Response { id: 1, body: ResponseBody::Pong }.encode();
        bytes.push(0);
        assert!(matches!(Response::decode(&bytes), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut w = Writer::new();
        w.u16(PROTOCOL_VERSION);
        w.u64(1);
        w.u8(200);
        assert!(Request::decode(w.as_bytes()).is_err());
        assert!(Response::decode(w.as_bytes()).is_err());
    }

    #[test]
    fn request_and_response_magics_are_direction_tagged() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request { id: 1, body: RequestBody::Ping }).unwrap();
        // Reading a request frame as a response fails on the first frame.
        let err = read_response(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, ProtoError::Frame(FrameError::BadMagic { .. })));
    }

    #[test]
    fn all_geo_shapes_roundtrip() {
        for shape in [
            GeoShape::Rect(BBox::new(0.0, 0.0, 1.0, 1.0).unwrap()),
            GeoShape::Circle(Circle::new(Point::new(10.0, 50.0).unwrap(), 25.0).unwrap()),
            GeoShape::Polygon(
                Polygon::new(vec![
                    Point::new(0.0, 0.0).unwrap(),
                    Point::new(1.0, 0.0).unwrap(),
                    Point::new(0.5, 1.5).unwrap(),
                ])
                .unwrap(),
            ),
        ] {
            let spec = QuerySpec { shape: Some(shape), ..QuerySpec::default() };
            let request = Request { id: 9, body: RequestBody::Search(spec) };
            roundtrip_request(&request);
        }
    }

    /// The borrowed encode helpers must stay byte-identical to the owned
    /// `Request::encode` path — they exist only to spare the client a
    /// deep copy of raster data, not to be a second layout.
    #[test]
    fn borrowed_encoders_match_owned_encoding() {
        let patch = ArchiveGenerator::new(GeneratorConfig::tiny(1, 6)).unwrap().generate_patch(0);
        let owned = Request {
            id: 9,
            body: RequestBody::SearchByNewExample { patch: Box::new(patch.clone()), k: 4 },
        };
        assert_eq!(encode_new_example_request(9, &patch, 4), owned.encode());
        let patches = vec![patch.clone(), patch];
        let owned = Request { id: 10, body: RequestBody::Ingest { patches: patches.clone() } };
        assert_eq!(encode_ingest_request(10, &patches), owned.encode());
    }

    #[test]
    fn oversized_outgoing_payloads_fail_at_the_sender() {
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_request_payload(&mut sink, &huge),
            Err(ProtoError::Frame(FrameError::Oversized { .. }))
        ));
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn proto_errors_display_meaningfully() {
        let e: ProtoError = WireError::Corrupt("bad tag".into()).into();
        assert!(e.to_string().contains("bad tag"));
        let e: ProtoError =
            FrameError::Oversized { declared: u32::MAX as u64, max: MAX_FRAME_LEN as u64 }.into();
        assert!(e.to_string().contains("maximum"));
    }
}
