//! Synthetic BigEarthNet-MM archive substrate.
//!
//! The paper's demo runs over the real BigEarthNet archive (Sumbul et al.
//! 2021): 590,326 pairs of Sentinel-1/Sentinel-2 image patches acquired over
//! 10 European countries between June 2017 and May 2018, each annotated with
//! CORINE Land Cover (CLC) 2018 Level-3 multi-labels.
//!
//! Shipping ~66 GB of imagery is impossible here, so this crate provides a
//! faithful *synthetic* stand-in (see ARCHITECTURE.md "Substitutions"):
//!
//! * the real 43-class CLC Level-3 nomenclature with its 3-level hierarchy
//!   ([`labels`]),
//! * the real band layout: 12 Sentinel-2 bands at three resolutions and the
//!   two Sentinel-1 polarisations ([`bands`]),
//! * the real country set and acquisition-time range ([`countries`],
//!   [`patch::Season`]),
//! * a deterministic patch generator whose pixel statistics are driven by
//!   per-label spectral signatures, so that semantic similarity is
//!   recoverable from the pixels ([`generator`]),
//! * an [`archive::Archive`] container with train/validation/test splits.

#![warn(missing_docs)]

pub mod archive;
pub mod bands;
pub mod countries;
pub mod generator;
pub mod labels;
pub mod patch;
pub mod signature;
pub mod wire;

pub use archive::{Archive, ArchiveStats, Split};
pub use bands::{Band, BandData, Polarization, Resolution, SENTINEL2_BANDS};
pub use countries::Country;
pub use generator::{ArchiveGenerator, GeneratorConfig};
pub use labels::{Label, LabelHierarchy, Level1, Level2};
pub use patch::{AcquisitionDate, Patch, PatchId, PatchMetadata, Season};
