//! Per-label spectral signatures used by the synthetic patch generator.
//!
//! The real BigEarthNet pixels come from Sentinel-2 L2A products; here we
//! replace them with synthetic rasters whose band statistics are driven by
//! the land-cover classes present in the patch.  The signatures below are
//! coarse but physically plausible surface-reflectance profiles (expressed
//! as Sentinel-2 digital numbers, i.e. reflectance × 10 000): water is dark
//! everywhere and darkest in the infrared, vegetation has the classic red
//! edge (low red, high NIR), urban surfaces are bright and spectrally flat,
//! bare soil/rock is bright in the short-wave infrared, and so on.
//!
//! What matters for the reproduction is not radiometric accuracy but that
//! (i) patches sharing labels have correlated band statistics and
//! (ii) patches with disjoint labels are separable — this is the property
//! the MiLaN metric-learning head exploits.

use crate::bands::Band;
use crate::labels::Label;

/// A spectral signature: one mean digital number per Sentinel-2 band plus a
/// texture roughness factor and a Sentinel-1 backscatter level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature {
    /// Mean digital number per band (indexed by [`Band::index`]).
    pub band_means: [f64; 12],
    /// Texture roughness in `[0, 1]`: 0 = flat (water), 1 = very rough (urban).
    pub texture: f64,
    /// Mean Sentinel-1 backscatter digital number (VV); VH is derived.
    pub sar_backscatter: f64,
}

/// Base profiles for a handful of canonical surface types; label signatures
/// are built by blending these.
fn profile(kind: SurfaceKind) -> Signature {
    use SurfaceKind::*;
    // Band order: B01 B02 B03 B04 B05 B06 B07 B08 B8A B09 B11 B12
    let (band_means, texture, sar): ([f64; 12], f64, f64) = match kind {
        Water => (
            [900.0, 800.0, 700.0, 500.0, 400.0, 300.0, 250.0, 200.0, 180.0, 150.0, 100.0, 80.0],
            0.04,
            300.0,
        ),
        DenseVegetation => (
            [
                400.0, 500.0, 800.0, 600.0, 1200.0, 2600.0, 3200.0, 3500.0, 3600.0, 1200.0, 1800.0,
                900.0,
            ],
            0.35,
            1800.0,
        ),
        Grass => (
            [
                500.0, 650.0, 950.0, 900.0, 1500.0, 2400.0, 2800.0, 3000.0, 3100.0, 1100.0, 2200.0,
                1300.0,
            ],
            0.25,
            1500.0,
        ),
        Crops => (
            [
                550.0, 700.0, 1000.0, 1100.0, 1600.0, 2200.0, 2500.0, 2700.0, 2800.0, 1000.0,
                2500.0, 1600.0,
            ],
            0.45,
            1600.0,
        ),
        Urban => (
            [
                1400.0, 1600.0, 1800.0, 2000.0, 2100.0, 2200.0, 2300.0, 2400.0, 2450.0, 1300.0,
                2600.0, 2500.0,
            ],
            0.85,
            3500.0,
        ),
        BareSoil => (
            [
                1100.0, 1300.0, 1600.0, 1900.0, 2100.0, 2300.0, 2400.0, 2500.0, 2600.0, 1400.0,
                3200.0, 2900.0,
            ],
            0.55,
            1200.0,
        ),
        Sand => (
            [
                1800.0, 2100.0, 2500.0, 2900.0, 3100.0, 3300.0, 3400.0, 3500.0, 3600.0, 1800.0,
                3900.0, 3600.0,
            ],
            0.30,
            900.0,
        ),
        Wetland => (
            [
                700.0, 800.0, 1000.0, 900.0, 1100.0, 1600.0, 1900.0, 2000.0, 2050.0, 800.0, 1400.0,
                900.0,
            ],
            0.30,
            1000.0,
        ),
        Burnt => (
            [
                700.0, 750.0, 850.0, 950.0, 1000.0, 1100.0, 1150.0, 1200.0, 1250.0, 700.0, 2000.0,
                2300.0,
            ],
            0.40,
            1100.0,
        ),
        Snow => (
            [
                4500.0, 4800.0, 4900.0, 5000.0, 5000.0, 5000.0, 5000.0, 4900.0, 4800.0, 3000.0,
                1200.0, 900.0,
            ],
            0.15,
            600.0,
        ),
    };
    Signature { band_means, texture, sar_backscatter: sar }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SurfaceKind {
    Water,
    DenseVegetation,
    Grass,
    Crops,
    Urban,
    BareSoil,
    Sand,
    Wetland,
    Burnt,
    Snow,
}

fn blend(parts: &[(SurfaceKind, f64)]) -> Signature {
    let total: f64 = parts.iter().map(|(_, w)| w).sum();
    let mut band_means = [0.0f64; 12];
    let mut texture = 0.0;
    let mut sar = 0.0;
    for (kind, w) in parts {
        let p = profile(*kind);
        let w = w / total;
        for (i, m) in p.band_means.iter().enumerate() {
            band_means[i] += m * w;
        }
        texture += p.texture * w;
        sar += p.sar_backscatter * w;
    }
    Signature { band_means, texture, sar_backscatter: sar }
}

/// Returns the spectral signature of a CLC Level-3 class.
pub fn label_signature(label: Label) -> Signature {
    use Label::*;
    use SurfaceKind::*;
    match label {
        ContinuousUrbanFabric => blend(&[(Urban, 0.95), (Grass, 0.05)]),
        DiscontinuousUrbanFabric => blend(&[(Urban, 0.6), (Grass, 0.3), (DenseVegetation, 0.1)]),
        IndustrialOrCommercialUnits => blend(&[(Urban, 0.9), (BareSoil, 0.1)]),
        RoadAndRailNetworks => blend(&[(Urban, 0.7), (BareSoil, 0.2), (Grass, 0.1)]),
        PortAreas => blend(&[(Urban, 0.6), (Water, 0.4)]),
        Airports => blend(&[(Urban, 0.5), (Grass, 0.4), (BareSoil, 0.1)]),
        MineralExtractionSites => blend(&[(BareSoil, 0.8), (Urban, 0.2)]),
        DumpSites => blend(&[(BareSoil, 0.7), (Urban, 0.3)]),
        ConstructionSites => blend(&[(BareSoil, 0.6), (Urban, 0.4)]),
        GreenUrbanAreas => blend(&[(Grass, 0.6), (DenseVegetation, 0.2), (Urban, 0.2)]),
        SportAndLeisureFacilities => blend(&[(Grass, 0.7), (Urban, 0.3)]),
        NonIrrigatedArableLand => blend(&[(Crops, 0.8), (BareSoil, 0.2)]),
        PermanentlyIrrigatedLand => blend(&[(Crops, 0.9), (Water, 0.1)]),
        RiceFields => blend(&[(Crops, 0.6), (Water, 0.4)]),
        Vineyards => blend(&[(Crops, 0.6), (BareSoil, 0.4)]),
        FruitTreesAndBerryPlantations => blend(&[(DenseVegetation, 0.5), (Crops, 0.5)]),
        OliveGroves => blend(&[(DenseVegetation, 0.4), (BareSoil, 0.4), (Crops, 0.2)]),
        Pastures => blend(&[(Grass, 0.9), (Crops, 0.1)]),
        AnnualCropsWithPermanentCrops => blend(&[(Crops, 0.7), (DenseVegetation, 0.3)]),
        ComplexCultivationPatterns => blend(&[(Crops, 0.6), (Grass, 0.2), (DenseVegetation, 0.2)]),
        LandPrincipallyOccupiedByAgriculture => {
            blend(&[(Crops, 0.5), (Grass, 0.3), (DenseVegetation, 0.2)])
        }
        AgroForestryAreas => blend(&[(DenseVegetation, 0.5), (Crops, 0.3), (Grass, 0.2)]),
        BroadLeavedForest => blend(&[(DenseVegetation, 1.0)]),
        ConiferousForest => blend(&[(DenseVegetation, 0.85), (Wetland, 0.15)]),
        MixedForest => blend(&[(DenseVegetation, 0.92), (Grass, 0.08)]),
        NaturalGrassland => blend(&[(Grass, 0.9), (BareSoil, 0.1)]),
        MoorsAndHeathland => blend(&[(Grass, 0.5), (Wetland, 0.3), (BareSoil, 0.2)]),
        SclerophyllousVegetation => blend(&[(Grass, 0.4), (BareSoil, 0.3), (DenseVegetation, 0.3)]),
        TransitionalWoodlandShrub => blend(&[(DenseVegetation, 0.6), (Grass, 0.4)]),
        BeachesDunesSands => blend(&[(Sand, 0.9), (Water, 0.1)]),
        BareRock => blend(&[(BareSoil, 0.7), (Snow, 0.15), (Sand, 0.15)]),
        SparselyVegetatedAreas => blend(&[(BareSoil, 0.6), (Grass, 0.4)]),
        BurntAreas => blend(&[(Burnt, 1.0)]),
        InlandMarshes => blend(&[(Wetland, 0.8), (Water, 0.2)]),
        Peatbogs => blend(&[(Wetland, 0.9), (Grass, 0.1)]),
        SaltMarshes => blend(&[(Wetland, 0.6), (Water, 0.3), (Sand, 0.1)]),
        Salines => blend(&[(Water, 0.5), (Sand, 0.5)]),
        IntertidalFlats => blend(&[(Water, 0.5), (BareSoil, 0.3), (Sand, 0.2)]),
        WaterCourses => blend(&[(Water, 0.95), (Grass, 0.05)]),
        WaterBodies => blend(&[(Water, 1.0)]),
        CoastalLagoons => blend(&[(Water, 0.85), (Sand, 0.15)]),
        Estuaries => blend(&[(Water, 0.8), (Wetland, 0.2)]),
        SeaAndOcean => blend(&[(Water, 1.0)]),
    }
}

/// Blends the signatures of several labels into a single patch-level
/// signature (uniform weights).
pub fn mixed_signature(labels: &[Label]) -> Signature {
    if labels.is_empty() {
        return profile(SurfaceKind::BareSoil);
    }
    let mut band_means = [0.0f64; 12];
    let mut texture = 0.0;
    let mut sar = 0.0;
    for l in labels {
        let s = label_signature(*l);
        for (m, v) in band_means.iter_mut().zip(s.band_means.iter()) {
            *m += v;
        }
        texture += s.texture;
        sar += s.sar_backscatter;
    }
    let n = labels.len() as f64;
    for m in band_means.iter_mut() {
        *m /= n;
    }
    Signature { band_means, texture: texture / n, sar_backscatter: sar / n }
}

impl Signature {
    /// The mean digital number of a given band.
    pub fn band_mean(&self, band: Band) -> f64 {
        self.band_means[band.index()]
    }

    /// Euclidean distance between two signatures in band space; a crude
    /// semantic-distance proxy used in tests.
    pub fn distance(&self, other: &Signature) -> f64 {
        self.band_means
            .iter()
            .zip(other.band_means.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bands::SENTINEL2_BANDS;

    #[test]
    fn every_label_has_a_finite_positive_signature() {
        for l in Label::ALL {
            let s = label_signature(l);
            for b in SENTINEL2_BANDS {
                let m = s.band_mean(b);
                assert!(m.is_finite() && m > 0.0, "{l} band {b:?} mean {m}");
                assert!(m < 10_000.0, "{l} band {b:?} mean {m} too large");
            }
            assert!((0.0..=1.0).contains(&s.texture), "{l} texture {}", s.texture);
            assert!(s.sar_backscatter > 0.0);
        }
    }

    #[test]
    fn water_is_dark_in_nir_vegetation_is_bright() {
        let water = label_signature(Label::SeaAndOcean);
        let forest = label_signature(Label::BroadLeavedForest);
        assert!(water.band_mean(Band::B08) < 500.0);
        assert!(forest.band_mean(Band::B08) > 2500.0);
        // Red edge: NIR >> red for vegetation.
        assert!(forest.band_mean(Band::B08) > 3.0 * forest.band_mean(Band::B04));
        // Water has no red edge.
        assert!(water.band_mean(Band::B08) < water.band_mean(Band::B02));
    }

    #[test]
    fn urban_is_rough_water_is_smooth() {
        assert!(label_signature(Label::ContinuousUrbanFabric).texture > 0.7);
        assert!(label_signature(Label::WaterBodies).texture < 0.1);
    }

    #[test]
    fn similar_labels_have_closer_signatures_than_dissimilar_ones() {
        let conif = label_signature(Label::ConiferousForest);
        let mixed = label_signature(Label::MixedForest);
        let sea = label_signature(Label::SeaAndOcean);
        let urban = label_signature(Label::ContinuousUrbanFabric);
        assert!(conif.distance(&mixed) < conif.distance(&sea));
        assert!(conif.distance(&mixed) < conif.distance(&urban));
        let water_bodies = label_signature(Label::WaterBodies);
        assert!(sea.distance(&water_bodies) < sea.distance(&urban));
    }

    #[test]
    fn mixed_signature_is_between_its_parts() {
        let sea = label_signature(Label::SeaAndOcean);
        let beach = label_signature(Label::BeachesDunesSands);
        let mix = mixed_signature(&[Label::SeaAndOcean, Label::BeachesDunesSands]);
        for b in SENTINEL2_BANDS {
            let lo = sea.band_mean(b).min(beach.band_mean(b));
            let hi = sea.band_mean(b).max(beach.band_mean(b));
            let m = mix.band_mean(b);
            assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "band {b:?}: {m} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn mixed_signature_of_empty_slice_is_well_defined() {
        let s = mixed_signature(&[]);
        assert!(s.band_means.iter().all(|m| m.is_finite() && *m > 0.0));
    }

    #[test]
    fn signature_distance_is_zero_for_identical() {
        let a = label_signature(Label::Vineyards);
        assert_eq!(a.distance(&a), 0.0);
    }
}
