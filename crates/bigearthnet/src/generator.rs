//! Deterministic synthetic archive generator.
//!
//! The generator replaces the real BigEarthNet acquisition pipeline.  It is
//! fully deterministic given a seed, so every experiment in
//! `EXPERIMENTS.md` is reproducible bit-for-bit.

use crate::archive::Archive;
use crate::bands::{BandData, Polarization, SENTINEL2_BANDS};
use crate::countries::Country;
use crate::labels::{Label, LabelSet};
use crate::patch::{patch_name, AcquisitionDate, Patch, PatchId, PatchMetadata};
use crate::signature::{label_signature, mixed_signature};
use eq_geo::{BBox, Point};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the synthetic archive generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of patches to generate.
    pub num_patches: usize,
    /// Random seed; the same seed always produces the same archive.
    pub seed: u64,
    /// Divisor applied to the canonical patch sizes (1 = full 120/60/20 px,
    /// 2 = 60/30/10 px, ...).  Experiments that only need band statistics
    /// use a larger divisor to keep memory bounded; the band *layout* is
    /// unchanged.
    pub size_scale: usize,
    /// Minimum number of labels per patch (≥ 1).
    pub min_labels: usize,
    /// Maximum number of labels per patch.
    pub max_labels: usize,
    /// Standard deviation of the additive pixel noise, in digital numbers.
    pub noise_std: f64,
    /// Countries to draw patches from; defaults to all ten.
    pub countries: Vec<Country>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_patches: 1_000,
            seed: 42,
            size_scale: 6, // 20×20 px 10 m bands by default: fast yet structured
            min_labels: 1,
            max_labels: 5,
            noise_std: 120.0,
            countries: Country::ALL.to_vec(),
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests.
    pub fn tiny(num_patches: usize, seed: u64) -> Self {
        Self { num_patches, seed, size_scale: 12, ..Self::default() }
    }

    /// A configuration producing full-resolution (120 px) patches.
    pub fn full_resolution(num_patches: usize, seed: u64) -> Self {
        Self { num_patches, seed, size_scale: 1, ..Self::default() }
    }

    fn validate(&self) -> Result<(), String> {
        if self.num_patches == 0 {
            return Err("num_patches must be > 0".into());
        }
        if self.size_scale == 0 || self.size_scale > 20 {
            return Err(format!("size_scale {} out of range 1..=20", self.size_scale));
        }
        if self.min_labels == 0 || self.min_labels > self.max_labels {
            return Err(format!(
                "invalid label-count range {}..={}",
                self.min_labels, self.max_labels
            ));
        }
        if self.max_labels > Label::COUNT {
            return Err(format!("max_labels {} exceeds {}", self.max_labels, Label::COUNT));
        }
        if self.countries.is_empty() {
            return Err("at least one country is required".into());
        }
        Ok(())
    }
}

/// Deterministic synthetic BigEarthNet archive generator.
#[derive(Debug, Clone)]
pub struct ArchiveGenerator {
    config: GeneratorConfig,
}

impl ArchiveGenerator {
    /// Creates a generator after validating the configuration.
    pub fn new(config: GeneratorConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the full archive (metadata + pixels).
    pub fn generate(&self) -> Archive {
        let patches = (0..self.config.num_patches).map(|i| self.generate_patch(i as u32)).collect();
        Archive::new(patches)
    }

    /// Generates only the metadata records (no pixels).  Useful for
    /// metadata-store experiments at archive scale (hundreds of thousands
    /// of documents) where pixel data would not fit in memory.
    ///
    /// The records are identical to the metadata of [`generate`](Self::generate):
    /// every patch uses an id-derived RNG stream whose first draws produce
    /// the metadata, so skipping the pixel draws does not change it.
    pub fn generate_metadata_only(&self) -> Vec<PatchMetadata> {
        (0..self.config.num_patches)
            .map(|i| self.generate_metadata_with(&mut self.patch_rng(i as u32), i as u32))
            .collect()
    }

    /// Generates a single patch with an id-derived deterministic stream.
    ///
    /// Consecutive ids do not share an RNG stream, so patches can be
    /// produced independently (e.g. lazily or in parallel) while staying
    /// reproducible.
    pub fn generate_patch(&self, id: u32) -> Patch {
        self.generate_patch_with(&mut self.patch_rng(id), id)
    }

    fn patch_rng(&self, id: u32) -> StdRng {
        StdRng::seed_from_u64(
            self.config.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1),
        )
    }

    fn generate_metadata_with(&self, rng: &mut StdRng, id: u32) -> PatchMetadata {
        let country = self.sample_country(rng);
        let labels = self.sample_labels(rng);
        let date = sample_date(rng);
        let bbox = sample_footprint(rng, country);
        // Grid coordinates derive from the id, not the RNG: (id % 120,
        // id / 120) is injective, so patch names — the primary key of the
        // metadata store — can never collide, at any archive size.
        let name = patch_name(country, date, id % 120, id / 120);
        PatchMetadata { id: PatchId(id), name, bbox, labels, country, date }
    }

    fn generate_patch_with(&self, rng: &mut StdRng, id: u32) -> Patch {
        let meta = self.generate_metadata_with(rng, id);
        let labels: Vec<Label> = meta.labels.iter().collect();
        let season_gain = match meta.date.season() {
            crate::patch::Season::Summer => 1.05,
            crate::patch::Season::Spring => 1.0,
            crate::patch::Season::Autumn => 0.95,
            crate::patch::Season::Winter => 0.88,
        };

        // Assign each quadrant of the patch a (possibly different) label so
        // that patches have spatial structure, as real mixed patches do.
        let quadrant_labels: [Label; 4] =
            std::array::from_fn(|_| labels[rng.gen_range(0..labels.len())]);
        let mix = mixed_signature(&labels);

        let s2_bands = SENTINEL2_BANDS
            .iter()
            .map(|band| {
                let size = (band.resolution().patch_size() / self.config.size_scale).max(2);
                let mut data = BandData::zeros(size);
                for r in 0..size {
                    for c in 0..size {
                        let quadrant = (r >= size / 2) as usize * 2 + (c >= size / 2) as usize;
                        let sig = label_signature(quadrant_labels[quadrant]);
                        // Blend the quadrant label with the patch-level mix so
                        // quadrant borders are not artificially sharp.
                        let base = 0.65 * sig.band_mean(*band) + 0.35 * mix.band_mean(*band);
                        let texture_noise = rng.gen_range(-1.0f64..1.0) * sig.texture * 600.0;
                        let noise = sample_gaussian(rng, self.config.noise_std);
                        let v = (base * season_gain + texture_noise + noise).clamp(0.0, 10_000.0);
                        data.set(r, c, v as u16);
                    }
                }
                data
            })
            .collect();

        let s1_size = (120 / self.config.size_scale).max(2);
        let s1_bands = Polarization::ALL
            .iter()
            .map(|pol| {
                let mut data = BandData::zeros(s1_size);
                let gain = match pol {
                    Polarization::VV => 1.0,
                    Polarization::VH => 0.55,
                };
                for r in 0..s1_size {
                    for c in 0..s1_size {
                        let quadrant =
                            (r >= s1_size / 2) as usize * 2 + (c >= s1_size / 2) as usize;
                        let sig = label_signature(quadrant_labels[quadrant]);
                        let speckle = rng.gen_range(0.6f64..1.4); // multiplicative SAR speckle
                        let v = (sig.sar_backscatter * gain * speckle).clamp(0.0, 10_000.0);
                        data.set(r, c, v as u16);
                    }
                }
                data
            })
            .collect();

        Patch { meta, s2_bands, s1_bands }
    }

    fn sample_country(&self, rng: &mut StdRng) -> Country {
        let weights: Vec<f64> = self.config.countries.iter().map(|c| c.patch_share()).collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (c, w) in self.config.countries.iter().zip(weights.iter()) {
            if x < *w {
                return *c;
            }
            x -= w;
        }
        *self.config.countries.last().expect("validated non-empty")
    }

    fn sample_labels(&self, rng: &mut StdRng) -> LabelSet {
        let count = rng.gen_range(self.config.min_labels..=self.config.max_labels);
        let primary = sample_label_by_prior(rng);
        let mut set = LabelSet::from_labels([primary]);
        let mut guard = 0;
        while set.len() < count && guard < 200 {
            guard += 1;
            // 70 %: a label from the same Level-1 family (thematic
            // co-occurrence, e.g. Sea and ocean + Coastal lagoons);
            // 30 %: anything, weighted by prior.
            let candidate = if rng.gen_bool(0.7) {
                let family: Vec<Label> =
                    Label::ALL.iter().copied().filter(|l| l.level1() == primary.level1()).collect();
                family[rng.gen_range(0..family.len())]
            } else {
                sample_label_by_prior(rng)
            };
            set.insert(candidate);
        }
        set
    }
}

fn sample_label_by_prior(rng: &mut StdRng) -> Label {
    let total: f64 = Label::ALL.iter().map(|l| l.prior_weight()).sum();
    let mut x = rng.gen_range(0.0..total);
    for l in Label::ALL {
        if x < l.prior_weight() {
            return l;
        }
        x -= l.prior_weight();
    }
    Label::SeaAndOcean
}

fn sample_date(rng: &mut StdRng) -> AcquisitionDate {
    // Months June 2017 .. May 2018 (12 months).
    let month_offset = rng.gen_range(0..12u32);
    let (year, month) = if month_offset < 7 {
        (2017u16, (6 + month_offset) as u8)
    } else {
        (2018u16, (month_offset - 6) as u8)
    };
    let day = rng.gen_range(1..=28u8);
    AcquisitionDate::new(year, month, day).expect("generated dates are valid")
}

fn sample_footprint(rng: &mut StdRng, country: Country) -> BBox {
    let b = country.bounding_box();
    // Keep a small margin so the 1.2 km footprint stays inside the country box.
    let lon = rng.gen_range(b.min_lon + 0.05..b.max_lon - 0.05);
    let lat = rng.gen_range(b.min_lat + 0.05..b.max_lat - 0.05);
    *BBox::square_around(Point::new_unchecked(lon, lat), 1.2)
        .single()
        .expect("BigEarthNet countries are far from the antimeridian")
}

/// Samples from a zero-mean Gaussian with the given standard deviation
/// (Box–Muller; avoids a dependency on `rand_distr`).
fn sample_gaussian(rng: &mut StdRng, std: f64) -> f64 {
    if std <= 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * std
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bands::Band;

    #[test]
    fn config_validation() {
        assert!(ArchiveGenerator::new(GeneratorConfig { num_patches: 0, ..Default::default() })
            .is_err());
        assert!(
            ArchiveGenerator::new(GeneratorConfig { size_scale: 0, ..Default::default() }).is_err()
        );
        assert!(ArchiveGenerator::new(GeneratorConfig { size_scale: 50, ..Default::default() })
            .is_err());
        assert!(ArchiveGenerator::new(GeneratorConfig {
            min_labels: 3,
            max_labels: 2,
            ..Default::default()
        })
        .is_err());
        assert!(
            ArchiveGenerator::new(GeneratorConfig { min_labels: 0, ..Default::default() }).is_err()
        );
        assert!(ArchiveGenerator::new(GeneratorConfig { max_labels: 99, ..Default::default() })
            .is_err());
        assert!(ArchiveGenerator::new(GeneratorConfig { countries: vec![], ..Default::default() })
            .is_err());
        assert!(ArchiveGenerator::new(GeneratorConfig::default()).is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::tiny(20, 7);
        let a = ArchiveGenerator::new(cfg.clone()).unwrap().generate();
        let b = ArchiveGenerator::new(cfg).unwrap().generate();
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.patches().iter().zip(b.patches().iter()) {
            assert_eq!(pa.meta, pb.meta);
            assert_eq!(pa.s2_bands, pb.s2_bands);
            assert_eq!(pa.s1_bands, pb.s1_bands);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArchiveGenerator::new(GeneratorConfig::tiny(10, 1)).unwrap().generate();
        let b = ArchiveGenerator::new(GeneratorConfig::tiny(10, 2)).unwrap().generate();
        let same = a
            .patches()
            .iter()
            .zip(b.patches().iter())
            .filter(|(x, y)| x.meta.labels == y.meta.labels && x.meta.country == y.meta.country)
            .count();
        assert!(same < a.len(), "different seeds produced identical archives");
    }

    #[test]
    fn metadata_only_matches_full_generation() {
        let cfg = GeneratorConfig::tiny(15, 99);
        let full = ArchiveGenerator::new(cfg.clone()).unwrap().generate();
        let meta = ArchiveGenerator::new(cfg).unwrap().generate_metadata_only();
        assert_eq!(full.len(), meta.len());
        for (p, m) in full.patches().iter().zip(meta.iter()) {
            assert_eq!(&p.meta, m);
        }
    }

    #[test]
    fn generated_metadata_respects_invariants() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(200, 3)).unwrap().generate_metadata_only();
        for (i, m) in metas.iter().enumerate() {
            assert_eq!(m.id.index(), i);
            assert!(!m.labels.is_empty());
            assert!(m.labels.len() <= 5);
            assert!(m.date.in_bigearthnet_window(), "{} outside window", m.date);
            assert!(m.country.bounding_box().intersects(&m.bbox), "footprint outside country");
            assert!(m.name.starts_with("S2A_MSIL2A_"));
        }
        // Names are unique with overwhelming probability; enforce it.
        let mut names: Vec<&str> = metas.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() >= metas.len() - 2, "too many duplicate names");
    }

    #[test]
    fn generated_pixels_reflect_label_semantics() {
        // Water patches must be darker in NIR than forest patches on average.
        let cfg =
            GeneratorConfig { num_patches: 300, seed: 11, size_scale: 12, ..Default::default() };
        let archive = ArchiveGenerator::new(cfg).unwrap().generate();
        let mut water_nir = vec![];
        let mut forest_nir = vec![];
        for p in archive.patches() {
            let nir = p.band(Band::B08).mean();
            let labels = p.meta.labels;
            let is_water =
                labels.contains(Label::SeaAndOcean) || labels.contains(Label::WaterBodies);
            let is_forest = labels.contains(Label::ConiferousForest)
                || labels.contains(Label::BroadLeavedForest);
            if is_water && !is_forest {
                water_nir.push(nir);
            } else if is_forest && !is_water {
                forest_nir.push(nir);
            }
        }
        assert!(water_nir.len() > 3 && forest_nir.len() > 3, "not enough samples");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&forest_nir) > mean(&water_nir) + 500.0,
            "forest NIR {} not clearly above water NIR {}",
            mean(&forest_nir),
            mean(&water_nir)
        );
    }

    #[test]
    fn size_scale_controls_raster_sizes() {
        let archive = ArchiveGenerator::new(GeneratorConfig {
            num_patches: 2,
            seed: 5,
            size_scale: 2,
            ..Default::default()
        })
        .unwrap()
        .generate();
        let p = &archive.patches()[0];
        assert_eq!(p.band(Band::B02).size(), 60);
        assert_eq!(p.band(Band::B05).size(), 30);
        assert_eq!(p.band(Band::B01).size(), 10);
        assert_eq!(p.polarization(Polarization::VV).size(), 60);
    }

    #[test]
    fn full_resolution_patches_validate() {
        let archive =
            ArchiveGenerator::new(GeneratorConfig::full_resolution(1, 3)).unwrap().generate();
        assert_eq!(archive.patches()[0].validate(), Ok(()));
    }

    #[test]
    fn generate_patch_by_id_is_deterministic_and_id_stable() {
        let g = ArchiveGenerator::new(GeneratorConfig::tiny(10, 77)).unwrap();
        let a = g.generate_patch(3);
        let b = g.generate_patch(3);
        assert_eq!(a.meta, b.meta);
        assert_eq!(a.s2_bands, b.s2_bands);
        assert_eq!(a.meta.id, PatchId(3));
        let c = g.generate_patch(4);
        assert_ne!(a.meta.name, c.meta.name);
    }

    #[test]
    fn country_restriction_is_honoured() {
        let cfg = GeneratorConfig {
            num_patches: 50,
            countries: vec![Country::Portugal],
            ..GeneratorConfig::tiny(50, 8)
        };
        let metas = ArchiveGenerator::new(cfg).unwrap().generate_metadata_only();
        assert!(metas.iter().all(|m| m.country == Country::Portugal));
    }

    #[test]
    fn gaussian_sampler_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.15, "std {}", var.sqrt());
        assert_eq!(sample_gaussian(&mut rng, 0.0), 0.0);
    }
}
