//! The archive container: patches, splits and summary statistics.

use crate::countries::Country;
use crate::labels::Label;
use crate::patch::{Patch, PatchId, PatchMetadata, Season};

/// Train / validation / test split membership.
///
/// BigEarthNet ships official splits; the synthetic archive assigns them
/// deterministically from the patch id with a 60/20/20 ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Split {
    Train,
    Validation,
    Test,
}

impl Split {
    /// All three splits.
    pub const ALL: [Split; 3] = [Split::Train, Split::Validation, Split::Test];

    /// Deterministic split assignment for a patch id (60/20/20).
    pub fn for_id(id: PatchId) -> Split {
        // A small multiplicative hash decorrelates the split from the id
        // order (ids are assigned per-country in generation order).
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        match h % 10 {
            0..=5 => Split::Train,
            6 | 7 => Split::Validation,
            _ => Split::Test,
        }
    }
}

/// Summary statistics of an archive, used by examples and sanity checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveStats {
    /// Number of patches.
    pub num_patches: usize,
    /// Number of patches per label (dense-index order, length 43).
    pub label_counts: Vec<usize>,
    /// Number of patches per country (order of [`Country::ALL`]).
    pub country_counts: Vec<usize>,
    /// Number of patches per season (order of [`Season::ALL`]).
    pub season_counts: Vec<usize>,
    /// Mean number of labels per patch.
    pub mean_labels_per_patch: f64,
}

/// An in-memory BigEarthNet-like archive.
#[derive(Debug, Clone, Default)]
pub struct Archive {
    patches: Vec<Patch>,
}

impl Archive {
    /// Wraps a list of patches into an archive.
    pub fn new(patches: Vec<Patch>) -> Self {
        Self { patches }
    }

    /// Number of patches.
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }

    /// All patches.
    pub fn patches(&self) -> &[Patch] {
        &self.patches
    }

    /// The patch with the given id, if present.
    pub fn get(&self, id: PatchId) -> Option<&Patch> {
        self.patches.get(id.index()).filter(|p| p.meta.id == id)
    }

    /// Looks a patch up by its BigEarthNet-style name (linear scan; the
    /// document store provides the indexed path).
    pub fn find_by_name(&self, name: &str) -> Option<&Patch> {
        self.patches.iter().find(|p| p.meta.name == name)
    }

    /// The metadata of every patch, in id order.
    pub fn metadata(&self) -> Vec<PatchMetadata> {
        self.patches.iter().map(|p| p.meta.clone()).collect()
    }

    /// Ids of the patches belonging to the given split.
    pub fn split_ids(&self, split: Split) -> Vec<PatchId> {
        self.patches.iter().map(|p| p.meta.id).filter(|id| Split::for_id(*id) == split).collect()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> ArchiveStats {
        let mut label_counts = vec![0usize; Label::COUNT];
        let mut country_counts = vec![0usize; Country::ALL.len()];
        let mut season_counts = vec![0usize; Season::ALL.len()];
        let mut total_labels = 0usize;
        for p in &self.patches {
            for l in p.meta.labels.iter() {
                label_counts[l.index()] += 1;
            }
            total_labels += p.meta.labels.len();
            let ci = Country::ALL.iter().position(|c| *c == p.meta.country).expect("known country");
            country_counts[ci] += 1;
            let si = Season::ALL.iter().position(|s| *s == p.meta.season()).expect("known season");
            season_counts[si] += 1;
        }
        ArchiveStats {
            num_patches: self.patches.len(),
            label_counts,
            country_counts,
            season_counts,
            mean_labels_per_patch: if self.patches.is_empty() {
                0.0
            } else {
                total_labels as f64 / self.patches.len() as f64
            },
        }
    }
}

impl std::ops::Index<PatchId> for Archive {
    type Output = Patch;

    fn index(&self, id: PatchId) -> &Patch {
        &self.patches[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ArchiveGenerator, GeneratorConfig};

    fn small_archive() -> Archive {
        ArchiveGenerator::new(GeneratorConfig::tiny(120, 21)).unwrap().generate()
    }

    #[test]
    fn empty_archive() {
        let a = Archive::default();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.stats().num_patches, 0);
        assert_eq!(a.stats().mean_labels_per_patch, 0.0);
        assert!(a.get(PatchId(0)).is_none());
    }

    #[test]
    fn get_and_index_by_id() {
        let a = small_archive();
        let id = PatchId(17);
        assert_eq!(a.get(id).unwrap().meta.id, id);
        assert_eq!(a[id].meta.id, id);
        assert!(a.get(PatchId(9999)).is_none());
    }

    #[test]
    fn find_by_name_roundtrips() {
        let a = small_archive();
        let name = a.patches()[5].meta.name.clone();
        assert_eq!(a.find_by_name(&name).unwrap().meta.id, PatchId(5));
        assert!(a.find_by_name("no_such_patch").is_none());
    }

    #[test]
    fn split_assignment_is_deterministic_and_partitions_ids() {
        let a = small_archive();
        let train = a.split_ids(Split::Train);
        let val = a.split_ids(Split::Validation);
        let test = a.split_ids(Split::Test);
        assert_eq!(train.len() + val.len() + test.len(), a.len());
        // Roughly 60/20/20.
        assert!(train.len() > val.len());
        assert!(train.len() > test.len());
        // Deterministic.
        assert_eq!(train, a.split_ids(Split::Train));
        // Disjoint.
        for id in &train {
            assert!(!val.contains(id) && !test.contains(id));
        }
    }

    #[test]
    fn stats_are_consistent() {
        let a = small_archive();
        let s = a.stats();
        assert_eq!(s.num_patches, a.len());
        assert_eq!(s.label_counts.len(), Label::COUNT);
        assert_eq!(s.country_counts.iter().sum::<usize>(), a.len());
        assert_eq!(s.season_counts.iter().sum::<usize>(), a.len());
        assert!(s.mean_labels_per_patch >= 1.0);
        assert!(s.mean_labels_per_patch <= 5.0);
        // Label counts sum to the total number of (patch, label) pairs.
        let pairs: usize = a.patches().iter().map(|p| p.meta.labels.len()).sum();
        assert_eq!(s.label_counts.iter().sum::<usize>(), pairs);
    }

    #[test]
    fn metadata_vector_preserves_order() {
        let a = small_archive();
        let m = a.metadata();
        assert_eq!(m.len(), a.len());
        for (i, meta) in m.iter().enumerate() {
            assert_eq!(meta.id.index(), i);
        }
    }
}
