//! The ten European countries covered by BigEarthNet (§2.1 of the paper).

use eq_geo::BBox;

/// The ten countries whose Sentinel tiles make up BigEarthNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Country {
    Austria,
    Belgium,
    Finland,
    Ireland,
    Kosovo,
    Lithuania,
    Luxembourg,
    Portugal,
    Serbia,
    Switzerland,
}

impl Country {
    /// All ten countries, alphabetically.
    pub const ALL: [Country; 10] = [
        Country::Austria,
        Country::Belgium,
        Country::Finland,
        Country::Ireland,
        Country::Kosovo,
        Country::Lithuania,
        Country::Luxembourg,
        Country::Portugal,
        Country::Serbia,
        Country::Switzerland,
    ];

    /// Country name.
    pub fn name(self) -> &'static str {
        match self {
            Country::Austria => "Austria",
            Country::Belgium => "Belgium",
            Country::Finland => "Finland",
            Country::Ireland => "Ireland",
            Country::Kosovo => "Kosovo",
            Country::Lithuania => "Lithuania",
            Country::Luxembourg => "Luxembourg",
            Country::Portugal => "Portugal",
            Country::Serbia => "Serbia",
            Country::Switzerland => "Switzerland",
        }
    }

    /// Parses a country from its English name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Country> {
        Country::ALL.iter().copied().find(|c| c.name().eq_ignore_ascii_case(name))
    }

    /// An approximate land bounding box (continental territory) used by the
    /// synthetic generator to place patch footprints.
    pub fn bounding_box(self) -> BBox {
        // (min_lon, min_lat, max_lon, max_lat); coarse but disjoint enough
        // to make spatial queries meaningful.
        let (a, b, c, d) = match self {
            Country::Austria => (9.5, 46.4, 17.2, 49.0),
            Country::Belgium => (2.5, 49.5, 6.4, 51.5),
            Country::Finland => (20.6, 59.8, 31.5, 70.1),
            Country::Ireland => (-10.5, 51.4, -6.0, 55.4),
            Country::Kosovo => (20.0, 41.8, 21.8, 43.3),
            Country::Lithuania => (21.0, 53.9, 26.8, 56.4),
            Country::Luxembourg => (5.7, 49.4, 6.5, 50.2),
            Country::Portugal => (-9.5, 36.9, -6.2, 42.2),
            Country::Serbia => (18.8, 42.2, 23.0, 46.2),
            Country::Switzerland => (5.9, 45.8, 10.5, 47.8),
        };
        BBox::new(a, b, c, d).expect("country bounding boxes are valid")
    }

    /// Relative share of BigEarthNet patches acquired over this country.
    ///
    /// The real archive is heavily skewed (Finland, Portugal, Austria and
    /// Serbia contribute most patches; Luxembourg and Kosovo very few); the
    /// synthetic generator reproduces that skew.  Unnormalised weights.
    pub fn patch_share(self) -> f64 {
        match self {
            Country::Finland => 25.0,
            Country::Portugal => 18.0,
            Country::Austria => 15.0,
            Country::Serbia => 13.0,
            Country::Ireland => 10.0,
            Country::Lithuania => 8.0,
            Country::Switzerland => 6.0,
            Country::Belgium => 3.0,
            Country::Kosovo => 1.5,
            Country::Luxembourg => 0.5,
        }
    }

    /// The Sentinel-2 tile prefix used in synthetic patch names for this
    /// country (a real-looking MGRS-like tile identifier).
    pub fn tile_code(self) -> &'static str {
        match self {
            Country::Austria => "T33UWP",
            Country::Belgium => "T31UFS",
            Country::Finland => "T35VLJ",
            Country::Ireland => "T29UNV",
            Country::Kosovo => "T34TDN",
            Country::Lithuania => "T34UDG",
            Country::Luxembourg => "T31UGR",
            Country::Portugal => "T29SNC",
            Country::Serbia => "T34TDQ",
            Country::Switzerland => "T32TMT",
        }
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_ten_countries() {
        assert_eq!(Country::ALL.len(), 10);
    }

    #[test]
    fn names_roundtrip_case_insensitively() {
        for c in Country::ALL {
            assert_eq!(Country::from_name(c.name()), Some(c));
            assert_eq!(Country::from_name(&c.name().to_uppercase()), Some(c));
        }
        assert_eq!(Country::from_name("Germany"), None);
    }

    #[test]
    fn bounding_boxes_are_in_europe_and_valid() {
        for c in Country::ALL {
            let b = c.bounding_box();
            assert!(b.min_lon >= -11.0 && b.max_lon <= 32.0, "{c}: {b}");
            assert!(b.min_lat >= 36.0 && b.max_lat <= 71.0, "{c}: {b}");
            assert!(b.width() > 0.0 && b.height() > 0.0);
        }
    }

    #[test]
    fn portugal_and_finland_do_not_overlap() {
        assert!(!Country::Portugal.bounding_box().intersects(&Country::Finland.bounding_box()));
    }

    #[test]
    fn luxembourg_is_the_smallest() {
        let lux = Country::Luxembourg.bounding_box().area_deg2();
        for c in Country::ALL {
            if c != Country::Luxembourg {
                assert!(c.bounding_box().area_deg2() > lux, "{c} smaller than Luxembourg?");
            }
        }
    }

    #[test]
    fn patch_shares_are_positive_and_skewed() {
        let total: f64 = Country::ALL.iter().map(|c| c.patch_share()).sum();
        assert!(total > 0.0);
        assert!(Country::Finland.patch_share() > Country::Luxembourg.patch_share() * 10.0);
    }

    #[test]
    fn tile_codes_are_unique() {
        let mut codes: Vec<&str> = Country::ALL.iter().map(|c| c.tile_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 10);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Country::Switzerland.to_string(), "Switzerland");
    }
}
