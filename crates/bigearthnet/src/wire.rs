//! Wire codecs for the archive substrate types.
//!
//! [`PatchMetadata`] and full [`Patch`]es cross two byte boundaries in this
//! workspace: the durable storage tier (snapshots and the write-ahead log
//! in `eq_earthqube`) and the `eq_proto` network RPC protocol (query-by-new-
//! example uploads, remote ingest).  Both must agree on the byte layout, so
//! the codec lives here, next to the types it serializes.
//!
//! Every decoder is checked: truncation, an unknown country, an invalid
//! date or a raster whose pixel buffer disagrees with its declared size all
//! surface as [`WireError`]s, never as panics — these bytes arrive from
//! disk *and* from the network.

use eq_geo::BBox;
use eq_wire::{Reader, WireError, Writer};

use crate::bands::BandData;
use crate::countries::Country;
use crate::labels::LabelSet;
use crate::patch::{AcquisitionDate, Patch, PatchId, PatchMetadata};

/// Encodes patch metadata: dense id, name, bbox, label bits, country name,
/// and the acquisition date.
pub fn encode_patch_metadata(meta: &PatchMetadata, w: &mut Writer) {
    w.u32(meta.id.0);
    w.str(&meta.name);
    w.f64(meta.bbox.min_lon);
    w.f64(meta.bbox.min_lat);
    w.f64(meta.bbox.max_lon);
    w.f64(meta.bbox.max_lat);
    w.u64(meta.labels.bits());
    w.str(meta.country.name());
    w.u16(meta.date.year);
    w.u8(meta.date.month);
    w.u8(meta.date.day);
}

/// Decodes patch metadata written by [`encode_patch_metadata`].
///
/// # Errors
/// Returns [`WireError`] on truncation, an invalid bounding box, an unknown
/// country or an out-of-range date.
pub fn decode_patch_metadata(r: &mut Reader<'_>) -> Result<PatchMetadata, WireError> {
    let id = PatchId(r.u32()?);
    let name = r.str()?.to_string();
    let (min_lon, min_lat, max_lon, max_lat) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
    let bbox = BBox::new(min_lon, min_lat, max_lon, max_lat)
        .map_err(|e| WireError::Corrupt(format!("invalid bbox for patch {name:?}: {e}")))?;
    let labels = LabelSet::from_bits(r.u64()?);
    let country_name = r.str()?.to_string();
    let country = Country::from_name(&country_name)
        .ok_or_else(|| WireError::Corrupt(format!("unknown country {country_name:?}")))?;
    let (year, month, day) = (r.u16()?, r.u8()?, r.u8()?);
    let date = AcquisitionDate::new(year, month, day)
        .ok_or_else(|| WireError::Corrupt(format!("invalid date {year}-{month}-{day}")))?;
    Ok(PatchMetadata { id, name, bbox, labels, country, date })
}

/// Encodes one raster: side length plus the row-major `u16` pixels as one
/// little-endian byte string.
pub fn encode_band_data(band: &BandData, w: &mut Writer) {
    w.u32(band.size() as u32);
    // Byte-identical to `w.bytes(flattened)` but without materialising the
    // flattened temporary — this runs per band on the upload hot path.
    w.u32(u32::try_from(band.pixels().len() * 2).expect("raster exceeds u32::MAX bytes"));
    for &px in band.pixels() {
        w.u16(px);
    }
}

/// Decodes a raster written by [`encode_band_data`].
///
/// # Errors
/// Returns [`WireError`] on truncation or when the pixel buffer length
/// disagrees with the declared `size × size` shape.
pub fn decode_band_data(r: &mut Reader<'_>) -> Result<BandData, WireError> {
    let size = r.u32()? as usize;
    let bytes = r.bytes()?;
    let expected = size
        .checked_mul(size)
        .and_then(|n| n.checked_mul(2))
        .ok_or_else(|| WireError::Corrupt(format!("raster size {size} overflows")))?;
    if bytes.len() != expected {
        return Err(WireError::Corrupt(format!(
            "raster of size {size} needs {expected} pixel bytes, got {}",
            bytes.len()
        )));
    }
    let pixels =
        bytes.chunks_exact(2).map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes"))).collect();
    Ok(BandData::from_pixels(size, pixels))
}

/// Encodes a full patch: metadata, the Sentinel-2 rasters, the Sentinel-1
/// rasters.
pub fn encode_patch(patch: &Patch, w: &mut Writer) {
    encode_patch_metadata(&patch.meta, w);
    w.seq_len(patch.s2_bands.len());
    for band in &patch.s2_bands {
        encode_band_data(band, w);
    }
    w.seq_len(patch.s1_bands.len());
    for band in &patch.s1_bands {
        encode_band_data(band, w);
    }
}

/// Decodes a patch written by [`encode_patch`].
///
/// The band *counts* and raster shapes are whatever the bytes say — decode
/// restores the encoded value exactly.  Callers that require the canonical
/// BigEarthNet layout (12 Sentinel-2 bands, 2 polarisations, per-resolution
/// sizes) must run [`Patch::validate`] on the result.
///
/// # Errors
/// Returns [`WireError`] on truncation or corrupt fields.
pub fn decode_patch(r: &mut Reader<'_>) -> Result<Patch, WireError> {
    let meta = decode_patch_metadata(r)?;
    // A raster is at least 8 bytes (size + byte-string length).
    let n_s2 = r.seq_len(8)?;
    let s2_bands = (0..n_s2).map(|_| decode_band_data(r)).collect::<Result<Vec<_>, _>>()?;
    let n_s1 = r.seq_len(8)?;
    let s1_bands = (0..n_s1).map(|_| decode_band_data(r)).collect::<Result<Vec<_>, _>>()?;
    Ok(Patch { meta, s2_bands, s1_bands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchiveGenerator, GeneratorConfig};

    fn sample_patch() -> Patch {
        ArchiveGenerator::new(GeneratorConfig::tiny(1, 33)).unwrap().generate_patch(0)
    }

    fn encoded<F: Fn(&mut Writer)>(f: F) -> Vec<u8> {
        let mut w = Writer::new();
        f(&mut w);
        w.into_bytes()
    }

    #[test]
    fn metadata_roundtrips_exactly() {
        let meta = sample_patch().meta;
        let bytes = encoded(|w| encode_patch_metadata(&meta, w));
        let mut r = Reader::new(&bytes);
        let back = decode_patch_metadata(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, meta);
        // Re-encoding is a byte-identical fixpoint.
        assert_eq!(encoded(|w| encode_patch_metadata(&back, w)), bytes);
    }

    #[test]
    fn full_patch_roundtrips_with_every_pixel() {
        let patch = sample_patch();
        let bytes = encoded(|w| encode_patch(&patch, w));
        let mut r = Reader::new(&bytes);
        let back = decode_patch(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.meta, patch.meta);
        assert_eq!(back.s2_bands, patch.s2_bands);
        assert_eq!(back.s1_bands, patch.s1_bands);
        assert_eq!(encoded(|w| encode_patch(&back, w)), bytes);
    }

    #[test]
    fn truncations_error_cleanly() {
        let patch = sample_patch();
        let bytes = encoded(|w| encode_patch(&patch, w));
        // Sampled truncation points (every offset would be slow at ~350 KB).
        for cut in (0..bytes.len()).step_by(striding(bytes.len())) {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(decode_patch(&mut r).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    fn striding(len: usize) -> usize {
        (len / 257).max(1)
    }

    #[test]
    fn corrupt_fields_are_rejected() {
        let meta = sample_patch().meta;
        // Unknown country.
        let mut w = Writer::new();
        w.u32(0);
        w.str("x");
        for _ in 0..4 {
            w.f64(0.0);
        }
        w.u64(0);
        w.str("Atlantis");
        w.u16(2017);
        w.u8(7);
        w.u8(1);
        let mut r = Reader::new(w.as_bytes());
        assert!(matches!(decode_patch_metadata(&mut r), Err(WireError::Corrupt(_))));

        // Invalid date (month 13).
        let mut bytes = encoded(|w| encode_patch_metadata(&meta, w));
        let month_at = bytes.len() - 2;
        bytes[month_at] = 13;
        assert!(decode_patch_metadata(&mut Reader::new(&bytes)).is_err());

        // Raster byte count disagreeing with its size.
        let mut w = Writer::new();
        w.u32(4);
        w.bytes(&[0u8; 10]); // 4×4 needs 32 bytes
        assert!(matches!(
            decode_band_data(&mut Reader::new(w.as_bytes())),
            Err(WireError::Corrupt(_))
        ));
    }
}
