//! Sentinel-2 and Sentinel-1 band definitions and raster containers.
//!
//! Each BigEarthNet Sentinel-2 patch keeps 12 of the 13 multispectral bands
//! (band 10 carries no surface information and is excluded, §2.1).  Bands
//! come in three spatial resolutions: 10 m bands are 120 × 120 px sections,
//! 20 m bands 60 × 60 px, and 60 m bands 20 × 20 px.  Sentinel-1 patches
//! contain the VV and VH dual-polarised SAR channels at 10 m.

/// Spatial resolution classes of Sentinel-2 bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 10 m ground sampling distance → 120 × 120 px patch section.
    R10m,
    /// 20 m ground sampling distance → 60 × 60 px patch section.
    R20m,
    /// 60 m ground sampling distance → 20 × 20 px patch section.
    R60m,
}

impl Resolution {
    /// The patch section side length in pixels for this resolution.
    pub fn patch_size(self) -> usize {
        match self {
            Resolution::R10m => 120,
            Resolution::R20m => 60,
            Resolution::R60m => 20,
        }
    }

    /// Ground sampling distance in metres.
    pub fn meters(self) -> u32 {
        match self {
            Resolution::R10m => 10,
            Resolution::R20m => 20,
            Resolution::R60m => 60,
        }
    }
}

/// The 12 Sentinel-2 bands kept in BigEarthNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Band {
    B01,
    B02,
    B03,
    B04,
    B05,
    B06,
    B07,
    B08,
    B8A,
    B09,
    B11,
    B12,
}

/// All 12 Sentinel-2 bands in BigEarthNet order.
pub const SENTINEL2_BANDS: [Band; 12] = [
    Band::B01,
    Band::B02,
    Band::B03,
    Band::B04,
    Band::B05,
    Band::B06,
    Band::B07,
    Band::B08,
    Band::B8A,
    Band::B09,
    Band::B11,
    Band::B12,
];

impl Band {
    /// Number of Sentinel-2 bands per patch.
    pub const COUNT: usize = 12;

    /// Dense index of the band in `0..12`.
    pub fn index(self) -> usize {
        SENTINEL2_BANDS.iter().position(|b| *b == self).expect("band is in SENTINEL2_BANDS")
    }

    /// Band name as used in BigEarthNet file names, e.g. `"B8A"`.
    pub fn name(self) -> &'static str {
        match self {
            Band::B01 => "B01",
            Band::B02 => "B02",
            Band::B03 => "B03",
            Band::B04 => "B04",
            Band::B05 => "B05",
            Band::B06 => "B06",
            Band::B07 => "B07",
            Band::B08 => "B08",
            Band::B8A => "B8A",
            Band::B09 => "B09",
            Band::B11 => "B11",
            Band::B12 => "B12",
        }
    }

    /// The band's spatial resolution class.
    pub fn resolution(self) -> Resolution {
        match self {
            Band::B02 | Band::B03 | Band::B04 | Band::B08 => Resolution::R10m,
            Band::B05 | Band::B06 | Band::B07 | Band::B8A | Band::B11 | Band::B12 => {
                Resolution::R20m
            }
            Band::B01 | Band::B09 => Resolution::R60m,
        }
    }

    /// Central wavelength in nanometres (Sentinel-2A values).
    pub fn wavelength_nm(self) -> f64 {
        match self {
            Band::B01 => 442.7,
            Band::B02 => 492.4,
            Band::B03 => 559.8,
            Band::B04 => 664.6,
            Band::B05 => 704.1,
            Band::B06 => 740.5,
            Band::B07 => 782.8,
            Band::B08 => 832.8,
            Band::B8A => 864.7,
            Band::B09 => 945.1,
            Band::B11 => 1613.7,
            Band::B12 => 2202.4,
        }
    }

    /// Whether this band is one of the RGB display bands (B04, B03, B02).
    pub fn is_rgb(self) -> bool {
        matches!(self, Band::B02 | Band::B03 | Band::B04)
    }
}

/// Sentinel-1 dual polarisations available in BigEarthNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarization {
    /// Vertical transmit, vertical receive.
    VV,
    /// Vertical transmit, horizontal receive.
    VH,
}

impl Polarization {
    /// Both polarisations.
    pub const ALL: [Polarization; 2] = [Polarization::VV, Polarization::VH];

    /// Channel name.
    pub fn name(self) -> &'static str {
        match self {
            Polarization::VV => "VV",
            Polarization::VH => "VH",
        }
    }
}

/// A single-band raster: `size × size` samples stored row-major as `u16`
/// digital numbers (the storage type of Sentinel-2 L2A products).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandData {
    size: usize,
    pixels: Vec<u16>,
}

impl BandData {
    /// Creates a raster filled with zeros.
    pub fn zeros(size: usize) -> Self {
        Self { size, pixels: vec![0; size * size] }
    }

    /// Creates a raster from row-major pixel data.
    ///
    /// # Panics
    /// Panics if `pixels.len() != size * size`.
    pub fn from_pixels(size: usize, pixels: Vec<u16>) -> Self {
        assert_eq!(pixels.len(), size * size, "pixel buffer does not match size × size");
        Self { size, pixels }
    }

    /// Side length in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Row-major pixel slice.
    pub fn pixels(&self) -> &[u16] {
        &self.pixels
    }

    /// Mutable row-major pixel slice.
    pub fn pixels_mut(&mut self) -> &mut [u16] {
        &mut self.pixels
    }

    /// The pixel at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u16 {
        self.pixels[row * self.size + col]
    }

    /// Sets the pixel at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: u16) {
        self.pixels[row * self.size + col] = v;
    }

    /// Mean digital number.
    pub fn mean(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Population standard deviation of digital numbers.
    pub fn std_dev(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let var = self.pixels.iter().map(|&p| (p as f64 - m).powi(2)).sum::<f64>()
            / self.pixels.len() as f64;
        var.sqrt()
    }

    /// Minimum and maximum digital numbers.
    pub fn min_max(&self) -> (u16, u16) {
        let mut lo = u16::MAX;
        let mut hi = 0u16;
        for &p in &self.pixels {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        if self.pixels.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// The value at the given percentile (0.0..=100.0) of the pixel
    /// distribution; used for contrast-stretching when rendering RGB.
    pub fn percentile(&self, pct: f64) -> u16 {
        if self.pixels.is_empty() {
            return 0;
        }
        let mut sorted = self.pixels.clone();
        sorted.sort_unstable();
        let pct = pct.clamp(0.0, 100.0);
        let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    }

    /// Mean of a half-open sub-window `[r0, r1) × [c0, c1)`, clamped to the
    /// raster bounds.  Used by the spatial-pyramid feature extractor.
    pub fn window_mean(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> f64 {
        let r1 = r1.min(self.size);
        let c1 = c1.min(self.size);
        if r0 >= r1 || c0 >= c1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for r in r0..r1 {
            for c in c0..c1 {
                acc += self.get(r, c) as f64;
            }
        }
        acc / ((r1 - r0) * (c1 - c0)) as f64
    }

    /// Mean absolute horizontal+vertical gradient; a cheap texture-energy
    /// statistic used by the feature extractor.
    pub fn gradient_energy(&self) -> f64 {
        if self.size < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut n = 0usize;
        for r in 0..self.size {
            for c in 0..self.size - 1 {
                acc += (self.get(r, c) as f64 - self.get(r, c + 1) as f64).abs();
                n += 1;
            }
        }
        for r in 0..self.size - 1 {
            for c in 0..self.size {
                acc += (self.get(r, c) as f64 - self.get(r + 1, c) as f64).abs();
                n += 1;
            }
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_bands_with_unique_indices_and_names() {
        assert_eq!(SENTINEL2_BANDS.len(), 12);
        assert_eq!(Band::COUNT, 12);
        let mut names: Vec<&str> = SENTINEL2_BANDS.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        for (i, b) in SENTINEL2_BANDS.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn band_resolutions_match_bigearthnet_layout() {
        // 4 bands at 10 m, 6 at 20 m, 2 at 60 m.
        let r10 = SENTINEL2_BANDS.iter().filter(|b| b.resolution() == Resolution::R10m).count();
        let r20 = SENTINEL2_BANDS.iter().filter(|b| b.resolution() == Resolution::R20m).count();
        let r60 = SENTINEL2_BANDS.iter().filter(|b| b.resolution() == Resolution::R60m).count();
        assert_eq!((r10, r20, r60), (4, 6, 2));
        assert_eq!(Resolution::R10m.patch_size(), 120);
        assert_eq!(Resolution::R20m.patch_size(), 60);
        assert_eq!(Resolution::R60m.patch_size(), 20);
        assert_eq!(Resolution::R10m.meters(), 10);
    }

    #[test]
    fn rgb_bands_are_b04_b03_b02() {
        let rgb: Vec<Band> = SENTINEL2_BANDS.iter().copied().filter(|b| b.is_rgb()).collect();
        assert_eq!(rgb, vec![Band::B02, Band::B03, Band::B04]);
        for b in rgb {
            assert_eq!(b.resolution(), Resolution::R10m);
        }
    }

    #[test]
    fn wavelengths_increase_from_b01_to_b12() {
        assert!(Band::B01.wavelength_nm() < Band::B04.wavelength_nm());
        assert!(Band::B08.wavelength_nm() < Band::B11.wavelength_nm());
        assert!(Band::B11.wavelength_nm() < Band::B12.wavelength_nm());
    }

    #[test]
    fn polarizations() {
        assert_eq!(Polarization::ALL.len(), 2);
        assert_eq!(Polarization::VV.name(), "VV");
        assert_eq!(Polarization::VH.name(), "VH");
    }

    #[test]
    fn band_data_accessors() {
        let mut d = BandData::zeros(4);
        assert_eq!(d.size(), 4);
        assert_eq!(d.pixels().len(), 16);
        d.set(1, 2, 500);
        assert_eq!(d.get(1, 2), 500);
        assert_eq!(d.pixels()[4 + 2], 500);
    }

    #[test]
    #[should_panic(expected = "pixel buffer")]
    fn from_pixels_panics_on_size_mismatch() {
        let _ = BandData::from_pixels(3, vec![0u16; 8]);
    }

    #[test]
    fn band_data_statistics() {
        let d = BandData::from_pixels(2, vec![0, 100, 200, 300]);
        assert!((d.mean() - 150.0).abs() < 1e-9);
        let (lo, hi) = d.min_max();
        assert_eq!((lo, hi), (0, 300));
        assert!(d.std_dev() > 0.0);
        assert_eq!(d.percentile(0.0), 0);
        assert_eq!(d.percentile(100.0), 300);
        assert_eq!(d.percentile(50.0), 200); // nearest-rank rounding
    }

    #[test]
    fn empty_band_statistics_are_zero() {
        let d = BandData::from_pixels(0, vec![]);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.std_dev(), 0.0);
        assert_eq!(d.min_max(), (0, 0));
        assert_eq!(d.percentile(50.0), 0);
        assert_eq!(d.gradient_energy(), 0.0);
    }

    #[test]
    fn window_mean_clamps_and_handles_degenerate_windows() {
        let d = BandData::from_pixels(2, vec![10, 20, 30, 40]);
        assert!((d.window_mean(0, 2, 0, 2) - 25.0).abs() < 1e-9);
        assert!((d.window_mean(0, 1, 0, 1) - 10.0).abs() < 1e-9);
        assert!((d.window_mean(0, 10, 0, 10) - 25.0).abs() < 1e-9); // clamped
        assert_eq!(d.window_mean(1, 1, 0, 2), 0.0); // empty window
    }

    #[test]
    fn gradient_energy_flat_vs_textured() {
        let flat = BandData::from_pixels(3, vec![100; 9]);
        assert_eq!(flat.gradient_energy(), 0.0);
        let textured = BandData::from_pixels(3, vec![0, 200, 0, 200, 0, 200, 0, 200, 0]);
        assert!(textured.gradient_energy() > 100.0);
    }
}
