//! BigEarthNet image patches and their metadata.

use crate::bands::{Band, BandData, Polarization, SENTINEL2_BANDS};
use crate::countries::Country;
use crate::labels::LabelSet;
use eq_geo::BBox;

/// A calendar date within the BigEarthNet acquisition window
/// (June 2017 – May 2018, §2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AcquisitionDate {
    /// Four-digit year.
    pub year: u16,
    /// Month 1..=12.
    pub month: u8,
    /// Day 1..=31 (not validated against month length beyond 31).
    pub day: u8,
}

impl AcquisitionDate {
    /// Creates a date, validating month and day ranges.
    pub fn new(year: u16, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        Some(Self { year, month, day })
    }

    /// Days since 0000-01-01 in a simplified 365.25-day calendar; only used
    /// for ordering and range queries, never for display.
    pub fn ordinal(&self) -> i64 {
        self.year as i64 * 372 + (self.month as i64 - 1) * 31 + (self.day as i64 - 1)
    }

    /// ISO-like `YYYY-MM-DD` formatting, as used in the metadata store.
    pub fn to_iso(&self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// Parses a `YYYY-MM-DD` string.
    pub fn from_iso(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let year = parts.next()?.parse().ok()?;
        let month = parts.next()?.parse().ok()?;
        let day = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Self::new(year, month, day)
    }

    /// Compact `YYYYMMDD` form used inside patch names.
    pub fn to_compact(&self) -> String {
        format!("{:04}{:02}{:02}", self.year, self.month, self.day)
    }

    /// The meteorological season of the date.
    pub fn season(&self) -> Season {
        match self.month {
            3..=5 => Season::Spring,
            6..=8 => Season::Summer,
            9..=11 => Season::Autumn,
            _ => Season::Winter,
        }
    }

    /// Whether the date falls inside the BigEarthNet acquisition window
    /// (June 2017 to May 2018 inclusive).
    pub fn in_bigearthnet_window(&self) -> bool {
        let start = AcquisitionDate { year: 2017, month: 6, day: 1 };
        let end = AcquisitionDate { year: 2018, month: 5, day: 31 };
        *self >= start && *self <= end
    }
}

impl std::fmt::Display for AcquisitionDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_iso())
    }
}

/// Meteorological seasons, one of the query-panel filters (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Season {
    Spring,
    Summer,
    Autumn,
    Winter,
}

impl Season {
    /// All four seasons.
    pub const ALL: [Season; 4] = [Season::Spring, Season::Summer, Season::Autumn, Season::Winter];

    /// Season name.
    pub fn name(self) -> &'static str {
        match self {
            Season::Spring => "Spring",
            Season::Summer => "Summer",
            Season::Autumn => "Autumn",
            Season::Winter => "Winter",
        }
    }

    /// Parses a season name (case-insensitive).
    pub fn from_name(s: &str) -> Option<Season> {
        Season::ALL.iter().copied().find(|x| x.name().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for Season {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which satellite(s) a record refers to; one of the query-panel filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Satellite {
    Sentinel1,
    Sentinel2,
}

impl Satellite {
    /// Both satellites.
    pub const ALL: [Satellite; 2] = [Satellite::Sentinel1, Satellite::Sentinel2];

    /// Satellite name.
    pub fn name(self) -> &'static str {
        match self {
            Satellite::Sentinel1 => "Sentinel-1",
            Satellite::Sentinel2 => "Sentinel-2",
        }
    }
}

/// A unique patch identifier: the dense archive index.
///
/// Patch ids are assigned contiguously by the generator; the id doubles as
/// the row index into feature/code matrices, which keeps the retrieval
/// pipeline allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatchId(pub u32);

impl PatchId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PatchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "patch#{}", self.0)
    }
}

/// Everything EarthQube stores about a patch in the *metadata* collection:
/// the patch name (primary key of the image-data collection), the bounding
/// rectangle, labels, country, acquisition date, season (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct PatchMetadata {
    /// Dense archive id.
    pub id: PatchId,
    /// BigEarthNet-style patch name, e.g.
    /// `S2A_MSIL2A_20170717T113321_T29SNC_23_42`.
    pub name: String,
    /// Bounding rectangle of the patch footprint.
    pub bbox: BBox,
    /// Multi-label annotation (CLC Level-3).
    pub labels: LabelSet,
    /// Country of acquisition.
    pub country: Country,
    /// Acquisition date.
    pub date: AcquisitionDate,
}

impl PatchMetadata {
    /// The meteorological season of the acquisition.
    pub fn season(&self) -> Season {
        self.date.season()
    }
}

/// A full BigEarthNet-MM patch: metadata plus the Sentinel-2 band rasters
/// and the Sentinel-1 polarisation rasters.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// The patch metadata (shared with the metadata collection).
    pub meta: PatchMetadata,
    /// The 12 Sentinel-2 band rasters, indexed by [`Band::index`].
    pub s2_bands: Vec<BandData>,
    /// The two Sentinel-1 rasters (VV, VH) at 120 × 120 px.
    pub s1_bands: Vec<BandData>,
}

impl Patch {
    /// Returns the raster of a Sentinel-2 band.
    pub fn band(&self, band: Band) -> &BandData {
        &self.s2_bands[band.index()]
    }

    /// Returns the raster of a Sentinel-1 polarisation.
    pub fn polarization(&self, pol: Polarization) -> &BandData {
        match pol {
            Polarization::VV => &self.s1_bands[0],
            Polarization::VH => &self.s1_bands[1],
        }
    }

    /// Validates that every band raster has the size its resolution demands.
    pub fn validate(&self) -> Result<(), String> {
        if self.s2_bands.len() != Band::COUNT {
            return Err(format!(
                "expected {} Sentinel-2 bands, got {}",
                Band::COUNT,
                self.s2_bands.len()
            ));
        }
        for band in SENTINEL2_BANDS {
            let want = band.resolution().patch_size();
            let got = self.s2_bands[band.index()].size();
            if got != want {
                return Err(format!("band {} has size {got}, expected {want}", band.name()));
            }
        }
        if self.s1_bands.len() != 2 {
            return Err(format!(
                "expected 2 Sentinel-1 polarisations, got {}",
                self.s1_bands.len()
            ));
        }
        for (i, b) in self.s1_bands.iter().enumerate() {
            if b.size() != 120 {
                return Err(format!("Sentinel-1 raster {i} has size {}, expected 120", b.size()));
            }
        }
        Ok(())
    }

    /// Renders an 8-bit RGB thumbnail by combining the B04/B03/B02 bands
    /// with a 2–98 percentile contrast stretch, the way EarthQube's
    /// *rendered images* collection is produced (§3.2).
    ///
    /// Returns `(size, rgb_pixels)` with `rgb_pixels.len() == size*size*3`.
    pub fn render_rgb(&self) -> (usize, Vec<u8>) {
        let r = self.band(Band::B04);
        let g = self.band(Band::B03);
        let b = self.band(Band::B02);
        let size = r.size();
        let mut out = vec![0u8; size * size * 3];
        for (ch, band) in [r, g, b].into_iter().enumerate() {
            let lo = band.percentile(2.0) as f64;
            let hi = (band.percentile(98.0) as f64).max(lo + 1.0);
            for (i, &px) in band.pixels().iter().enumerate() {
                let v = ((px as f64 - lo) / (hi - lo) * 255.0).clamp(0.0, 255.0) as u8;
                out[i * 3 + ch] = v;
            }
        }
        (size, out)
    }
}

/// Builds the BigEarthNet-style patch name for a tile/date/grid position.
pub fn patch_name(country: Country, date: AcquisitionDate, grid_x: u32, grid_y: u32) -> String {
    format!("S2A_MSIL2A_{}T100031_{}_{}_{}", date.to_compact(), country.tile_code(), grid_x, grid_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    #[test]
    fn date_validation_and_roundtrip() {
        assert!(AcquisitionDate::new(2017, 13, 1).is_none());
        assert!(AcquisitionDate::new(2017, 0, 1).is_none());
        assert!(AcquisitionDate::new(2017, 6, 32).is_none());
        let d = AcquisitionDate::new(2017, 7, 17).unwrap();
        assert_eq!(d.to_iso(), "2017-07-17");
        assert_eq!(AcquisitionDate::from_iso("2017-07-17"), Some(d));
        assert_eq!(AcquisitionDate::from_iso("2017-07"), None);
        assert_eq!(AcquisitionDate::from_iso("2017-07-17-00"), None);
        assert_eq!(AcquisitionDate::from_iso("garbage"), None);
        assert_eq!(d.to_compact(), "20170717");
    }

    #[test]
    fn date_ordering_via_ordinal() {
        let a = AcquisitionDate::new(2017, 6, 30).unwrap();
        let b = AcquisitionDate::new(2017, 7, 1).unwrap();
        let c = AcquisitionDate::new(2018, 1, 1).unwrap();
        assert!(a.ordinal() < b.ordinal());
        assert!(b.ordinal() < c.ordinal());
        assert!(a < b && b < c);
    }

    #[test]
    fn seasons_from_months() {
        assert_eq!(AcquisitionDate::new(2017, 6, 15).unwrap().season(), Season::Summer);
        assert_eq!(AcquisitionDate::new(2017, 10, 15).unwrap().season(), Season::Autumn);
        assert_eq!(AcquisitionDate::new(2018, 1, 15).unwrap().season(), Season::Winter);
        assert_eq!(AcquisitionDate::new(2018, 4, 15).unwrap().season(), Season::Spring);
        assert_eq!(Season::from_name("spring"), Some(Season::Spring));
        assert_eq!(Season::from_name("monsoon"), None);
    }

    #[test]
    fn bigearthnet_window_check() {
        assert!(AcquisitionDate::new(2017, 6, 1).unwrap().in_bigearthnet_window());
        assert!(AcquisitionDate::new(2018, 5, 31).unwrap().in_bigearthnet_window());
        assert!(!AcquisitionDate::new(2017, 5, 31).unwrap().in_bigearthnet_window());
        assert!(!AcquisitionDate::new(2018, 6, 1).unwrap().in_bigearthnet_window());
    }

    #[test]
    fn patch_name_contains_tile_and_date() {
        let d = AcquisitionDate::new(2017, 7, 17).unwrap();
        let n = patch_name(Country::Portugal, d, 23, 42);
        assert_eq!(n, "S2A_MSIL2A_20170717T100031_T29SNC_23_42");
    }

    fn tiny_valid_patch() -> Patch {
        let meta = PatchMetadata {
            id: PatchId(0),
            name: "test".into(),
            bbox: BBox::new(0.0, 0.0, 0.01, 0.01).unwrap(),
            labels: LabelSet::from_labels([Label::SeaAndOcean]),
            country: Country::Portugal,
            date: AcquisitionDate::new(2017, 8, 1).unwrap(),
        };
        let s2_bands =
            SENTINEL2_BANDS.iter().map(|b| BandData::zeros(b.resolution().patch_size())).collect();
        let s1_bands = vec![BandData::zeros(120), BandData::zeros(120)];
        Patch { meta, s2_bands, s1_bands }
    }

    #[test]
    fn patch_validation_accepts_correct_layout() {
        assert_eq!(tiny_valid_patch().validate(), Ok(()));
    }

    #[test]
    fn patch_validation_rejects_wrong_band_count_or_size() {
        let mut p = tiny_valid_patch();
        p.s2_bands.pop();
        assert!(p.validate().is_err());

        let mut p = tiny_valid_patch();
        p.s2_bands[Band::B02.index()] = BandData::zeros(60);
        assert!(p.validate().unwrap_err().contains("B02"));

        let mut p = tiny_valid_patch();
        p.s1_bands[0] = BandData::zeros(60);
        assert!(p.validate().is_err());
    }

    #[test]
    fn band_and_polarization_accessors() {
        let p = tiny_valid_patch();
        assert_eq!(p.band(Band::B01).size(), 20);
        assert_eq!(p.band(Band::B08).size(), 120);
        assert_eq!(p.polarization(Polarization::VV).size(), 120);
        assert_eq!(p.polarization(Polarization::VH).size(), 120);
    }

    #[test]
    fn render_rgb_produces_correct_buffer_shape() {
        let mut p = tiny_valid_patch();
        // Give the RGB bands some contrast so stretching has work to do.
        for (i, px) in p.s2_bands[Band::B04.index()].pixels_mut().iter_mut().enumerate() {
            *px = (i % 4000) as u16;
        }
        let (size, rgb) = p.render_rgb();
        assert_eq!(size, 120);
        assert_eq!(rgb.len(), 120 * 120 * 3);
        // Red channel has non-trivial dynamic range after the stretch.
        let reds: Vec<u8> = rgb.iter().step_by(3).copied().collect();
        assert!(reds.iter().any(|&v| v > 200));
        assert!(reds.iter().any(|&v| v < 50));
    }

    #[test]
    fn patch_id_display_and_index() {
        assert_eq!(PatchId(7).index(), 7);
        assert_eq!(PatchId(7).to_string(), "patch#7");
    }

    #[test]
    fn satellite_names() {
        assert_eq!(Satellite::Sentinel1.name(), "Sentinel-1");
        assert_eq!(Satellite::Sentinel2.name(), "Sentinel-2");
        assert_eq!(Satellite::ALL.len(), 2);
    }
}
