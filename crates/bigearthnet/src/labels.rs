//! The CORINE Land Cover (CLC) 2018 nomenclature used by BigEarthNet.
//!
//! Each BigEarthNet patch is annotated with one or more Level-3 CLC classes
//! (the "thematically most detailed" level, §2.1 of the paper).  The classes
//! form a three-level hierarchy (Level-1 → Level-2 → Level-3) that the
//! EarthQube query panel exposes for label-based filtering (§3.1).
//!
//! BigEarthNet uses the 43 Level-3 classes that actually occur in its ten
//! countries.  This module hard-codes that nomenclature, the hierarchy, a
//! display colour per class (used for the label-statistics bar chart of
//! Figure 2-4) and the single-character encoding that EarthQube uses to
//! avoid "manipulation of long strings" in the metadata store (§3.2).

/// CLC Level-1 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level1 {
    /// 1 — Artificial surfaces.
    ArtificialSurfaces,
    /// 2 — Agricultural areas.
    AgriculturalAreas,
    /// 3 — Forest and semi-natural areas.
    ForestAndSeminatural,
    /// 4 — Wetlands.
    Wetlands,
    /// 5 — Water bodies.
    WaterBodies,
}

impl Level1 {
    /// All Level-1 categories in CLC order.
    pub const ALL: [Level1; 5] = [
        Level1::ArtificialSurfaces,
        Level1::AgriculturalAreas,
        Level1::ForestAndSeminatural,
        Level1::Wetlands,
        Level1::WaterBodies,
    ];

    /// The CLC numeric code of the category (1..=5).
    pub fn code(self) -> u8 {
        match self {
            Level1::ArtificialSurfaces => 1,
            Level1::AgriculturalAreas => 2,
            Level1::ForestAndSeminatural => 3,
            Level1::Wetlands => 4,
            Level1::WaterBodies => 5,
        }
    }

    /// Human-readable CLC name.
    pub fn name(self) -> &'static str {
        match self {
            Level1::ArtificialSurfaces => "Artificial surfaces",
            Level1::AgriculturalAreas => "Agricultural areas",
            Level1::ForestAndSeminatural => "Forest and semi natural areas",
            Level1::Wetlands => "Wetlands",
            Level1::WaterBodies => "Water bodies",
        }
    }
}

/// CLC Level-2 categories (the 15 that occur in BigEarthNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level2 {
    /// 1.1 — Urban fabric.
    UrbanFabric,
    /// 1.2 — Industrial, commercial and transport units.
    IndustrialCommercialTransport,
    /// 1.3 — Mine, dump and construction sites.
    MineDumpConstruction,
    /// 1.4 — Artificial, non-agricultural vegetated areas.
    ArtificialVegetated,
    /// 2.1 — Arable land.
    ArableLand,
    /// 2.2 — Permanent crops.
    PermanentCrops,
    /// 2.3 — Pastures.
    Pastures,
    /// 2.4 — Heterogeneous agricultural areas.
    HeterogeneousAgricultural,
    /// 3.1 — Forests.
    Forests,
    /// 3.2 — Scrub and/or herbaceous vegetation associations.
    ScrubHerbaceous,
    /// 3.3 — Open spaces with little or no vegetation.
    OpenSpaces,
    /// 4.1 — Inland wetlands.
    InlandWetlands,
    /// 4.2 — Maritime wetlands.
    MaritimeWetlands,
    /// 5.1 — Inland waters.
    InlandWaters,
    /// 5.2 — Marine waters.
    MarineWaters,
}

impl Level2 {
    /// All Level-2 categories in CLC order.
    pub const ALL: [Level2; 15] = [
        Level2::UrbanFabric,
        Level2::IndustrialCommercialTransport,
        Level2::MineDumpConstruction,
        Level2::ArtificialVegetated,
        Level2::ArableLand,
        Level2::PermanentCrops,
        Level2::Pastures,
        Level2::HeterogeneousAgricultural,
        Level2::Forests,
        Level2::ScrubHerbaceous,
        Level2::OpenSpaces,
        Level2::InlandWetlands,
        Level2::MaritimeWetlands,
        Level2::InlandWaters,
        Level2::MarineWaters,
    ];

    /// The CLC two-digit code, e.g. `31` for Forests.
    pub fn code(self) -> u8 {
        match self {
            Level2::UrbanFabric => 11,
            Level2::IndustrialCommercialTransport => 12,
            Level2::MineDumpConstruction => 13,
            Level2::ArtificialVegetated => 14,
            Level2::ArableLand => 21,
            Level2::PermanentCrops => 22,
            Level2::Pastures => 23,
            Level2::HeterogeneousAgricultural => 24,
            Level2::Forests => 31,
            Level2::ScrubHerbaceous => 32,
            Level2::OpenSpaces => 33,
            Level2::InlandWetlands => 41,
            Level2::MaritimeWetlands => 42,
            Level2::InlandWaters => 51,
            Level2::MarineWaters => 52,
        }
    }

    /// Human-readable CLC name.
    pub fn name(self) -> &'static str {
        match self {
            Level2::UrbanFabric => "Urban fabric",
            Level2::IndustrialCommercialTransport => "Industrial, commercial and transport units",
            Level2::MineDumpConstruction => "Mine, dump and construction sites",
            Level2::ArtificialVegetated => "Artificial, non-agricultural vegetated areas",
            Level2::ArableLand => "Arable land",
            Level2::PermanentCrops => "Permanent crops",
            Level2::Pastures => "Pastures",
            Level2::HeterogeneousAgricultural => "Heterogeneous agricultural areas",
            Level2::Forests => "Forest",
            Level2::ScrubHerbaceous => "Scrub and/or herbaceous vegetation associations",
            Level2::OpenSpaces => "Open spaces with little or no vegetation",
            Level2::InlandWetlands => "Inland wetlands",
            Level2::MaritimeWetlands => "Maritime wetlands",
            Level2::InlandWaters => "Inland waters",
            Level2::MarineWaters => "Marine waters",
        }
    }

    /// The Level-1 parent category.
    pub fn parent(self) -> Level1 {
        match self.code() / 10 {
            1 => Level1::ArtificialSurfaces,
            2 => Level1::AgriculturalAreas,
            3 => Level1::ForestAndSeminatural,
            4 => Level1::Wetlands,
            _ => Level1::WaterBodies,
        }
    }

    /// The Level-3 classes below this category.
    pub fn children(self) -> Vec<Label> {
        Label::ALL.iter().copied().filter(|l| l.level2() == self).collect()
    }
}

/// The 43 CLC Level-3 land-cover classes used to annotate BigEarthNet.
///
/// The variant order follows the CLC numeric codes, so the `as usize`
/// discriminant is a stable dense index in `0..43` used throughout the
/// workspace (ground-truth matrices, statistics vectors, signatures, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // the names are the documentation
pub enum Label {
    ContinuousUrbanFabric = 0,
    DiscontinuousUrbanFabric,
    IndustrialOrCommercialUnits,
    RoadAndRailNetworks,
    PortAreas,
    Airports,
    MineralExtractionSites,
    DumpSites,
    ConstructionSites,
    GreenUrbanAreas,
    SportAndLeisureFacilities,
    NonIrrigatedArableLand,
    PermanentlyIrrigatedLand,
    RiceFields,
    Vineyards,
    FruitTreesAndBerryPlantations,
    OliveGroves,
    Pastures,
    AnnualCropsWithPermanentCrops,
    ComplexCultivationPatterns,
    LandPrincipallyOccupiedByAgriculture,
    AgroForestryAreas,
    BroadLeavedForest,
    ConiferousForest,
    MixedForest,
    NaturalGrassland,
    MoorsAndHeathland,
    SclerophyllousVegetation,
    TransitionalWoodlandShrub,
    BeachesDunesSands,
    BareRock,
    SparselyVegetatedAreas,
    BurntAreas,
    InlandMarshes,
    Peatbogs,
    SaltMarshes,
    Salines,
    IntertidalFlats,
    WaterCourses,
    WaterBodies,
    CoastalLagoons,
    Estuaries,
    SeaAndOcean,
}

impl Label {
    /// The number of Level-3 classes.
    pub const COUNT: usize = 43;

    /// All Level-3 classes, ordered by CLC code (i.e. by dense index).
    pub const ALL: [Label; Label::COUNT] = [
        Label::ContinuousUrbanFabric,
        Label::DiscontinuousUrbanFabric,
        Label::IndustrialOrCommercialUnits,
        Label::RoadAndRailNetworks,
        Label::PortAreas,
        Label::Airports,
        Label::MineralExtractionSites,
        Label::DumpSites,
        Label::ConstructionSites,
        Label::GreenUrbanAreas,
        Label::SportAndLeisureFacilities,
        Label::NonIrrigatedArableLand,
        Label::PermanentlyIrrigatedLand,
        Label::RiceFields,
        Label::Vineyards,
        Label::FruitTreesAndBerryPlantations,
        Label::OliveGroves,
        Label::Pastures,
        Label::AnnualCropsWithPermanentCrops,
        Label::ComplexCultivationPatterns,
        Label::LandPrincipallyOccupiedByAgriculture,
        Label::AgroForestryAreas,
        Label::BroadLeavedForest,
        Label::ConiferousForest,
        Label::MixedForest,
        Label::NaturalGrassland,
        Label::MoorsAndHeathland,
        Label::SclerophyllousVegetation,
        Label::TransitionalWoodlandShrub,
        Label::BeachesDunesSands,
        Label::BareRock,
        Label::SparselyVegetatedAreas,
        Label::BurntAreas,
        Label::InlandMarshes,
        Label::Peatbogs,
        Label::SaltMarshes,
        Label::Salines,
        Label::IntertidalFlats,
        Label::WaterCourses,
        Label::WaterBodies,
        Label::CoastalLagoons,
        Label::Estuaries,
        Label::SeaAndOcean,
    ];

    /// The dense index of the class in `0..43`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The class with the given dense index, if `idx < 43`.
    pub fn from_index(idx: usize) -> Option<Label> {
        Label::ALL.get(idx).copied()
    }

    /// The three-digit CLC code, e.g. `312` for Coniferous forest.
    pub fn clc_code(self) -> u16 {
        const CODES: [u16; Label::COUNT] = [
            111, 112, 121, 122, 123, 124, 131, 132, 133, 141, 142, 211, 212, 213, 221, 222, 223,
            231, 241, 242, 243, 244, 311, 312, 313, 321, 322, 323, 324, 331, 332, 333, 334, 411,
            412, 421, 422, 423, 511, 512, 521, 522, 523,
        ];
        CODES[self.index()]
    }

    /// The class with the given CLC code, if it is one of the 43 used here.
    pub fn from_clc_code(code: u16) -> Option<Label> {
        Label::ALL.iter().copied().find(|l| l.clc_code() == code)
    }

    /// The full CLC class name, as displayed in the EarthQube UI.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; Label::COUNT] = [
            "Continuous urban fabric",
            "Discontinuous urban fabric",
            "Industrial or commercial units",
            "Road and rail networks and associated land",
            "Port areas",
            "Airports",
            "Mineral extraction sites",
            "Dump sites",
            "Construction sites",
            "Green urban areas",
            "Sport and leisure facilities",
            "Non-irrigated arable land",
            "Permanently irrigated land",
            "Rice fields",
            "Vineyards",
            "Fruit trees and berry plantations",
            "Olive groves",
            "Pastures",
            "Annual crops associated with permanent crops",
            "Complex cultivation patterns",
            "Land principally occupied by agriculture, with significant areas of natural vegetation",
            "Agro-forestry areas",
            "Broad-leaved forest",
            "Coniferous forest",
            "Mixed forest",
            "Natural grassland",
            "Moors and heathland",
            "Sclerophyllous vegetation",
            "Transitional woodland/shrub",
            "Beaches, dunes, sands",
            "Bare rock",
            "Sparsely vegetated areas",
            "Burnt areas",
            "Inland marshes",
            "Peatbogs",
            "Salt marshes",
            "Salines",
            "Intertidal flats",
            "Water courses",
            "Water bodies",
            "Coastal lagoons",
            "Estuaries",
            "Sea and ocean",
        ];
        NAMES[self.index()]
    }

    /// Looks a class up by its full CLC name (exact match).
    pub fn from_name(name: &str) -> Option<Label> {
        Label::ALL.iter().copied().find(|l| l.name() == name)
    }

    /// The single printable-ASCII character EarthQube maps the class to in
    /// the metadata store, "avoiding the manipulation of long strings"
    /// (§3.2 of the paper).  Characters start at `'A'`.
    pub fn ascii_code(self) -> char {
        (b'A' + self.index() as u8) as char
    }

    /// The class for a given ASCII code character, if valid.
    pub fn from_ascii_code(c: char) -> Option<Label> {
        let c = c as u32;
        let base = 'A' as u32;
        if c < base {
            return None;
        }
        Label::from_index((c - base) as usize)
    }

    /// The Level-2 parent category.
    pub fn level2(self) -> Level2 {
        match self.clc_code() / 10 {
            11 => Level2::UrbanFabric,
            12 => Level2::IndustrialCommercialTransport,
            13 => Level2::MineDumpConstruction,
            14 => Level2::ArtificialVegetated,
            21 => Level2::ArableLand,
            22 => Level2::PermanentCrops,
            23 => Level2::Pastures,
            24 => Level2::HeterogeneousAgricultural,
            31 => Level2::Forests,
            32 => Level2::ScrubHerbaceous,
            33 => Level2::OpenSpaces,
            41 => Level2::InlandWetlands,
            42 => Level2::MaritimeWetlands,
            51 => Level2::InlandWaters,
            _ => Level2::MarineWaters,
        }
    }

    /// The Level-1 ancestor category.
    pub fn level1(self) -> Level1 {
        self.level2().parent()
    }

    /// A representative display colour (R, G, B) for the label-statistics
    /// bar chart (Figure 2-4 of the paper maps each label to a colour that
    /// is representative of the land-cover type).
    pub fn color(self) -> (u8, u8, u8) {
        match self.level1() {
            Level1::ArtificialSurfaces => (230, 0, 77),
            Level1::AgriculturalAreas => (255, 234, 130),
            Level1::ForestAndSeminatural => (60, 150, 60),
            Level1::Wetlands => (160, 120, 200),
            Level1::WaterBodies => (0, 120, 230),
        }
    }

    /// Approximate relative frequency of the class in the real BigEarthNet
    /// archive, used by the synthetic generator to reproduce the strong
    /// class imbalance of the real data (e.g. "Mixed forest" occurs in
    /// ~180k patches while "Burnt areas" occurs in a few hundred).
    ///
    /// Values are unnormalised weights.
    pub fn prior_weight(self) -> f64 {
        use Label::*;
        match self {
            MixedForest | ConiferousForest | NonIrrigatedArableLand => 30.0,
            BroadLeavedForest
            | Pastures
            | ComplexCultivationPatterns
            | LandPrincipallyOccupiedByAgriculture
            | TransitionalWoodlandShrub => 20.0,
            SeaAndOcean | WaterBodies | DiscontinuousUrbanFabric | Peatbogs | AgroForestryAreas => {
                10.0
            }
            IndustrialOrCommercialUnits
            | OliveGroves
            | WaterCourses
            | Vineyards
            | AnnualCropsWithPermanentCrops
            | InlandMarshes
            | MoorsAndHeathland
            | NaturalGrassland
            | SclerophyllousVegetation
            | PermanentlyIrrigatedLand => 4.0,
            ContinuousUrbanFabric
            | SparselyVegetatedAreas
            | FruitTreesAndBerryPlantations
            | SaltMarshes
            | Estuaries
            | CoastalLagoons
            | RiceFields
            | MineralExtractionSites => 1.5,
            _ => 0.5,
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A view over the three-level CLC hierarchy, as exposed by the EarthQube
/// label-filter panel (Figure 2-2 of the paper).
#[derive(Debug, Default, Clone, Copy)]
pub struct LabelHierarchy;

impl LabelHierarchy {
    /// Creates the hierarchy view.
    pub fn new() -> Self {
        LabelHierarchy
    }

    /// All Level-1 categories.
    pub fn level1(&self) -> &'static [Level1] {
        &Level1::ALL
    }

    /// The Level-2 categories below a Level-1 category.
    pub fn level2_children(&self, l1: Level1) -> Vec<Level2> {
        Level2::ALL.iter().copied().filter(|l2| l2.parent() == l1).collect()
    }

    /// The Level-3 classes below a Level-2 category.
    pub fn level3_children(&self, l2: Level2) -> Vec<Label> {
        l2.children()
    }

    /// Expands a Level-2 selection into its Level-3 classes; used by the
    /// `Some` operator example in the paper ("the Level-2 class Forest
    /// comprises three types of Level-3 forest labels").
    pub fn expand_level2(&self, l2: Level2) -> Vec<Label> {
        l2.children()
    }

    /// Expands a Level-1 selection into all its Level-3 descendants.
    pub fn expand_level1(&self, l1: Level1) -> Vec<Label> {
        Label::ALL.iter().copied().filter(|l| l.level1() == l1).collect()
    }
}

/// A set of Level-3 labels, stored as a 64-bit bitmask (43 < 64 bits).
///
/// This is the representation used for patch annotations and for label
/// filtering, where set algebra (subset / intersection tests) implements the
/// three query operators of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LabelSet {
    bits: u64,
}

impl LabelSet {
    /// The empty label set.
    pub const EMPTY: LabelSet = LabelSet { bits: 0 };

    /// Creates a set from an iterator of labels.
    pub fn from_labels<I: IntoIterator<Item = Label>>(labels: I) -> Self {
        let mut s = LabelSet::EMPTY;
        for l in labels {
            s.insert(l);
        }
        s
    }

    /// Creates a set from the raw bitmask (bits ≥ 43 are ignored).
    pub fn from_bits(bits: u64) -> Self {
        LabelSet { bits: bits & ((1u64 << Label::COUNT) - 1) }
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Inserts a label.
    pub fn insert(&mut self, l: Label) {
        self.bits |= 1u64 << l.index();
    }

    /// Removes a label.
    pub fn remove(&mut self, l: Label) {
        self.bits &= !(1u64 << l.index());
    }

    /// Whether the label is present.
    #[inline]
    pub fn contains(self, l: Label) -> bool {
        self.bits & (1u64 << l.index()) != 0
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Set union.
    pub fn union(self, other: LabelSet) -> LabelSet {
        LabelSet { bits: self.bits | other.bits }
    }

    /// Set intersection.
    pub fn intersection(self, other: LabelSet) -> LabelSet {
        LabelSet { bits: self.bits & other.bits }
    }

    /// Whether `self` and `other` share at least one label (the `Some`
    /// operator of the query panel).
    #[inline]
    pub fn intersects(self, other: LabelSet) -> bool {
        self.bits & other.bits != 0
    }

    /// Whether `self` is a superset of `other` (the `At least & more`
    /// operator: the image has all the selected labels and possibly more).
    #[inline]
    pub fn is_superset(self, other: LabelSet) -> bool {
        self.bits & other.bits == other.bits
    }

    /// Number of labels shared with `other`.
    pub fn intersection_size(self, other: LabelSet) -> usize {
        (self.bits & other.bits).count_ones() as usize
    }

    /// Iterates over the labels in dense-index order.
    pub fn iter(self) -> impl Iterator<Item = Label> {
        Label::ALL.iter().copied().filter(move |l| self.contains(*l))
    }

    /// The ASCII-coded string representation used in the metadata store
    /// (one character per label, sorted by dense index).
    pub fn to_ascii_codes(self) -> String {
        self.iter().map(|l| l.ascii_code()).collect()
    }

    /// Parses an ASCII-coded label string back into a set.
    ///
    /// Unknown characters are ignored, mirroring the store's tolerance of
    /// stale encodings.
    pub fn from_ascii_codes(s: &str) -> Self {
        LabelSet::from_labels(s.chars().filter_map(Label::from_ascii_code))
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<T: IntoIterator<Item = Label>>(iter: T) -> Self {
        LabelSet::from_labels(iter)
    }
}

impl std::fmt::Display for LabelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.iter().map(|l| l.name()).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_43_classes() {
        assert_eq!(Label::ALL.len(), 43);
        assert_eq!(Label::COUNT, 43);
        // All dense indices are unique and contiguous.
        for (i, l) in Label::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(Label::from_index(i), Some(*l));
        }
        assert_eq!(Label::from_index(43), None);
    }

    #[test]
    fn clc_codes_are_unique_and_roundtrip() {
        let mut codes: Vec<u16> = Label::ALL.iter().map(|l| l.clc_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 43);
        for l in Label::ALL {
            assert_eq!(Label::from_clc_code(l.clc_code()), Some(l));
        }
        assert_eq!(Label::from_clc_code(999), None);
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut names: Vec<&str> = Label::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 43);
        for l in Label::ALL {
            assert_eq!(Label::from_name(l.name()), Some(l));
        }
        assert_eq!(Label::from_name("Lava fields"), None);
    }

    #[test]
    fn ascii_codes_are_unique_printable_and_roundtrip() {
        let mut codes: Vec<char> = Label::ALL.iter().map(|l| l.ascii_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 43);
        for l in Label::ALL {
            assert!(l.ascii_code().is_ascii_graphic());
            assert_eq!(Label::from_ascii_code(l.ascii_code()), Some(l));
        }
        assert_eq!(Label::from_ascii_code('~'), None);
        assert_eq!(Label::from_ascii_code('\u{1F600}'), None);
        assert_eq!(Label::from_ascii_code(' '), None);
    }

    #[test]
    fn hierarchy_levels_are_consistent() {
        // Every Level-3 class rolls up through Level-2 to the correct Level-1.
        assert_eq!(Label::ConiferousForest.level2(), Level2::Forests);
        assert_eq!(Label::ConiferousForest.level1(), Level1::ForestAndSeminatural);
        assert_eq!(Label::SeaAndOcean.level2(), Level2::MarineWaters);
        assert_eq!(Label::SeaAndOcean.level1(), Level1::WaterBodies);
        assert_eq!(Label::Airports.level2(), Level2::IndustrialCommercialTransport);
        assert_eq!(Label::Airports.level1(), Level1::ArtificialSurfaces);
        assert_eq!(Label::Pastures.level2(), Level2::Pastures);
        assert_eq!(Label::Peatbogs.level1(), Level1::Wetlands);

        // Level-2 parents agree with the first digit of their codes.
        for l2 in Level2::ALL {
            assert_eq!(l2.parent().code(), l2.code() / 10);
        }
    }

    #[test]
    fn level2_children_partition_the_level3_classes() {
        let mut total = 0;
        for l2 in Level2::ALL {
            let children = l2.children();
            for c in &children {
                assert_eq!(c.level2(), l2);
            }
            total += children.len();
        }
        assert_eq!(total, 43);
    }

    #[test]
    fn forest_level2_has_three_children() {
        // The paper's example: "the Level-2 class Forest ... comprises three
        // types of Level-3 forest labels".
        let children = LabelHierarchy::new().expand_level2(Level2::Forests);
        assert_eq!(children.len(), 3);
        assert!(children.contains(&Label::BroadLeavedForest));
        assert!(children.contains(&Label::ConiferousForest));
        assert!(children.contains(&Label::MixedForest));
    }

    #[test]
    fn hierarchy_expansion_level1() {
        let h = LabelHierarchy::new();
        let artificial = h.expand_level1(Level1::ArtificialSurfaces);
        assert_eq!(artificial.len(), 11);
        let water = h.expand_level1(Level1::WaterBodies);
        assert_eq!(water.len(), 5);
        let l2s = h.level2_children(Level1::AgriculturalAreas);
        assert_eq!(l2s.len(), 4);
    }

    #[test]
    fn label_set_basic_operations() {
        let mut s = LabelSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Label::Airports);
        s.insert(Label::SeaAndOcean);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Label::Airports));
        assert!(!s.contains(Label::Pastures));
        s.remove(Label::Airports);
        assert!(!s.contains(Label::Airports));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn label_set_operators_match_paper_semantics() {
        let image = LabelSet::from_labels([
            Label::ConiferousForest,
            Label::BeachesDunesSands,
            Label::SeaAndOcean,
            Label::BareRock,
        ]);
        let query = LabelSet::from_labels([
            Label::ConiferousForest,
            Label::BeachesDunesSands,
            Label::SeaAndOcean,
        ]);
        // Some: at least one selected label present.
        assert!(image.intersects(query));
        // At least & more: all selected labels present, extra ones allowed.
        assert!(image.is_superset(query));
        // Exactly: the sets are equal — not the case here.
        assert_ne!(image, query);
        let exact = LabelSet::from_labels([
            Label::ConiferousForest,
            Label::BeachesDunesSands,
            Label::SeaAndOcean,
            Label::BareRock,
        ]);
        assert_eq!(image, exact);
    }

    #[test]
    fn label_set_ascii_roundtrip() {
        let s = LabelSet::from_labels([Label::Airports, Label::Vineyards, Label::Estuaries]);
        let codes = s.to_ascii_codes();
        assert_eq!(codes.len(), 3);
        assert_eq!(LabelSet::from_ascii_codes(&codes), s);
        // Unknown characters are ignored.
        assert_eq!(LabelSet::from_ascii_codes("@@"), LabelSet::EMPTY);
    }

    #[test]
    fn label_set_from_bits_masks_out_of_range() {
        let s = LabelSet::from_bits(u64::MAX);
        assert_eq!(s.len(), 43);
    }

    #[test]
    fn prior_weights_are_positive() {
        for l in Label::ALL {
            assert!(l.prior_weight() > 0.0, "{l} has non-positive prior");
        }
        // The imbalance is at least an order of magnitude.
        assert!(Label::MixedForest.prior_weight() / Label::BurntAreas.prior_weight() >= 10.0);
    }

    #[test]
    fn colors_follow_level1_families() {
        assert_eq!(Label::ContinuousUrbanFabric.color(), Label::Airports.color());
        assert_ne!(Label::ContinuousUrbanFabric.color(), Label::SeaAndOcean.color());
    }

    #[test]
    fn display_uses_full_name() {
        assert_eq!(Label::SeaAndOcean.to_string(), "Sea and ocean");
        let s = LabelSet::from_labels([Label::SeaAndOcean]);
        assert_eq!(s.to_string(), "{Sea and ocean}");
    }
}
