//! Experiment E3 — Hamming-radius sweep: §3.3 retrieves "all images with
//! binary codes within a small hamming radius" of the query.  This bench
//! sweeps the radius, printing how many candidates each radius returns and
//! what fraction of the true 10 nearest neighbours it recovers, and measures
//! the lookup latency of the adaptive hash table and of multi-index hashing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::clustered_codes;
use eq_hashindex::{HammingIndex, HashTableIndex, LinearScanIndex, MultiIndexHashing};
use std::hint::black_box;

const N: usize = 20_000;
const BITS: u32 = 128;
const RADII: [u32; 5] = [0, 2, 4, 8, 16];

fn bench_radius_sweep(c: &mut Criterion) {
    let codes = clustered_codes(N, BITS, 128, 33);
    let query = codes[7].clone();

    let mut table = HashTableIndex::new(BITS);
    let mut mih = MultiIndexHashing::new(BITS, MultiIndexHashing::recommended_chunks(BITS, N));
    let mut linear = LinearScanIndex::new(BITS);
    for (i, code) in codes.iter().enumerate() {
        table.insert(i as u64, code.clone());
        mih.insert(i as u64, code.clone());
        linear.insert(i as u64, code.clone());
    }

    // The true 10-NN (by exhaustive scan) for recall bookkeeping.
    let truth: Vec<u64> = linear.knn(&query, 10).into_iter().map(|n| n.id).collect();

    let mut group = c.benchmark_group("e3_radius_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &radius in &RADII {
        let hits = table.radius_search(&query, radius);
        let recovered = truth.iter().filter(|id| hits.iter().any(|h| h.id == **id)).count();
        println!(
            "[E3] radius {radius:>2}: {} images returned, recall of true 10-NN = {:.2}, \
             enumeration would probe {} buckets",
            hits.len(),
            recovered as f64 / truth.len() as f64,
            table.enumeration_probes(radius)
        );

        group.bench_with_input(BenchmarkId::new("hash_table", radius), &radius, |b, &r| {
            b.iter(|| black_box(table.radius_search(black_box(&query), r)))
        });
        group.bench_with_input(
            BenchmarkId::new("multi_index_hashing", radius),
            &radius,
            |b, &r| b.iter(|| black_box(mih.radius_search(black_box(&query), r))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_radius_sweep);
criterion_main!(benches);
