//! Experiment E2 — retrieval quality and query cost of MiLaN codes versus
//! the untrained-LSH and exact-float-kNN baselines ("highly accurate
//! retrieval", §2.2 / Abstract).
//!
//! The quality numbers (mAP@10) are printed during setup; Criterion then
//! measures the per-query latency of each method on the same archive.

use criterion::{criterion_group, criterion_main, Criterion};
use eq_bench::{archive, trained_model};
use eq_hashindex::{
    DistanceMetric, FloatKnnIndex, HammingIndex, HashTableIndex, RandomHyperplaneHasher,
};
use eq_milan::{mean_average_precision, FeatureExtractor, Normalizer};
use std::hint::black_box;

const N: usize = 600;
const BITS: u32 = 64;
const K: usize = 10;

fn map_of_ranking(archive: &eq_bigearthnet::Archive, rank: impl Fn(usize) -> Vec<u64>) -> f64 {
    let mut queries = Vec::new();
    for q in (0..archive.len()).step_by(12) {
        let q_labels = archive.patches()[q].meta.labels;
        let ranked = rank(q);
        let rel: Vec<bool> = ranked
            .iter()
            .filter(|id| **id != q as u64)
            .map(|id| archive.patches()[*id as usize].meta.labels.intersects(q_labels))
            .collect();
        let total = archive
            .patches()
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != q && p.meta.labels.intersects(q_labels))
            .count();
        queries.push((rel, total));
    }
    mean_average_precision(&queries, K)
}

fn bench_retrieval_quality(c: &mut Criterion) {
    let archive = archive(N, 22);
    let model = trained_model(&archive, BITS, 22);
    let milan_codes = model.hash_archive(&archive);

    let extractor = FeatureExtractor::new();
    let features = extractor.extract_all(&archive);
    let normalizer = Normalizer::fit(&features);
    let normalized = normalizer.apply_all(&features);
    let lsh = RandomHyperplaneHasher::new(normalized[0].len(), BITS, 22);
    let lsh_codes: Vec<_> = normalized.iter().map(|f| lsh.hash(f)).collect();

    let mut milan_index = HashTableIndex::new(BITS);
    let mut lsh_index = HashTableIndex::new(BITS);
    let mut float_index = FloatKnnIndex::new(normalized[0].len(), DistanceMetric::Euclidean);
    for i in 0..N {
        milan_index.insert(i as u64, milan_codes[i].clone());
        lsh_index.insert(i as u64, lsh_codes[i].clone());
        float_index.insert(i as u64, &normalized[i]);
    }

    // Print the quality table (the series the paper's claim maps to).
    let milan_map = map_of_ranking(&archive, |q| {
        milan_index.knn(&milan_codes[q], K + 1).into_iter().map(|n| n.id).collect()
    });
    let lsh_map = map_of_ranking(&archive, |q| {
        lsh_index.knn(&lsh_codes[q], K + 1).into_iter().map(|n| n.id).collect()
    });
    let float_map = map_of_ranking(&archive, |q| {
        float_index.knn(&normalized[q], K + 1).into_iter().map(|n| n.id).collect()
    });
    println!("[E2] mAP@{K} — MiLaN: {milan_map:.3}, untrained LSH: {lsh_map:.3}, exact float kNN: {float_map:.3}");

    let mut group = c.benchmark_group("e2_retrieval_quality");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let q = N / 3;
    group.bench_function("milan_hash_knn", |b| {
        b.iter(|| black_box(milan_index.knn(black_box(&milan_codes[q]), K)))
    });
    group.bench_function("lsh_hash_knn", |b| {
        b.iter(|| black_box(lsh_index.knn(black_box(&lsh_codes[q]), K)))
    });
    group.bench_function("float_exact_knn", |b| {
        b.iter(|| black_box(float_index.knn(black_box(&normalized[q]), K)))
    });
    group.bench_function("milan_encode_new_image", |b| {
        let patch = &archive.patches()[q];
        b.iter(|| black_box(model.hash_patch(black_box(patch))))
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval_quality);
criterion_main!(benches);
