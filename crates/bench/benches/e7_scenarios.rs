//! Experiment E7 — end-to-end latency of the three demonstration scenarios
//! of §4: label-based exploration, spatial exploration with
//! query-by-existing-example, and query-by-new-example.  These are the
//! interactive operations a demo visitor triggers, so their latency is what
//! "interactive visual exploration" (Abstract) ultimately means.

use criterion::{criterion_group, criterion_main, Criterion};
use eq_bench::archive;
use eq_bigearthnet::{ArchiveGenerator, Country, GeneratorConfig, Label};
use eq_earthqube::{EarthQube, EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator};
use eq_geo::GeoShape;
use std::hint::black_box;

const N: usize = 1_000;

fn bench_scenarios(c: &mut Criterion) {
    let archive = archive(N, 77);
    let mut config = EarthQubeConfig::fast(77);
    config.milan.epochs = 12;
    let eq = EarthQube::build(&archive, config).expect("back-end builds");

    // Scenario queries.
    let label_query = ImageQuery::all().with_labels(LabelFilter::new(
        LabelOperator::Some,
        vec![Label::IndustrialOrCommercialUnits, Label::WaterBodies],
    ));
    let spatial_query =
        ImageQuery::all().with_shape(GeoShape::Rect(Country::Portugal.bounding_box()));
    let spatial_hit = eq
        .search(&spatial_query)
        .expect("spatial query")
        .panel
        .page(0)
        .entries
        .first()
        .expect("Portugal always has patches")
        .name
        .clone();
    let external = ArchiveGenerator::new(GeneratorConfig::tiny(1, 7777)).unwrap().generate_patch(0);

    println!(
        "[E7] archive of {N} images: label query matches {}, spatial query matches {}",
        eq.search(&label_query).unwrap().total(),
        eq.search(&spatial_query).unwrap().total()
    );

    let mut group = c.benchmark_group("e7_scenarios");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("label_based_exploration", |b| {
        b.iter(|| black_box(eq.search(black_box(&label_query)).unwrap()))
    });
    group.bench_function("spatial_exploration", |b| {
        b.iter(|| black_box(eq.search(black_box(&spatial_query)).unwrap()))
    });
    group.bench_function("query_by_existing_example", |b| {
        b.iter(|| black_box(eq.similar_to(black_box(&spatial_hit), 20).unwrap()))
    });
    group.bench_function("query_by_new_example", |b| {
        b.iter(|| black_box(eq.search_by_new_example(black_box(&external), 20).unwrap()))
    });
    group.bench_function("label_statistics_rendering", |b| {
        let response = eq.search(&label_query).unwrap();
        b.iter(|| black_box(response.statistics.render_bar_chart(15, 40)))
    });
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
