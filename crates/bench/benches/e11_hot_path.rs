//! Experiment E11 — the cache-resident hot path: the flat [`CodeArena`]
//! scan versus the pre-arena per-bucket `HashMap` scan, and bounded top-k
//! selection versus full-sort-then-truncate.
//!
//! The pre-arena index stored every `BinaryCode` as its own heap `Vec<u64>`
//! behind a `HashMap`, so a bucket scan pointer-chased per candidate; and
//! k-NN materialised plus fully sorted *every* match even for `k = 10`.
//! This bench reconstructs that exact legacy layout as a baseline and
//! measures both replacements, asserting:
//!
//! * the arena radius-scan kernel is **≥ 3x** the legacy `HashMap` scan at
//!   40k codes (the acceptance headline), and
//! * steady-state search — bounded k-NN through a warm `SearchScratch` and
//!   a radius scan into a warm buffer — performs **zero allocations**,
//!   verified by a counting global allocator.
//!
//! Results are recorded in `BENCH_e11.json` at the workspace root so the
//! perf trajectory is tracked across PRs.  `EQ_E11_SMOKE=1` shrinks the
//! workload for CI smoke runs (the allocation assertion still holds; the
//! speedup is printed but only asserted on the full run).

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::clustered_codes;
use eq_hashindex::hashtable::Strategy;
use eq_hashindex::{
    sort_neighbors, BinaryCode, HammingIndex, HashTableIndex, ItemId, Neighbor, SearchScratch,
};

/// Global allocator that counts every allocation, so the bench can assert
/// the steady-state hot path allocates nothing at all.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const CODE_BITS: u32 = 128;
const RADIUS: u32 = 6;
const K: usize = 10;

/// The pre-arena index layout, verbatim: one heap-allocated code per
/// bucket key, reached through a `HashMap` — a pointer chase per distinct
/// code — with k-NN as materialise-everything, sort, truncate.
struct LegacyIndex {
    buckets: HashMap<BinaryCode, Vec<ItemId>>,
}

impl LegacyIndex {
    fn build(codes: &[BinaryCode]) -> Self {
        let mut buckets: HashMap<BinaryCode, Vec<ItemId>> = HashMap::new();
        for (i, c) in codes.iter().enumerate() {
            buckets.entry(c.clone()).or_default().push(i as ItemId);
        }
        Self { buckets }
    }

    /// The old `radius_search_scan`, emitting into a caller buffer so both
    /// kernels are compared on identical output plumbing.
    fn scan_into(&self, query: &BinaryCode, radius: u32, out: &mut Vec<Neighbor>) {
        out.clear();
        for (code, bucket) in &self.buckets {
            let d = code.hamming_distance(query);
            if d <= radius {
                for &id in bucket {
                    out.push(Neighbor::new(id, d));
                }
            }
        }
        sort_neighbors(out);
    }

    /// The old k-NN shape: every candidate materialised and fully sorted,
    /// then truncated to `k`.
    fn knn_full_sort(&self, query: &BinaryCode, k: usize, all: &mut Vec<Neighbor>) {
        all.clear();
        for (code, bucket) in &self.buckets {
            let d = code.hamming_distance(query);
            for &id in bucket {
                all.push(Neighbor::new(id, d));
            }
        }
        sort_neighbors(all);
        all.truncate(k);
    }
}

/// Median-of-samples wall time per iteration, in seconds.
fn time_per_iter(samples: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    for _ in 0..batch {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct SizeResult {
    n: usize,
    legacy_scan_ns: f64,
    arena_scan_ns: f64,
    scan_speedup: f64,
    full_sort_knn_ns: f64,
    topk_knn_ns: f64,
    knn_speedup: f64,
    steady_state_allocs: u64,
}

fn bench_hot_path(c: &mut Criterion) {
    let smoke = std::env::var("EQ_E11_SMOKE").is_ok_and(|v| v == "1");
    let sizes: &[usize] = if smoke { &[4_000] } else { &[2_000, 10_000, 40_000] };
    let (samples, batch) = if smoke { (5, 20) } else { (15, 50) };

    let mut group = c.benchmark_group("e11_hot_path");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(if smoke { 300 } else { 1500 }));
    group.warm_up_time(std::time::Duration::from_millis(if smoke { 50 } else { 300 }));

    println!(
        "[E11] hot path: arena scan vs legacy HashMap scan, bounded top-k vs full sort \
         ({CODE_BITS}-bit codes, radius {RADIUS}, k = {K}{})",
        if smoke { ", smoke mode" } else { "" }
    );

    let mut results = Vec::new();
    for &n in sizes {
        let codes = clustered_codes(n, CODE_BITS, 64, 11);
        let query = codes[n / 2].clone();

        let legacy = LegacyIndex::build(&codes);
        let mut table = HashTableIndex::new(CODE_BITS);
        for (i, c) in codes.iter().enumerate() {
            table.insert(i as ItemId, c.clone());
        }
        // Pin the scan strategy: this experiment measures the scan kernel,
        // not the adaptive enumeration crossover (that is E1/E3).
        table.force_strategy(Some(Strategy::BucketScan));

        // Equivalence gate before timing anything: the arena path must
        // reproduce the legacy results exactly.
        let mut legacy_hits = Vec::new();
        legacy.scan_into(&query, RADIUS, &mut legacy_hits);
        assert_eq!(
            table.radius_search(&query, RADIUS),
            legacy_hits,
            "arena scan must be byte-identical to the legacy scan"
        );
        let mut legacy_knn = Vec::new();
        legacy.knn_full_sort(&query, K, &mut legacy_knn);
        assert_eq!(
            table.knn(&query, K),
            legacy_knn,
            "bounded top-k must equal full-sort-then-truncate"
        );

        // -- radius-scan kernel: legacy HashMap walk vs arena stream ------
        let mut out = Vec::new();
        let legacy_scan = time_per_iter(samples, batch, || {
            legacy.scan_into(black_box(&query), RADIUS, &mut out);
            black_box(&out);
        });
        let arena_scan = time_per_iter(samples, batch, || {
            out.clear();
            table.radius_search_into(black_box(&query), RADIUS, &mut out);
            sort_neighbors(&mut out);
            black_box(&out);
        });

        // -- k-NN: full sort vs bounded top-k through a warm scratch ------
        let mut all = Vec::new();
        let full_sort_knn = time_per_iter(samples, batch, || {
            legacy.knn_full_sort(black_box(&query), K, &mut all);
            black_box(&all);
        });
        let mut scratch = SearchScratch::new();
        let topk_knn = time_per_iter(samples, batch, || {
            black_box(table.knn_with(black_box(&query), K, &mut scratch));
        });

        // -- allocation-free steady state ---------------------------------
        // Warm buffers, then count allocations across a spin of both hot
        // paths.  The counter covers the whole process, so this asserts
        // the paths allocate nothing — not merely little.
        table.knn_with(&query, K, &mut scratch);
        out.clear();
        table.radius_search_into(&query, RADIUS, &mut out);
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..200 {
            black_box(table.knn_with(black_box(&query), K, &mut scratch));
            out.clear();
            table.radius_search_into(black_box(&query), RADIUS, &mut out);
            sort_neighbors(&mut out);
            black_box(&out);
        }
        let steady_state_allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
        assert_eq!(
            steady_state_allocs, 0,
            "steady-state search (bounded k-NN + radius scan over warm buffers) must not allocate"
        );

        let scan_speedup = legacy_scan / arena_scan;
        let knn_speedup = full_sort_knn / topk_knn;
        println!(
            "[E11] {n:>6} codes: radius scan {:>9.1} ns legacy vs {:>8.1} ns arena ({:>4.1}x) | \
             k-NN {:>9.1} ns full-sort vs {:>8.1} ns top-k ({:>4.1}x) | steady-state allocs: {}",
            legacy_scan * 1e9,
            arena_scan * 1e9,
            scan_speedup,
            full_sort_knn * 1e9,
            topk_knn * 1e9,
            knn_speedup,
            steady_state_allocs,
        );
        results.push(SizeResult {
            n,
            legacy_scan_ns: legacy_scan * 1e9,
            arena_scan_ns: arena_scan * 1e9,
            scan_speedup,
            full_sort_knn_ns: full_sort_knn * 1e9,
            topk_knn_ns: topk_knn * 1e9,
            knn_speedup,
            steady_state_allocs,
        });

        // Criterion samples for the CI log (same paths, harness timings).
        group.bench_with_input(BenchmarkId::new("legacy_hashmap_scan", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                legacy.scan_into(black_box(&query), RADIUS, &mut out);
                black_box(out.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("arena_scan", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                table.radius_search_into(black_box(&query), RADIUS, &mut out);
                sort_neighbors(&mut out);
                black_box(out.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("knn_full_sort", n), &n, |b, _| {
            let mut all = Vec::new();
            b.iter(|| {
                legacy.knn_full_sort(black_box(&query), K, &mut all);
                black_box(all.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("knn_bounded_topk", n), &n, |b, _| {
            let mut scratch = SearchScratch::new();
            b.iter(|| black_box(table.knn_with(black_box(&query), K, &mut scratch).len()))
        });
    }
    group.finish();

    if !smoke {
        let headline = results.last().expect("at least one size");
        assert!(
            headline.scan_speedup >= 3.0,
            "acceptance: arena radius scan must be >= 3x the legacy HashMap scan at {} codes \
             (measured {:.2}x)",
            headline.n,
            headline.scan_speedup
        );
        write_json(&results);
    }
}

/// Records the measurements in `BENCH_e11.json` at the workspace root (the
/// committed copy tracks the perf trajectory across PRs).
fn write_json(results: &[SizeResult]) {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"codes\": {},\n      \"code_bits\": {CODE_BITS},\n      \
                 \"radius\": {RADIUS},\n      \"k\": {K},\n      \
                 \"legacy_hashmap_scan_ns\": {:.1},\n      \"arena_scan_ns\": {:.1},\n      \
                 \"scan_speedup\": {:.2},\n      \"knn_full_sort_ns\": {:.1},\n      \
                 \"knn_bounded_topk_ns\": {:.2},\n      \"knn_speedup\": {:.2},\n      \
                 \"steady_state_allocations\": {}\n    }}",
                r.n,
                r.legacy_scan_ns,
                r.arena_scan_ns,
                r.scan_speedup,
                r.full_sort_knn_ns,
                r.topk_knn_ns,
                r.knn_speedup,
                r.steady_state_allocs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e11_hot_path\",\n  \"acceptance\": \
         \"arena radius scan >= 3x legacy HashMap scan at 40k codes; steady-state search \
         allocation-free\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_e11.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[E11] could not write {}: {e}", path.display());
    } else {
        println!("[E11] wrote {}", path.display());
    }
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
