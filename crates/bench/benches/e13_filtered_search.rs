//! Experiment E13 — bitmap-prefiltered similarity search: "find patches
//! similar to this one, but only agricultural patches in Austria acquired
//! in summer".  The query-panel filter restricts the universe the Hamming
//! kernels rank; what this bench measures is how that universe is
//! *resolved*:
//!
//! * **bitmap prefilter** — compile the filter's indexable prefix to a
//!   posting-bitmap intersection ([`Collection::compile_prefilter`]), run
//!   the residual only on the bitmap's survivors, and hand the resulting
//!   [`IdMask`] to the masked k-NN kernel;
//! * **scan-then-post-filter** — the pre-bitmap baseline: evaluate the
//!   full filter on every metadata document, then run the same masked
//!   kernel.
//!
//! Both paths produce the exact match set, so the ranked results are
//! byte-identical (asserted before timing); the speedup is pure
//! filter-resolution economics.  Acceptance: at 40k codes with a ≤ 10 %
//! selectivity filter, the bitmap path must be **≥ 3x** the post-filter
//! scan end-to-end (mask resolution + masked k-NN).
//!
//! Results land in `BENCH_e13.json` at the workspace root.  `EQ_E13_SMOKE=1`
//! shrinks the workload for CI smoke runs (equivalence is still asserted;
//! the speedup is printed but only asserted on the full run).

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::{clustered_codes, metadata};
use eq_bigearthnet::patch::Season;
use eq_bigearthnet::{Country, Label};
use eq_docstore::{Collection, Database, Filter};
use eq_earthqube::schema::{collections, fields};
use eq_earthqube::{ingest_metadata, ImageQuery, LabelFilter, LabelOperator};
use eq_hashindex::{Bitmap, HammingIndex, HashTableIndex, IdMask, ItemId, SearchScratch};

const CODE_BITS: u32 = 128;
const K: usize = 10;

/// The headline query: agricultural patches in Austria, summer only.
fn austria_summer_agriculture() -> Filter {
    ImageQuery::all()
        .with_countries(vec![Country::Austria])
        .with_seasons(vec![Season::Summer])
        .with_labels(LabelFilter::new(
            LabelOperator::Some,
            vec![
                Label::NonIrrigatedArableLand,
                Label::Pastures,
                Label::ComplexCultivationPatterns,
                Label::LandPrincipallyOccupiedByAgriculture,
            ],
        ))
        .to_filter()
}

/// Resolves the filter through the compiled posting bitmaps: candidates
/// from the bitmap, residual only on the survivors.
fn resolve_bitmap(coll: &Collection, filter: &Filter) -> IdMask {
    let plan = coll.compile_prefilter(filter);
    let mut items = Bitmap::new();
    if let Some(bitmap) = &plan.bitmap {
        for doc_id in bitmap.iter() {
            if let Some(doc) = coll.get(doc_id) {
                if plan.residual.matches(doc) {
                    if let Some(item) = doc.get(fields::PATCH_ID).and_then(|v| v.as_int()) {
                        items.insert(item as u64);
                    }
                }
            }
        }
    }
    IdMask::from_bitmap(&items)
}

/// The pre-bitmap baseline: evaluate the full filter on every document.
fn resolve_scan(coll: &Collection, filter: &Filter) -> IdMask {
    let mut items = Bitmap::new();
    for (_, doc) in coll.iter() {
        if filter.matches(doc) {
            if let Some(item) = doc.get(fields::PATCH_ID).and_then(|v| v.as_int()) {
                items.insert(item as u64);
            }
        }
    }
    IdMask::from_bitmap(&items)
}

/// Median-of-samples wall time per iteration, in seconds.
fn time_per_iter(samples: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..batch {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct SizeResult {
    n: usize,
    matching: u64,
    selectivity: f64,
    bitmap_us: f64,
    scan_us: f64,
    speedup: f64,
}

fn bench_filtered_search(c: &mut Criterion) {
    let smoke = std::env::var("EQ_E13_SMOKE").is_ok_and(|v| v == "1");
    let sizes: &[usize] = if smoke { &[4_000] } else { &[10_000, 40_000] };
    let (samples, batch) = if smoke { (5, 5) } else { (11, 10) };

    let mut group = c.benchmark_group("e13_filtered_search");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(if smoke { 300 } else { 1500 }));
    group.warm_up_time(std::time::Duration::from_millis(if smoke { 50 } else { 300 }));

    println!(
        "[E13] filtered similarity search: bitmap prefilter vs scan-then-post-filter \
         ({CODE_BITS}-bit codes, k = {K}{})",
        if smoke { ", smoke mode" } else { "" }
    );

    let filter = austria_summer_agriculture();
    let mut results = Vec::new();
    for &n in sizes {
        let metas = metadata(n, 13);
        let mut db = Database::new();
        ingest_metadata(&mut db, &metas).expect("fresh database ingests cleanly");
        let coll = db.collection(collections::METADATA).expect("metadata collection exists");

        let codes = clustered_codes(n, CODE_BITS, 64, 13);
        let mut table = HashTableIndex::new(CODE_BITS);
        for (i, code) in codes.iter().enumerate() {
            table.insert(i as ItemId, code.clone());
        }
        let query = codes[n / 2].clone();

        // Equivalence gate before timing anything: both resolutions must
        // produce the same mask, and the masked k-NN the same ranking.
        let bitmap_mask = resolve_bitmap(coll, &filter);
        let scan_mask = resolve_scan(coll, &filter);
        assert_eq!(bitmap_mask.len(), scan_mask.len(), "strategies disagree on the match set");
        for id in 0..n as u64 {
            assert_eq!(bitmap_mask.contains(id), scan_mask.contains(id), "patch {id}");
        }
        let mut scratch = SearchScratch::new();
        let via_bitmap = table.knn_masked_with(&query, K, &bitmap_mask, &mut scratch).to_vec();
        let via_scan = table.knn_masked_with(&query, K, &scan_mask, &mut scratch).to_vec();
        assert_eq!(via_bitmap, via_scan, "masked k-NN must be byte-identical");

        let matching = bitmap_mask.len();
        let selectivity = matching as f64 / n as f64;
        assert!(
            selectivity <= 0.10,
            "headline filter must be selective (≤ 10 %), got {:.1} %",
            selectivity * 100.0
        );

        // -- end-to-end: mask resolution + masked k-NN --------------------
        let bitmap_t = time_per_iter(samples, batch, || {
            let mask = resolve_bitmap(black_box(coll), black_box(&filter));
            black_box(table.knn_masked_with(black_box(&query), K, &mask, &mut scratch).len());
        });
        let scan_t = time_per_iter(samples, batch, || {
            let mask = resolve_scan(black_box(coll), black_box(&filter));
            black_box(table.knn_masked_with(black_box(&query), K, &mask, &mut scratch).len());
        });

        let speedup = scan_t / bitmap_t;
        println!(
            "[E13] {n:>6} codes: {matching:>5} match ({:>4.1} %) | \
             {:>9.1} µs bitmap vs {:>9.1} µs post-filter scan ({:>4.1}x)",
            selectivity * 100.0,
            bitmap_t * 1e6,
            scan_t * 1e6,
            speedup,
        );
        results.push(SizeResult {
            n,
            matching,
            selectivity,
            bitmap_us: bitmap_t * 1e6,
            scan_us: scan_t * 1e6,
            speedup,
        });

        // Criterion samples for the CI log (same paths, harness timings).
        group.bench_with_input(BenchmarkId::new("bitmap_prefilter", n), &n, |b, _| {
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                let mask = resolve_bitmap(black_box(coll), black_box(&filter));
                black_box(table.knn_masked_with(black_box(&query), K, &mask, &mut scratch).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("scan_then_post_filter", n), &n, |b, _| {
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                let mask = resolve_scan(black_box(coll), black_box(&filter));
                black_box(table.knn_masked_with(black_box(&query), K, &mask, &mut scratch).len())
            })
        });
    }
    group.finish();

    if !smoke {
        let headline = results.last().expect("at least one size");
        assert!(
            headline.speedup >= 3.0,
            "acceptance: bitmap prefilter must be >= 3x the post-filter scan at {} codes \
             (measured {:.2}x)",
            headline.n,
            headline.speedup
        );
        write_json(&results);
    }
}

/// Records the measurements in `BENCH_e13.json` at the workspace root (the
/// committed copy tracks the perf trajectory across PRs).
fn write_json(results: &[SizeResult]) {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"codes\": {},\n      \"code_bits\": {CODE_BITS},\n      \
                 \"k\": {K},\n      \"matching\": {},\n      \"selectivity\": {:.4},\n      \
                 \"bitmap_prefilter_us\": {:.1},\n      \"scan_then_post_filter_us\": {:.1},\n      \
                 \"speedup\": {:.2}\n    }}",
                r.n, r.matching, r.selectivity, r.bitmap_us, r.scan_us, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e13_filtered_search\",\n  \"query\": \
         \"agricultural patches in Austria, summer acquisitions only\",\n  \"acceptance\": \
         \"bitmap prefilter >= 3x scan-then-post-filter at 40k codes, <= 10% selectivity; \
         results byte-identical\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_e13.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[E13] could not write {}: {e}", path.display());
    } else {
        println!("[E13] wrote {}", path.display());
    }
}

criterion_group!(benches, bench_filtered_search);
criterion_main!(benches);
