//! Experiment E6 — loss ablation: §2.2 motivates the triplet, bit-balance
//! and quantization losses individually.  The setup trains three model
//! variants and prints the code-quality statistics each variant achieves;
//! Criterion then measures one training epoch and full-archive encoding for
//! the full loss, so regressions in the training loop itself are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use eq_bench::archive;
use eq_milan::metrics::quantization_error;
use eq_milan::{CodeStatistics, LossWeights, Milan, MilanConfig, TrainingDataset};
use std::hint::black_box;

const N: usize = 300;
const BITS: u32 = 64;

fn bench_loss_ablation(c: &mut Criterion) {
    let archive = archive(N, 66);
    let dataset = TrainingDataset::from_archive(&archive);

    let variants: Vec<(&str, LossWeights)> = vec![
        ("triplet_only", LossWeights::triplet_only(2.0)),
        (
            "triplet_bitbalance",
            LossWeights { triplet: 1.0, bit_balance: 0.1, quantization: 0.0, margin: 2.0 },
        ),
        ("full_milan", LossWeights::default()),
    ];
    for (name, weights) in &variants {
        let mut model =
            Milan::new(MilanConfig { epochs: 12, loss: *weights, ..MilanConfig::fast(BITS, 66) })
                .expect("valid model configuration");
        model.train(&dataset);
        let codes = model.hash_archive(&archive);
        let stats = CodeStatistics::from_codes(&codes);
        let q_err = quantization_error(&model.encode_continuous(dataset.features()));
        println!(
            "[E6] {name}: balance deviation {:.3}, mean bit correlation {:.3}, quantization error {:.3}, \
             {} distinct codes over {N} images",
            stats.balance_deviation, stats.mean_bit_correlation, q_err, stats.distinct_codes
        );
    }

    let mut group = c.benchmark_group("e6_loss_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("one_training_epoch_full_loss", |b| {
        b.iter(|| {
            let mut model = Milan::new(MilanConfig {
                epochs: 1,
                triplets_per_epoch: 64,
                ..MilanConfig::fast(BITS, 66)
            })
            .expect("valid model configuration");
            black_box(model.train(black_box(&dataset)))
        })
    });

    let mut trained = Milan::new(MilanConfig { epochs: 8, ..MilanConfig::fast(BITS, 66) }).unwrap();
    trained.train(&dataset);
    group.bench_function("hash_full_archive", |b| {
        b.iter(|| black_box(trained.hash_archive(black_box(&archive))))
    });
    group.finish();
}

criterion_group!(benches, bench_loss_ablation);
criterion_main!(benches);
