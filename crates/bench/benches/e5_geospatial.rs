//! Experiment E5 — geospatial filtering: §3.2 indexes the `location`
//! attribute with MongoDB's built-in 2-D geohashing index "to improve query
//! performance".  This bench compares rectangle queries through the geohash
//! index against a full collection scan at several selectivities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::metadata;
use eq_bigearthnet::Country;
use eq_docstore::{Collection, Filter};
use eq_earthqube::schema::{fields, metadata_document};
use eq_geo::{BBox, GeoShape};
use std::hint::black_box;

const N: usize = 30_000;

fn build(with_geo_index: bool) -> Collection {
    let metas = metadata(N, 55);
    let mut coll = Collection::new("metadata", fields::NAME);
    if with_geo_index {
        coll.create_geo_index(fields::LOCATION).unwrap();
    }
    for meta in &metas {
        coll.insert(metadata_document(meta)).unwrap();
    }
    coll
}

fn query_shapes() -> Vec<(&'static str, GeoShape)> {
    vec![
        // Small: the south-western tip of Portugal (the paper's §4 example).
        ("sw_portugal", GeoShape::Rect(BBox::new(-9.2, 36.9, -7.8, 38.0).unwrap())),
        // Medium: all of Portugal.
        ("portugal", GeoShape::Rect(Country::Portugal.bounding_box())),
        // Large: most of central Europe.
        ("central_europe", GeoShape::Rect(BBox::new(2.0, 45.0, 27.0, 56.0).unwrap())),
    ]
}

fn bench_geospatial(c: &mut Criterion) {
    let indexed = build(true);
    let unindexed = build(false);

    let mut group = c.benchmark_group("e5_geospatial");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for (name, shape) in query_shapes() {
        let filter = Filter::GeoWithin(fields::LOCATION.into(), shape.clone());
        let with_index = indexed.find(&filter);
        let without_index = unindexed.find(&filter);
        assert_eq!(with_index.plan.matched, without_index.plan.matched, "index changes results!");
        println!(
            "[E5] {name}: {} of {N} images match; geo index scanned {} candidates, full scan {} documents",
            with_index.plan.matched, with_index.plan.scanned, without_index.plan.scanned
        );

        group.bench_with_input(BenchmarkId::new("geohash_index", name), &filter, |b, f| {
            b.iter(|| black_box(indexed.find(black_box(f))))
        });
        group.bench_with_input(BenchmarkId::new("full_scan", name), &filter, |b, f| {
            b.iter(|| black_box(unindexed.find(black_box(f))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_geospatial);
criterion_main!(benches);
