//! Experiment E14 — connection scalability of the event-driven network
//! tier: one poller thread multiplexing **≥ 1000 concurrent loopback
//! connections** over a fixed-size worker pool, with admission control
//! keeping both memory and latency bounded.
//!
//! Three properties are exercised (and the first two asserted):
//!
//! * **scale with bounded memory** — open `CONNS` simultaneous TCP
//!   connections, drive several pipelined ping rounds across all of
//!   them, and require every connection to get every response back.
//!   Resident-set growth (`VmRSS` from `/proc/self/status`, covering
//!   both the client and the in-process server) must stay under a
//!   per-connection budget — thread-per-connection would blow this on
//!   stacks alone (1000 × 8 MiB default stacks ≈ 8 GiB of address
//!   space and ~1000 schedulable threads).
//! * **overload is answered, never stalled** — one connection floods
//!   more pipelined requests than its in-flight quota admits; the
//!   over-quota tail must come back as typed `Overloaded` errors, in
//!   order, and the connection must remain usable afterwards.
//! * **idle connections are cheap** — the Criterion sample times a
//!   single ping round trip while all other connections sit idle in
//!   the poll set, pricing the per-tick scan of a large interest set.
//!
//! Results land in `BENCH_e14.json` at the workspace root.
//! `EQ_E14_SMOKE=1` shrinks the workload for CI smoke runs (128
//! connections; the correctness assertions still run, the 1000-conn
//! scale and the JSON record are for the full run).

use std::hint::black_box;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::archive;
use eq_earthqube::net::{EqClient, NetConfig, NetServer};
use eq_earthqube::{EarthQubeConfig, QueryServer, ServeConfig};
use eq_proto::{
    ErrorCode, Request, RequestBody, Response, ResponseBody, MAX_FRAME_LEN, REQUEST_MAGIC,
    RESPONSE_MAGIC,
};
use eq_wire::frame::{read_frame, write_frame};

/// Client threads driving the connection fleet (the harness host is a
/// small box; each thread multiplexes `CONNS / CLIENT_THREADS` sockets).
const CLIENT_THREADS: usize = 4;
/// Pipelined ping rounds across the whole fleet in the sustain phase.
const ROUNDS: usize = 5;
/// In-flight quota per connection for the overload phase.
const QUOTA: usize = 8;
/// Requests the flood connection pipelines (must exceed `QUOTA`).
const FLOOD: usize = 48;

/// `VmRSS` of this process in kilobytes, from `/proc/self/status`.
fn resident_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse().ok())
        .unwrap_or(0)
}

/// One pipelined ping per connection in `conns`, then one response per
/// connection, asserting ids echo back.  Returns requests completed.
fn ping_round(conns: &mut [TcpStream], base_id: u64) -> usize {
    for (i, conn) in conns.iter_mut().enumerate() {
        let payload = Request { id: base_id + i as u64, body: RequestBody::Ping }.encode();
        write_frame(conn, &REQUEST_MAGIC, &payload).expect("ping frame writes");
    }
    for (i, conn) in conns.iter_mut().enumerate() {
        let payload = read_frame(conn, &RESPONSE_MAGIC, MAX_FRAME_LEN)
            .expect("response frame reads")
            .expect("connection stays open");
        let response = Response::decode(&payload).expect("response decodes");
        assert_eq!(response.id, base_id + i as u64, "response answers the matching request");
        assert_eq!(response.body, ResponseBody::Pong, "ping is answered with pong");
    }
    conns.len()
}

/// Opens `count` loopback connections to `addr`.
fn open_fleet(addr: SocketAddr, count: usize) -> Vec<TcpStream> {
    (0..count)
        .map(|_| {
            let conn = TcpStream::connect(addr).expect("loopback connect");
            conn.set_nodelay(true).expect("nodelay");
            conn
        })
        .collect()
}

/// The overload phase: flood one connection past its in-flight quota in
/// a single write, then read every response.  Returns (pongs, rejected).
fn flood_one_connection(addr: SocketAddr) -> (usize, usize) {
    let mut conn = TcpStream::connect(addr).expect("flood connect");
    conn.set_nodelay(true).expect("nodelay");
    let mut burst = Vec::new();
    for id in 1..=FLOOD as u64 {
        let payload = Request { id, body: RequestBody::Ping }.encode();
        write_frame(&mut burst, &REQUEST_MAGIC, &payload).expect("frame into buffer");
    }
    conn.write_all(&burst).expect("flood burst writes");

    let (mut pongs, mut rejected) = (0usize, 0usize);
    for expect_id in 1..=FLOOD as u64 {
        let payload = read_frame(&mut conn, &RESPONSE_MAGIC, MAX_FRAME_LEN)
            .expect("flood response reads")
            .expect("flooded connection is answered, not stalled or dropped");
        let response = Response::decode(&payload).expect("flood response decodes");
        assert_eq!(response.id, expect_id, "responses stay in submission order");
        match response.body {
            ResponseBody::Pong => pongs += 1,
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded, "rejection is the typed overload error");
                rejected += 1;
            }
            other => panic!("unexpected flood response: {other:?}"),
        }
    }
    // The connection survives its own flood: a fresh request still works.
    assert_eq!(ping_round(std::slice::from_mut(&mut conn), 1_000_000), 1);
    (pongs, rejected)
}

struct RunResult {
    conns: usize,
    total_requests: usize,
    reqs_per_sec: f64,
    rss_before_kb: u64,
    rss_peak_kb: u64,
    pongs: usize,
    rejected: usize,
}

fn bench_concurrent_connections(c: &mut Criterion) {
    let smoke = std::env::var("EQ_E14_SMOKE").is_ok_and(|v| v == "1");
    let conns = if smoke { 128 } else { 1_200 };

    println!(
        "[E14] connection scalability: {conns} concurrent loopback connections, \
         {CLIENT_THREADS} client threads, quota {QUOTA}{}",
        if smoke { ", smoke mode" } else { "" }
    );

    let archive = archive(64, 140);
    let mut config = EarthQubeConfig::fast(140);
    config.train_model = false; // ping workload: no CBIR model needed
    let server =
        Arc::new(QueryServer::build(&archive, config, ServeConfig::default()).expect("builds"));
    let net = NetServer::bind_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            max_inflight_per_conn: QUOTA,
            // Sized for the fleet: every connection may have one ping in
            // flight at once.  The overload phase exercises the per-conn
            // quota, which is independent of the queue bound.
            queue_capacity: 2 * conns,
            ..NetConfig::default()
        },
    )
    .expect("binds loopback");
    let addr = net.local_addr();

    let rss_before_kb = resident_kb();

    // -- sustain phase: CONNS concurrent connections, ROUNDS ping rounds --
    let start = Instant::now();
    let per_thread = conns / CLIENT_THREADS;
    let completed: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut fleet = open_fleet(addr, per_thread);
                    let mut done = 0usize;
                    for round in 0..ROUNDS {
                        done += ping_round(&mut fleet, (t * ROUNDS + round) as u64 * 1_000_000);
                    }
                    // Hold every socket open until all threads finish so
                    // the peak poll set really is `conns` entries wide.
                    std::thread::sleep(Duration::from_millis(50));
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });
    let elapsed = start.elapsed();
    let rss_peak_kb = resident_kb();

    let expected = per_thread * CLIENT_THREADS * ROUNDS;
    assert_eq!(completed, expected, "every connection got every response");
    let reqs_per_sec = completed as f64 / elapsed.as_secs_f64();

    // Bounded memory: client + server growth must stay under a small
    // per-connection budget plus a fixed slack (a thread-per-connection
    // design fails this on stacks alone).
    let growth_kb = rss_peak_kb.saturating_sub(rss_before_kb);
    let budget_kb = 64 * conns as u64 + 32 * 1024;
    assert!(
        growth_kb <= budget_kb,
        "resident growth {growth_kb} kB exceeds the {budget_kb} kB budget for {conns} connections"
    );

    println!(
        "[E14] sustain: {completed} pings over {conns} conns in {elapsed:.2?} \
         ({reqs_per_sec:.0} req/s) | RSS {rss_before_kb} -> {rss_peak_kb} kB \
         (+{growth_kb} kB, budget {budget_kb} kB)"
    );

    // -- overload phase: typed rejection, strict ordering, no stall ------
    let (pongs, rejected) = flood_one_connection(addr);
    assert!(rejected >= 1, "flooding past the quota must draw typed Overloaded rejections");
    assert!(pongs >= 1, "admitted requests are still served during the flood");
    assert_eq!(pongs + rejected, FLOOD, "every flooded request gets exactly one answer");
    let stats = net.net_stats();
    assert!(stats.rejected_overload >= rejected as u64, "rejections surface in the scrape stats");
    println!(
        "[E14] overload: {FLOOD} pipelined vs quota {QUOTA}: {pongs} served, \
         {rejected} rejected with typed Overloaded, connection stayed usable"
    );

    // -- Criterion sample: one RTT while the rest of the fleet idles ----
    let mut group = c.benchmark_group("e14_concurrent_connections");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(if smoke { 300 } else { 1500 }));
    group.warm_up_time(Duration::from_millis(if smoke { 50 } else { 300 }));
    let idle = open_fleet(addr, conns);
    let mut probe = EqClient::connect(addr).expect("probe client connects");
    group.bench_function(BenchmarkId::new("ping_rtt_with_idle_fleet", conns), |b| {
        b.iter(|| black_box(probe.ping()).expect("probe ping"))
    });
    group.finish();
    drop(idle);
    drop(probe);

    if !smoke {
        write_json(&RunResult {
            conns,
            total_requests: completed,
            reqs_per_sec,
            rss_before_kb,
            rss_peak_kb,
            pongs,
            rejected,
        });
    }
    net.shutdown();
}

/// Records the measurements in `BENCH_e14.json` at the workspace root
/// (the committed copy tracks the trajectory across PRs).
fn write_json(r: &RunResult) {
    let json = format!(
        "{{\n  \"experiment\": \"e14_concurrent_connections\",\n  \"acceptance\": \
         \"the event loop sustains >= 1000 concurrent loopback connections with bounded \
         resident growth; over-quota requests are rejected with typed Overloaded errors, \
         never stalled\",\n  \"connections\": {},\n  \"client_threads\": {CLIENT_THREADS},\n  \
         \"rounds\": {ROUNDS},\n  \"total_requests\": {},\n  \"requests_per_sec\": {:.0},\n  \
         \"rss_before_kb\": {},\n  \"rss_peak_kb\": {},\n  \"rss_growth_kb\": {},\n  \
         \"flood_requests\": {FLOOD},\n  \"flood_quota\": {QUOTA},\n  \"flood_served\": {},\n  \
         \"flood_rejected_overloaded\": {}\n}}\n",
        r.conns,
        r.total_requests,
        r.reqs_per_sec,
        r.rss_before_kb,
        r.rss_peak_kb,
        r.rss_peak_kb.saturating_sub(r.rss_before_kb),
        r.pongs,
        r.rejected,
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_e14.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[E14] could not write {}: {e}", path.display());
    } else {
        println!("[E14] wrote {}", path.display());
    }
}

criterion_group!(benches, bench_concurrent_connections);
criterion_main!(benches);
