//! Experiment E8 — concurrent sharded query serving: throughput of a mixed
//! query workload executed by the `QueryServer` at 1/2/4/8 worker threads,
//! against the sequential `EarthQube` engine as the baseline, plus the
//! effect of the LRU result cache on a repeating workload.
//!
//! The shape to look for (on a multi-core machine): the per-batch time of
//! `server_workers/N` drops roughly linearly with N until the core count is
//! reached, i.e. >1.5× throughput at 4 workers over `sequential_engine`.
//! On a single-core host the worker counts collapse onto the sequential
//! baseline (there is no parallel hardware to exploit) — the run prints the
//! measured speedup so the result is explicit either way.  `server_cached`
//! shows the cache short-circuiting a repeating workload entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::archive;
use eq_bigearthnet::{Country, Label};
use eq_earthqube::{
    EarthQube, EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator, QueryRequest, QueryServer,
    ServeConfig,
};
use eq_geo::GeoShape;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 1_000;
const BATCH: usize = 64;
const K: usize = 20;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A mixed workload: CBIR queries over a rotating set of archive images,
/// interleaved with label and spatial metadata searches.  Every request is
/// distinct, so the uncached benchmarks measure real query execution.
fn workload(archive: &eq_bigearthnet::Archive) -> Vec<QueryRequest> {
    let mut requests = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        requests.push(match i % 4 {
            0 | 1 => QueryRequest::SimilarTo {
                name: archive.patches()[(i * 13) % archive.len()].meta.name.clone(),
                k: K,
            },
            2 => QueryRequest::Metadata(ImageQuery::all().with_labels(LabelFilter::new(
                LabelOperator::Some,
                vec![Label::ALL[(i * 7) % Label::ALL.len()]],
            ))),
            _ => QueryRequest::Metadata(ImageQuery::all().with_shape(GeoShape::Rect(
                Country::ALL[(i / 4) % Country::ALL.len()].bounding_box(),
            ))),
        });
    }
    requests
}

fn bench_concurrent_serving(c: &mut Criterion) {
    let archive = archive(N, 88);
    let mut config = EarthQubeConfig::fast(88);
    config.milan.epochs = 12;
    let engine = EarthQube::build(&archive, config.clone()).expect("back-end builds");
    // Two servers over the identical engine build: one uncached (raw
    // throughput), one with the default cache (repeating workloads).
    let uncached =
        QueryServer::build(&archive, config.clone(), ServeConfig::uncached(8)).expect("server");
    let cached = QueryServer::build(&archive, config, ServeConfig::default()).expect("server");
    let requests = workload(&archive);

    // Sanity: the concurrent server agrees with the sequential engine.
    for request in &requests {
        let sequential = match request {
            QueryRequest::Metadata(q) => engine.search(q).unwrap(),
            QueryRequest::SimilarTo { name, k } => engine.similar_to(name, *k).unwrap(),
            QueryRequest::NewExample { patch, k } => {
                engine.search_by_new_example(patch, *k).unwrap()
            }
        };
        assert_eq!(uncached.execute(request).unwrap(), sequential);
    }

    let mut group = c.benchmark_group("e8_concurrent_serving");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(400));

    group.bench_function("sequential_engine", |b| {
        b.iter(|| {
            for request in &requests {
                match request {
                    QueryRequest::Metadata(q) => {
                        black_box(engine.search(q).unwrap());
                    }
                    QueryRequest::SimilarTo { name, k } => {
                        black_box(engine.similar_to(name, *k).unwrap());
                    }
                    QueryRequest::NewExample { patch, k } => {
                        black_box(engine.search_by_new_example(patch, *k).unwrap());
                    }
                }
            }
        })
    });
    for workers in WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::new("server_workers", workers), &workers, |b, &w| {
            b.iter(|| black_box(uncached.run_workload(&requests, w)))
        });
    }
    group.bench_function("server_cached_repeat", |b| {
        // Warm the cache once; the repeating workload is then served from it.
        let _ = cached.run_workload(&requests, 4);
        b.iter(|| black_box(cached.run_workload(&requests, 4)))
    });
    group.finish();

    // Explicit speedup summary (criterion's per-bench times measure the
    // same thing, but the ratio is the experiment's headline number).
    let time = |f: &mut dyn FnMut()| {
        f(); // warm
        let start = Instant::now();
        for _ in 0..3 {
            f();
        }
        start.elapsed().as_secs_f64() / 3.0
    };
    let base = time(&mut || {
        for request in &requests {
            black_box(uncached.execute(request).unwrap());
        }
    });
    println!(
        "[E8] archive of {N} images, batch of {BATCH} mixed queries, \
         {} cores available",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    println!("[E8] sequential baseline: {:.1} ms/batch", base * 1e3);
    for workers in WORKER_COUNTS {
        let t = time(&mut || {
            black_box(uncached.run_workload(&requests, workers));
        });
        println!(
            "[E8] {workers} worker(s): {:.1} ms/batch — {:.2}x throughput vs sequential",
            t * 1e3,
            base / t
        );
    }
    let stats = uncached.stats();
    println!(
        "[E8] server stats: {} queries served, shard occupancy {:?}",
        stats.queries_served, stats.shard_occupancy
    );
}

criterion_group!(benches, bench_concurrent_serving);
criterion_main!(benches);
