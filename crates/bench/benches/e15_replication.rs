//! Experiment E15 — replication & failover: one primary streaming its
//! WAL to two loopback replicas through the `eq_proto` RPC protocol.
//!
//! Three properties are measured (and the correctness half asserted):
//!
//! * **steady-state lag** — ingest waves are acknowledged on the primary
//!   and the time until *both* replicas have applied every record is
//!   measured per wave.  Every wave must end caught-up with zero
//!   re-seeds, and the replicas' responses must be byte-identical to the
//!   primary's.
//! * **read fan-out** — aggregate metadata-search throughput of client
//!   threads driving `ClusterClient`s round-robining over all three
//!   nodes, against the same thread count hammering the single primary.
//!   Every fanned-out response must equal the primary's.
//! * **failover time** — the primary dies; the clock runs from the kill
//!   until a `ClusterClient` write has been re-routed, retried and
//!   acknowledged by the promoted replica.  Zero acknowledged writes may
//!   be lost, and the old generation must be fenced (its positions
//!   answer `reseed`).
//!
//! Results land in `BENCH_e15.json` at the workspace root.
//! `EQ_E15_SMOKE=1` shrinks the workload for CI smoke runs (the
//! correctness assertions still run; the JSON record is for the full
//! run).

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use eq_bench::archive;
use eq_earthqube::net::{EqClient, NetServer};
use eq_earthqube::replicate::{ClusterClient, Replica, RetryPolicy};
use eq_earthqube::{EarthQubeConfig, ImageQuery, QueryServer, ServeConfig};

/// Client threads for both throughput variants.
const CLIENT_THREADS: usize = 3;

/// A scratch directory tree for the three nodes, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        let root = std::env::temp_dir().join(format!("eq_e15_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("scratch root");
        Scratch(root)
    }

    fn node(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(160),
        jitter_seed: 0xE15,
    }
}

fn attach_primary(server: &Arc<QueryServer>, dir: &Path) -> NetServer {
    server.checkpoint(dir).expect("primary checkpoint attaches");
    NetServer::bind(Arc::clone(server), "127.0.0.1:0", 2).expect("primary binds loopback")
}

/// `reads` searches per thread against `make_client`'s endpoint choice;
/// every response must equal `reference`.  Returns aggregate req/s.
fn read_throughput<F, C>(
    reads: usize,
    reference: &eq_earthqube::SearchResponse,
    make_client: F,
) -> f64
where
    F: Fn() -> C + Sync,
    C: ReadClient,
{
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            scope.spawn(|| {
                let mut client = make_client();
                for _ in 0..reads {
                    let response = client.search_all().expect("fanned-out search succeeds");
                    assert_eq!(&response, reference, "fan-out must not change results");
                }
            });
        }
    });
    (CLIENT_THREADS * reads) as f64 / start.elapsed().as_secs_f64()
}

/// The two client shapes the throughput phase compares.
trait ReadClient {
    fn search_all(&mut self) -> Result<eq_earthqube::SearchResponse, eq_earthqube::EarthQubeError>;
}

impl ReadClient for EqClient {
    fn search_all(&mut self) -> Result<eq_earthqube::SearchResponse, eq_earthqube::EarthQubeError> {
        self.search(&ImageQuery::all())
    }
}

impl ReadClient for ClusterClient {
    fn search_all(&mut self) -> Result<eq_earthqube::SearchResponse, eq_earthqube::EarthQubeError> {
        self.search(&ImageQuery::all())
    }
}

struct RunResult {
    waves: usize,
    patches_per_wave: usize,
    records_replicated: u64,
    catchup_ms_mean: f64,
    catchup_ms_max: f64,
    single_reqs_per_sec: f64,
    cluster_reqs_per_sec: f64,
    failover_ms: f64,
}

fn bench_replication(c: &mut Criterion) {
    let smoke = std::env::var("EQ_E15_SMOKE").is_ok_and(|v| v == "1");
    let (base, waves, patches_per_wave, reads) =
        if smoke { (24, 3, 4, 40) } else { (64, 8, 8, 400) };

    println!(
        "[E15] replication: primary + 2 loopback replicas, {waves} ingest waves x \
         {patches_per_wave} patches, {CLIENT_THREADS} reader threads{}",
        if smoke { ", smoke mode" } else { "" }
    );

    let scratch = Scratch::new();
    let seed_archive = archive(base, 150);
    let extra = archive(waves * patches_per_wave + 2, 151);
    let mut config = EarthQubeConfig::fast(150);
    config.train_model = false; // metadata workload: no CBIR model needed

    let primary = Arc::new(
        QueryServer::build(&seed_archive, config, ServeConfig::default()).expect("builds"),
    );
    let net = attach_primary(&primary, &scratch.node("primary"));
    let addr = net.local_addr().to_string();

    let mut r1 = Replica::bootstrap(&scratch.node("r1"), &addr, 1, policy()).expect("r1 seeds");
    let mut r2 = Replica::bootstrap(&scratch.node("r2"), &addr, 2, policy()).expect("r2 seeds");
    let net_r1 = NetServer::bind(Arc::clone(r1.server()), "127.0.0.1:0", 2).expect("r1 binds");
    let net_r2 = NetServer::bind(Arc::clone(r2.server()), "127.0.0.1:0", 2).expect("r2 binds");
    let endpoints =
        [addr.clone(), net_r1.local_addr().to_string(), net_r2.local_addr().to_string()];

    // -- steady-state lag: acked wave -> both replicas caught up ---------
    let mut writer = EqClient::connect(net.local_addr()).expect("writer connects");
    let mut catchup_ms = Vec::with_capacity(waves);
    for wave in 0..waves {
        let slice = &extra.patches()[wave * patches_per_wave..(wave + 1) * patches_per_wave];
        writer.ingest(slice).expect("wave acked by the primary");
        let start = Instant::now();
        let s1 = r1.catch_up().expect("r1 catches up");
        let s2 = r2.catch_up().expect("r2 catches up");
        catchup_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(s1.caught_up() && s2.caught_up(), "waves must end caught-up");
        assert_eq!(s1.reseeds + s2.reseeds, 0, "steady state must never re-seed");
    }
    let records_replicated = r1.sync_state().records_applied;
    let catchup_ms_mean = catchup_ms.iter().sum::<f64>() / catchup_ms.len() as f64;
    let catchup_ms_max = catchup_ms.iter().fold(0f64, |a, &b| a.max(b));
    println!(
        "[E15] lag: {records_replicated} records over {waves} waves, catch-up mean \
         {catchup_ms_mean:.1} ms, max {catchup_ms_max:.1} ms"
    );

    // -- read fan-out throughput vs the single primary -------------------
    let reference = primary.search(&ImageQuery::all()).expect("reference search");
    let single_reqs_per_sec =
        read_throughput(reads, &reference, || EqClient::connect(&addr[..]).expect("connects"));
    let cluster_reqs_per_sec = read_throughput(reads, &reference, || {
        ClusterClient::new(endpoints.clone(), policy()).expect("cluster client")
    });
    println!(
        "[E15] fan-out: single node {single_reqs_per_sec:.0} req/s, cluster of 3 \
         {cluster_reqs_per_sec:.0} req/s ({CLIENT_THREADS} threads x {reads} reads)"
    );

    // -- Criterion sample: one fanned-out read round ---------------------
    let mut group = c.benchmark_group("e15_replication");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(if smoke { 300 } else { 1500 }));
    group.warm_up_time(Duration::from_millis(if smoke { 50 } else { 300 }));
    let mut probe = ClusterClient::new(endpoints.clone(), policy()).expect("probe cluster");
    group.bench_function("cluster_search", |b| {
        b.iter(|| black_box(probe.search(&ImageQuery::all())).expect("probe search"))
    });
    group.finish();
    drop(probe);

    // -- failover: kill the primary, promote r1, first re-routed write --
    let acked_size = primary.stats().archive_size;
    let old_generation = primary.repl_state().generation;
    net.shutdown();
    drop(writer);
    drop(primary);
    let failover_start = Instant::now();
    let promoted = r1.promote().expect("r1 promotes");
    let mut cluster = ClusterClient::new(endpoints.clone(), policy()).expect("cluster survives");
    cluster.ingest(&extra.patches()[waves * patches_per_wave..]).expect("write lands after retry");
    let failover_ms = failover_start.elapsed().as_secs_f64() * 1e3;

    // Zero acknowledged-write loss, and the new write is on the new primary.
    assert_eq!(promoted.stats().archive_size, acked_size + 2);
    assert_ne!(promoted.repl_state().generation, old_generation, "promotion bumps the generation");
    // The old generation is fenced: its positions are disowned.
    let mut probe = EqClient::connect(net_r1.local_addr()).expect("probe promoted");
    let verdict = probe.repl_pull(9, old_generation, 0, 16, 1 << 20).expect("pull answers");
    assert!(verdict.reseed, "old-generation positions must answer reseed");
    println!(
        "[E15] failover: promote + re-routed write in {failover_ms:.1} ms, generation \
         {old_generation:#x} fenced"
    );

    if !smoke {
        write_json(&RunResult {
            waves,
            patches_per_wave,
            records_replicated,
            catchup_ms_mean,
            catchup_ms_max,
            single_reqs_per_sec,
            cluster_reqs_per_sec,
            failover_ms,
        });
    }
    net_r1.shutdown();
    net_r2.shutdown();
    drop(r2);
}

/// Records the measurements in `BENCH_e15.json` at the workspace root
/// (the committed copy tracks the trajectory across PRs).
fn write_json(r: &RunResult) {
    let json = format!(
        "{{\n  \"experiment\": \"e15_replication\",\n  \"acceptance\": \
         \"two loopback replicas stay caught-up with zero re-seeds across acked ingest \
         waves and serve byte-identical reads; after the primary dies a replica promotes \
         under a fresh generation, the first re-routed write is acknowledged with zero \
         acked-write loss, and the old generation is fenced\",\n  \
         \"replicas\": 2,\n  \"ingest_waves\": {},\n  \"patches_per_wave\": {},\n  \
         \"records_replicated\": {},\n  \"catchup_ms_mean\": {:.2},\n  \
         \"catchup_ms_max\": {:.2},\n  \"reader_threads\": {CLIENT_THREADS},\n  \
         \"single_node_reqs_per_sec\": {:.0},\n  \"cluster_reqs_per_sec\": {:.0},\n  \
         \"failover_ms\": {:.2}\n}}\n",
        r.waves,
        r.patches_per_wave,
        r.records_replicated,
        r.catchup_ms_mean,
        r.catchup_ms_max,
        r.single_reqs_per_sec,
        r.cluster_reqs_per_sec,
        r.failover_ms,
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_e15.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[E15] could not write {}: {e}", path.display());
    } else {
        println!("[E15] wrote {}", path.display());
    }
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
