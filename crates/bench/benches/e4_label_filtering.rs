//! Experiment E4 — label filtering: §3.2 maps every (potentially
//! multi-word) CLC label to an ASCII character "thereby avoiding the
//! manipulation of long strings", and §3.1 defines the three label
//! operators.  This bench compares the three operators on the ASCII-coded
//! representation against the same queries over full label-name arrays.
//!
//! Note: these collections carry no attribute indexes, so both sides are
//! measured as pure scans — the representation cost alone.  On an indexed
//! collection the same label predicates compile to per-element posting
//! bitmaps and skip the scan entirely; that path is priced by E13
//! (`e13_filtered_search.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use eq_bench::metadata;
use eq_bigearthnet::Label;
use eq_docstore::{Collection, Document, Filter, Value};
use eq_earthqube::schema::{fields, metadata_document};
use eq_earthqube::{LabelFilter, LabelOperator};
use std::hint::black_box;

const N: usize = 20_000;

/// Builds the paper's collection (ASCII-coded labels) and a variant that
/// stores the full label names as a string array.
fn build_collections() -> (Collection, Collection) {
    let metas = metadata(N, 44);
    let mut coded = Collection::new("metadata_coded", fields::NAME);
    let mut verbose = Collection::new("metadata_verbose", fields::NAME);
    for meta in &metas {
        coded.insert(metadata_document(meta)).unwrap();
        let names: Vec<Value> =
            meta.labels.iter().map(|l| Value::Str(l.name().to_string())).collect();
        verbose
            .insert(
                Document::new()
                    .with(fields::NAME, meta.name.as_str())
                    .with("label_names", Value::Array(names)),
            )
            .unwrap();
    }
    (coded, verbose)
}

fn verbose_filter(op: LabelOperator, labels: &[Label]) -> Filter {
    let names: Vec<Value> = labels.iter().map(|l| Value::Str(l.name().to_string())).collect();
    match op {
        LabelOperator::Some => Filter::ContainsAny("label_names".into(), names),
        LabelOperator::Exactly => Filter::ContainsExactly("label_names".into(), names),
        LabelOperator::AtLeastAndMore => Filter::ContainsAll("label_names".into(), names),
    }
}

fn bench_label_filtering(c: &mut Criterion) {
    let (coded, verbose) = build_collections();
    let selection = vec![Label::ConiferousForest, Label::BeachesDunesSands, Label::SeaAndOcean];

    for op in [LabelOperator::Some, LabelOperator::Exactly, LabelOperator::AtLeastAndMore] {
        let lf = LabelFilter::new(op, selection.clone());
        println!(
            "[E4] operator {:?}: {} of {N} images match (ASCII-coded path)",
            op,
            coded.count(&lf.to_filter())
        );
    }

    let mut group = c.benchmark_group("e4_label_filtering");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for (op, tag) in [
        (LabelOperator::Some, "some"),
        (LabelOperator::Exactly, "exactly"),
        (LabelOperator::AtLeastAndMore, "at_least_and_more"),
    ] {
        let coded_filter = LabelFilter::new(op, selection.clone()).to_filter();
        let verbose_f = verbose_filter(op, &selection);
        group.bench_function(format!("ascii_codes_{tag}"), |b| {
            b.iter(|| black_box(coded.count(black_box(&coded_filter))))
        });
        group.bench_function(format!("full_strings_{tag}"), |b| {
            b.iter(|| black_box(verbose.count(black_box(&verbose_f))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_label_filtering);
criterion_main!(benches);
