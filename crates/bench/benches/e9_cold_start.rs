//! Experiment E9 — cold start with the durable storage tier: restarting a
//! server by loading a checkpointed snapshot vs rebuilding it from scratch
//! (re-ingesting the archive, re-training MiLaN, re-encoding every image).
//!
//! The paper's EarthQube serves a continuously *growing* archive; a
//! restart that pays the full build again cannot serve "heavy traffic from
//! millions of users".  The shape to look for: `snapshot_load/N` stays far
//! below `full_rebuild/N` and the gap widens with the archive size — the
//! snapshot path skips model training and encoding entirely and only pays
//! deserialization, which is linear in the stored bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::archive;
use eq_earthqube::{EarthQubeConfig, ImageQuery, QueryServer, ServeConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Archive sizes of the experiment; the acceptance headline is the 40k row.
const SIZES: [usize; 3] = [2_000, 10_000, 40_000];

fn engine_config(seed: u64) -> EarthQubeConfig {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 12;
    config
}

fn scratch_dir(n: usize) -> PathBuf {
    std::env::temp_dir().join(format!("eq_e9_cold_start_{}_{n}", std::process::id()))
}

/// On-disk footprint of an incremental checkpoint: the manifest plus every
/// chunk file it roots (WAL segments are transient and excluded).
fn checkpoint_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir).map_or(0, |entries| {
        entries
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name == "manifest.eqm" || (name.starts_with("chunk-") && name.ends_with(".eqc"))
            })
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    })
}

fn bench_cold_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_cold_start");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(200));

    println!("[E9] cold start: snapshot load vs full rebuild");
    for n in SIZES {
        let data = archive(n, 99);
        let dir = scratch_dir(n);
        let _ = std::fs::remove_dir_all(&dir);

        // First boot: build + checkpoint (this is what `open` does on a
        // cold directory).  Timed once — it is the baseline every restart
        // would otherwise pay.
        let start = Instant::now();
        let server = QueryServer::open(&dir, &data, engine_config(99), ServeConfig::default())
            .expect("first open builds and checkpoints");
        let build_time = start.elapsed().as_secs_f64();
        let snapshot_bytes = checkpoint_bytes(&dir);

        // Sanity: a recovered server answers like the built one.  The
        // builder is dropped first — recovery takes the WAL file lock.
        let expected = server.search(&ImageQuery::all()).unwrap();
        drop(server);
        let recovered = QueryServer::recover(&dir).expect("snapshot recovers");
        assert_eq!(recovered.search(&ImageQuery::all()).unwrap(), expected);
        drop(recovered);

        let start = Instant::now();
        black_box(QueryServer::recover(&dir).expect("snapshot recovers"));
        let load_time = start.elapsed().as_secs_f64();
        println!(
            "[E9] {n:>6} images: full rebuild {:>8.2} s, snapshot load {:>7.3} s \
             ({:>5.1}x faster, snapshot {:.1} MiB)",
            build_time,
            load_time,
            build_time / load_time,
            snapshot_bytes as f64 / (1024.0 * 1024.0)
        );

        // Criterion timings for the snapshot-load path (the rebuild path is
        // far too slow to sample repeatedly at 40k; its one-shot time is
        // printed above).
        group.bench_with_input(BenchmarkId::new("snapshot_load", n), &dir, |b, dir| {
            b.iter(|| black_box(QueryServer::recover(dir).expect("snapshot recovers")))
        });
        if n == SIZES[0] {
            // The rebuild baseline is sampled only at the smallest size.
            group.bench_with_input(BenchmarkId::new("full_rebuild", n), &data, |b, data| {
                b.iter(|| {
                    black_box(
                        QueryServer::build(data, engine_config(99), ServeConfig::default())
                            .expect("server builds"),
                    )
                })
            });
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_cold_start);
criterion_main!(benches);
