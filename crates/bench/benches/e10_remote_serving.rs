//! Experiment E10 — the network serving tier: the same query workload
//! executed (a) in-process on the `QueryServer`, (b) remotely over
//! loopback TCP one request at a time, and (c) remotely with pipelined
//! batch submission.
//!
//! The shape to look for: `remote_one_shot` pays one round trip (syscalls,
//! frame encode/decode, scheduler hand-off) per request on top of the
//! in-process time, while `remote_batched/N` amortises the round trips
//! over the whole batch and lands within a small factor of `in_process` —
//! the pipelined client is the one that can feed "heavy traffic" through
//! a real wire.  The run prints the measured per-request overhead so the
//! result is explicit on any host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::archive;
use eq_earthqube::net::{EqClient, NetServer};
use eq_earthqube::{EarthQubeConfig, ImageQuery, QueryRequest, QueryServer, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 1_000;
const BATCH: usize = 64;
const K: usize = 20;

/// A CBIR-heavy workload with distinct requests (the serving cache is
/// disabled anyway, so every request pays real query execution).
fn workload(archive: &eq_bigearthnet::Archive) -> Vec<QueryRequest> {
    (0..BATCH)
        .map(|i| {
            if i % 4 == 3 {
                QueryRequest::Metadata(ImageQuery::all())
            } else {
                QueryRequest::SimilarTo {
                    name: archive.patches()[(i * 13) % archive.len()].meta.name.clone(),
                    k: K,
                }
            }
        })
        .collect()
}

fn bench_remote_serving(c: &mut Criterion) {
    let archive = archive(N, 110);
    let mut config = EarthQubeConfig::fast(110);
    config.milan.epochs = 12;
    let server = Arc::new(
        QueryServer::build(&archive, config, ServeConfig::uncached(8)).expect("server builds"),
    );
    let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", 4).expect("binds loopback");
    let requests = workload(&archive);

    // Sanity + headline numbers: remote results are identical, and the
    // per-request wire overhead is printed explicitly.
    let mut client = EqClient::connect(net.local_addr()).expect("connects");
    let start = Instant::now();
    let local: Vec<_> = requests.iter().map(|r| server.execute(r).expect("local")).collect();
    let t_local = start.elapsed();
    let start = Instant::now();
    let one_shot: Vec<_> = requests.iter().map(|r| client.execute(r).expect("remote")).collect();
    let t_one_shot = start.elapsed();
    let start = Instant::now();
    let batched = client.run_batch(&requests).expect("batch");
    let t_batched = start.elapsed();
    for ((a, b), c) in local.iter().zip(&one_shot).zip(&batched) {
        assert_eq!(a, b, "remote one-shot response differs");
        assert_eq!(a, c.as_ref().expect("batch slot"), "batched response differs");
    }
    println!(
        "[E10] {BATCH}-request workload: in-process {:>7.2?}, remote one-shot {:>7.2?} \
         ({:+.1}% / {:.0} µs per request), remote batched {:>7.2?} ({:+.1}%)",
        t_local,
        t_one_shot,
        (t_one_shot.as_secs_f64() / t_local.as_secs_f64() - 1.0) * 100.0,
        (t_one_shot.as_secs_f64() - t_local.as_secs_f64()) / BATCH as f64 * 1e6,
        t_batched,
        (t_batched.as_secs_f64() / t_local.as_secs_f64() - 1.0) * 100.0,
    );

    let mut group = c.benchmark_group("e10_remote_serving");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2500));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function(BenchmarkId::new("in_process", BATCH), |b| {
        b.iter(|| {
            for request in &requests {
                black_box(server.execute(request).expect("query succeeds"));
            }
        })
    });
    group.bench_function(BenchmarkId::new("remote_one_shot", BATCH), |b| {
        b.iter(|| {
            for request in &requests {
                black_box(client.execute(request).expect("query succeeds"));
            }
        })
    });
    group.bench_function(BenchmarkId::new("remote_batched", BATCH), |b| {
        b.iter(|| black_box(client.run_batch(&requests).expect("batch succeeds")))
    });
    group.finish();
    net.shutdown();
}

criterion_group!(benches, bench_remote_serving);
criterion_main!(benches);
