//! Experiment E12 — checkpoint stall under ingest: what a concurrent
//! checkpoint does to the p99 latency of acknowledged ingests.
//!
//! The paper's serving tier must absorb a continuously growing archive
//! while staying durable, so checkpoints run *while* ingest traffic is
//! live.  A monolithic snapshot holds the catalog write lock for the whole
//! encode — every ingest issued during that window stalls behind it, and
//! the stall grows with the archive.  The incremental checkpointer instead
//! clones only the dirty deltas under the lock and does all file I/O
//! unlocked, so the ingest p99 should stay near the no-checkpoint baseline
//! while the bytes written per checkpoint collapse to the delta size.
//!
//! Three regimes over the same recovered 4k-image server, ingesting the
//! same pregenerated patch stream one acknowledged write at a time:
//!
//! * `baseline` — no checkpoints at all,
//! * `full` — a sibling thread repeatedly checkpoints into a *fresh*
//!   directory (every such checkpoint is a full snapshot: the legacy
//!   regime),
//! * `incremental` — the sibling thread checkpoints into the attached
//!   directory (delta chunks + manifest swap).
//!
//! Results land in `BENCH_e12.json` at the workspace root.  `EQ_E12_SMOKE=1`
//! shrinks the workload for CI smoke runs (numbers are printed but the
//! acceptance ordering is only asserted on the full run).

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use eq_bench::archive;
use eq_bigearthnet::Archive;
use eq_earthqube::{CheckpointKind, EarthQubeConfig, QueryServer, ServeConfig};

fn engine_config(seed: u64) -> EarthQubeConfig {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 5;
    config
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eq_e12_{}_{tag}", std::process::id()))
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("scratch dir");
    for entry in std::fs::read_dir(src).expect("base checkpoint dir") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().expect("file name")))
                .expect("clone base checkpoint");
        }
    }
}

/// The `q`-th percentile (0..=1) of a latency sample set, in microseconds.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e6
}

/// A checkpoint loop body: given the shared server and the completed /
/// bytes-written counters, performs (at most) one checkpoint pass.
type CheckpointFn<'a> = &'a (dyn Fn(&QueryServer, &AtomicU64, &AtomicU64) + Sync);

struct RegimeResult {
    name: &'static str,
    ingests: usize,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    checkpoints: u64,
    bytes_per_checkpoint: f64,
}

/// Ingests `stream` one acknowledged patch at a time while `checkpointer`
/// (if any) runs on a sibling thread, and returns the latency distribution
/// plus what the checkpointer managed to write in that window.
fn run_regime(
    name: &'static str,
    base: &Path,
    stream: &Archive,
    min_checkpoints: u64,
    checkpointer: Option<CheckpointFn<'_>>,
) -> RegimeResult {
    let dir = scratch_dir(name);
    let _ = std::fs::remove_dir_all(&dir);
    copy_dir(base, &dir);
    let server = QueryServer::recover(&dir).expect("base checkpoint recovers");

    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let mut latencies: Vec<f64> = Vec::with_capacity(stream.patches().len());

    std::thread::scope(|scope| {
        if let Some(run_checkpoint) = checkpointer {
            scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    run_checkpoint(&server, &completed, &bytes);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        for patch in stream.patches() {
            let start = Instant::now();
            server.ingest(std::slice::from_ref(patch)).expect("ingest");
            latencies.push(start.elapsed().as_secs_f64());
        }
        // Let a slow checkpointer reach `min_checkpoints` before tearing
        // down, so the window always contains whole checkpoints.  Bounded:
        // a drained incremental regime goes clean and stops completing, in
        // which case the caller's count assertion reports the shortfall.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while checkpointer.is_some()
            && completed.load(Ordering::Acquire) < min_checkpoints
            && Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
    });
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let checkpoints = completed.load(Ordering::Acquire);
    RegimeResult {
        name,
        ingests: latencies.len(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        max_us: percentile(&latencies, 1.0),
        checkpoints,
        bytes_per_checkpoint: if checkpoints == 0 {
            0.0
        } else {
            bytes.load(Ordering::Acquire) as f64 / checkpoints as f64
        },
    }
}

fn bench_checkpoint_stall(c: &mut Criterion) {
    let smoke = std::env::var("EQ_E12_SMOKE").is_ok_and(|v| v == "1");
    let (base_n, stream_n, min_ckpts) = if smoke { (800, 60, 1) } else { (4_000, 300, 3) };

    println!(
        "[E12] checkpoint stall under ingest: {base_n}-image base, {stream_n} acknowledged \
         single-patch ingests{}",
        if smoke { ", smoke mode" } else { "" }
    );

    // One trained server, checkpointed once; every regime re-clones it so
    // all three start from the identical on-disk state.
    let base = scratch_dir("base");
    let _ = std::fs::remove_dir_all(&base);
    let data = archive(base_n, 99);
    let stream = archive(stream_n, 7_312);
    QueryServer::build(&data, engine_config(99), ServeConfig::default())
        .expect("server builds")
        .checkpoint(&base)
        .expect("base checkpoint");

    let baseline = run_regime("baseline", &base, &stream, 0, None);

    // Legacy regime: every checkpoint targets a fresh directory, which is
    // always a full snapshot — the whole catalog encoded under the write
    // lock while ingests queue behind it.
    let full_targets = AtomicU64::new(0);
    let full_fn = move |server: &QueryServer, completed: &AtomicU64, bytes: &AtomicU64| {
        let i = full_targets.fetch_add(1, Ordering::Relaxed);
        let target = scratch_dir(&format!("full_{i}"));
        let _ = std::fs::remove_dir_all(&target);
        let stats = server.checkpoint(&target).expect("full checkpoint");
        assert_eq!(stats.kind, CheckpointKind::Full, "a fresh directory forces a full snapshot");
        completed.fetch_add(1, Ordering::AcqRel);
        bytes.fetch_add(stats.bytes_written, Ordering::AcqRel);
        if i > 0 {
            let _ = std::fs::remove_dir_all(scratch_dir(&format!("full_{}", i - 1)));
        }
    };
    let full = run_regime("full", &base, &stream, min_ckpts, Some(&full_fn));
    let _ = std::fs::remove_dir_all(scratch_dir(&format!(
        "full_{}",
        full.checkpoints.saturating_sub(1)
    )));

    // Incremental regime: checkpoint into the attached directory — the cut
    // clones dirty deltas under the lock, everything else runs unlocked.
    let incr_fn = |server: &QueryServer, completed: &AtomicU64, bytes: &AtomicU64| {
        if let Some(stats) = server.checkpoint_if_dirty().expect("incremental checkpoint") {
            assert_ne!(stats.kind, CheckpointKind::Full, "the attached directory takes deltas");
            completed.fetch_add(1, Ordering::AcqRel);
            bytes.fetch_add(stats.bytes_written, Ordering::AcqRel);
        }
    };
    let incremental = run_regime("incremental", &base, &stream, min_ckpts, Some(&incr_fn));

    let results = [&baseline, &full, &incremental];
    for r in results {
        println!(
            "[E12] {:>12}: {} ingests, p50 {:>8.1} us, p99 {:>9.1} us, max {:>9.1} us | \
             {} checkpoints, {:>12.0} bytes/checkpoint",
            r.name, r.ingests, r.p50_us, r.p99_us, r.max_us, r.checkpoints, r.bytes_per_checkpoint
        );
    }

    if !smoke {
        assert!(
            full.checkpoints >= min_ckpts && incremental.checkpoints >= min_ckpts,
            "both checkpointing regimes must complete at least {min_ckpts} checkpoints \
             inside the measurement window"
        );
        // The acceptance ordering: deltas shrink both the stall tail and
        // the bytes.  The byte ratio is deterministic; the latency ordering
        // has orders of magnitude of headroom (a full snapshot encode holds
        // the write lock for tens of milliseconds, an incremental cut for
        // the clone of a handful of documents).
        assert!(
            incremental.bytes_per_checkpoint * 5.0 < full.bytes_per_checkpoint,
            "incremental checkpoints must write <20% of a full snapshot per pass \
             (measured {:.0} vs {:.0} bytes)",
            incremental.bytes_per_checkpoint,
            full.bytes_per_checkpoint
        );
        assert!(
            incremental.p99_us < full.p99_us,
            "ingest p99 under incremental checkpoints ({:.1} us) must beat the \
             full-snapshot regime ({:.1} us)",
            incremental.p99_us,
            full.p99_us
        );
        write_json(&baseline, &full, &incremental, base_n, stream_n);
    }

    // Criterion sample for the CI log: the skip probe — what the background
    // checkpointer pays per pass when nothing is dirty.  Bounded work, so
    // it is safe to let the harness iterate it freely.
    let clean_dir = scratch_dir("clean");
    let _ = std::fs::remove_dir_all(&clean_dir);
    copy_dir(&base, &clean_dir);
    let clean = QueryServer::recover(&clean_dir).expect("base checkpoint recovers");
    let mut group = c.benchmark_group("e12_checkpoint_stall");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(if smoke { 300 } else { 1000 }));
    group.bench_function("skip_probe_when_clean", |b| {
        b.iter(|| black_box(clean.checkpoint_if_dirty().expect("skip probe")))
    });
    group.finish();
    drop(clean);
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&base);
}

/// Records the measurements in `BENCH_e12.json` at the workspace root (the
/// committed copy tracks the perf trajectory across PRs).
fn write_json(
    baseline: &RegimeResult,
    full: &RegimeResult,
    incremental: &RegimeResult,
    base_n: usize,
    stream_n: usize,
) {
    let row = |r: &RegimeResult| {
        format!(
            "    {{\n      \"regime\": \"{}\",\n      \"ingests\": {},\n      \
             \"ingest_p50_us\": {:.1},\n      \"ingest_p99_us\": {:.1},\n      \
             \"ingest_max_us\": {:.1},\n      \"checkpoints\": {},\n      \
             \"bytes_per_checkpoint\": {:.0}\n    }}",
            r.name, r.ingests, r.p50_us, r.p99_us, r.max_us, r.checkpoints, r.bytes_per_checkpoint
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"e12_checkpoint_stall\",\n  \"base_images\": {base_n},\n  \
         \"ingest_stream\": {stream_n},\n  \"acceptance\": \"incremental checkpoints write \
         <20% of a full snapshot per pass and keep ingest p99 below the full-snapshot \
         regime\",\n  \"results\": [\n{},\n{},\n{}\n  ]\n}}\n",
        row(baseline),
        row(full),
        row(incremental)
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_e12.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[E12] could not write {}: {e}", path.display());
    } else {
        println!("[E12] wrote {}", path.display());
    }
}

criterion_group!(benches, bench_checkpoint_stall);
criterion_main!(benches);
