//! Experiment E1 — search scaling: the paper's hash-table lookup
//! ("real-time nearest neighbor search", §2.2) versus multi-index hashing,
//! a brute-force Hamming linear scan, and exact float k-NN, as the archive
//! grows.  The absolute numbers depend on the machine; the shape to look
//! for is that the hash-table / MIH query time stays roughly flat while the
//! two scan baselines grow linearly with the archive size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::{clustered_codes, random_features};
use eq_hashindex::{
    DistanceMetric, FloatKnnIndex, HammingIndex, HashTableIndex, LinearScanIndex, MultiIndexHashing,
};
use std::hint::black_box;

const CODE_BITS: u32 = 128;
const FEATURE_DIM: usize = 57;
const ARCHIVE_SIZES: [usize; 3] = [2_000, 10_000, 40_000];
const RADIUS: u32 = 4;
const K: usize = 10;

fn bench_search_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_search_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &n in &ARCHIVE_SIZES {
        let codes = clustered_codes(n, CODE_BITS, 64, 11);
        let features = random_features(n, FEATURE_DIM, 11);
        let query_code = codes[n / 2].clone();
        let query_feature = features[n / 2].clone();

        let mut table = HashTableIndex::new(CODE_BITS);
        let mut linear = LinearScanIndex::new(CODE_BITS);
        let chunks = MultiIndexHashing::recommended_chunks(CODE_BITS, n);
        let mut mih = MultiIndexHashing::new(CODE_BITS, chunks);
        let mut float_knn = FloatKnnIndex::new(FEATURE_DIM, DistanceMetric::Euclidean);
        for (i, code) in codes.iter().enumerate() {
            table.insert(i as u64, code.clone());
            linear.insert(i as u64, code.clone());
            mih.insert(i as u64, code.clone());
        }
        for (i, f) in features.iter().enumerate() {
            float_knn.insert(i as u64, f);
        }
        println!(
            "[E1] n={n}: hash table holds {} buckets, MIH uses {chunks} substrings, radius-{RADIUS} \
             lookup returns {} images",
            table.bucket_count(),
            table.radius_search(&query_code, RADIUS).len()
        );

        group.bench_with_input(BenchmarkId::new("hash_table_radius", n), &n, |b, _| {
            b.iter(|| black_box(table.radius_search(black_box(&query_code), RADIUS)))
        });
        group.bench_with_input(BenchmarkId::new("mih_radius", n), &n, |b, _| {
            b.iter(|| black_box(mih.radius_search(black_box(&query_code), RADIUS)))
        });
        group.bench_with_input(BenchmarkId::new("hash_table_knn", n), &n, |b, _| {
            b.iter(|| black_box(table.knn(black_box(&query_code), K)))
        });
        group.bench_with_input(BenchmarkId::new("linear_scan_knn", n), &n, |b, _| {
            b.iter(|| black_box(linear.knn(black_box(&query_code), K)))
        });
        group.bench_with_input(BenchmarkId::new("float_exact_knn", n), &n, |b, _| {
            b.iter(|| black_box(float_knn.knn(black_box(&query_feature), K)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_scaling);
criterion_main!(benches);
