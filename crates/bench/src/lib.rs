//! Shared helpers for the Criterion benchmark harness.
//!
//! Every benchmark in `benches/` reproduces one experiment from
//! `EXPERIMENTS.md`; this crate hosts the common setup code (synthetic
//! archives, code generation, trained models) so that the individual bench
//! files stay focused on what they measure.

#![warn(missing_docs)]

use eq_bigearthnet::{Archive, ArchiveGenerator, GeneratorConfig};
use eq_hashindex::BinaryCode;
use eq_milan::{Milan, MilanConfig, TrainingDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a small synthetic archive with pixel data (deterministic).
pub fn archive(num_patches: usize, seed: u64) -> Archive {
    ArchiveGenerator::new(GeneratorConfig::tiny(num_patches, seed))
        .expect("valid generator configuration")
        .generate()
}

/// Generates archive metadata only (no pixels), for metadata-scale benches.
pub fn metadata(num_patches: usize, seed: u64) -> Vec<eq_bigearthnet::PatchMetadata> {
    ArchiveGenerator::new(GeneratorConfig::tiny(num_patches, seed))
        .expect("valid generator configuration")
        .generate_metadata_only()
}

/// Trains a small MiLaN model on an archive (few epochs; the benches measure
/// inference/search, not training).
pub fn trained_model(archive: &Archive, code_bits: u32, seed: u64) -> Milan {
    let dataset = TrainingDataset::from_archive(archive);
    let mut model = Milan::new(MilanConfig {
        epochs: 12,
        triplets_per_epoch: 128,
        ..MilanConfig::fast(code_bits, seed)
    })
    .expect("valid model configuration");
    model.train(&dataset);
    model
}

/// Generates `n` synthetic binary codes of the given width whose pairwise
/// distances have cluster structure (items belong to one of `clusters`
/// centroids with a few random bit flips), mimicking the distribution of
/// learned hash codes without paying for model training at every archive
/// size of experiment E1.
pub fn clustered_codes(n: usize, bits: u32, clusters: usize, seed: u64) -> Vec<BinaryCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<BinaryCode> = (0..clusters.max(1))
        .map(|_| {
            let bools: Vec<bool> = (0..bits).map(|_| rng.gen_bool(0.5)).collect();
            BinaryCode::from_bools(&bools)
        })
        .collect();
    (0..n)
        .map(|i| {
            let mut code = centroids[i % centroids.len()].clone();
            // Flip ~5 % of the bits.
            let flips = (bits as f64 * 0.05).ceil() as u32;
            for _ in 0..flips {
                let b = rng.gen_range(0..bits);
                code.set_bit(b, !code.bit(b));
            }
            code
        })
        .collect()
}

/// Generates `n` random float feature vectors of dimension `dim`.
pub fn random_features(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_codes_have_cluster_structure() {
        let codes = clustered_codes(200, 64, 8, 1);
        assert_eq!(codes.len(), 200);
        // Same-cluster items (stride `clusters`) are closer than different-cluster items on average.
        let same: u32 = (0..50).map(|i| codes[i].hamming_distance(&codes[i + 8])).sum();
        let diff: u32 = (0..50).map(|i| codes[i].hamming_distance(&codes[i + 1])).sum();
        assert!(same < diff);
    }

    #[test]
    fn helpers_are_deterministic() {
        assert_eq!(clustered_codes(10, 32, 4, 7), clustered_codes(10, 32, 4, 7));
        assert_eq!(random_features(5, 8, 3), random_features(5, 8, 3));
        assert_eq!(metadata(20, 9).len(), 20);
        assert_eq!(archive(5, 9).len(), 5);
    }
}
