//! Property-based byte-identity pinning for bitmap-prefiltered similarity
//! search (E13): for random query-panel requests, random query images and
//! random `k`/radius, the bitmap-prefilter strategy, the post-filter scan
//! and the cost-based `Auto` planner must return **byte-identical**
//! responses, and every hit must satisfy the query's metadata filter.
//!
//! One engine is built once (via `OnceLock`) outside the proptest loop —
//! the properties randomise the *queries*, not the corpus, which keeps the
//! suite fast while still sweeping the full query-panel surface (country
//! and season subsets, all three label operators, geo rectangles and date
//! ranges).

use std::sync::OnceLock;

use eq_bigearthnet::labels::Label;
use eq_bigearthnet::patch::{AcquisitionDate, Season};
use eq_bigearthnet::{ArchiveGenerator, Country, GeneratorConfig};
use eq_earthqube::{
    metadata_document, EarthQube, EarthQubeConfig, FilteredResponse, ImageQuery, LabelFilter,
    LabelOperator, PrefilterMode,
};
use eq_geo::{BBox, GeoShape};
use proptest::prelude::*;

const PATCHES: usize = 48;

fn engine() -> &'static (EarthQube, Vec<String>) {
    static ENGINE: OnceLock<(EarthQube, Vec<String>)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(PATCHES, 77)).unwrap().generate();
        let mut cfg = EarthQubeConfig::fast(77);
        cfg.train_model = false; // untrained codes are still deterministic
        let names = archive.patches().iter().map(|p| p.meta.name.clone()).collect();
        (EarthQube::build(&archive, cfg).unwrap(), names)
    })
}

const COUNTRIES: [Country; 4] =
    [Country::Austria, Country::Finland, Country::Portugal, Country::Serbia];
const LABELS: [Label; 3] = [Label::MixedForest, Label::ConiferousForest, Label::SeaAndOcean];

/// Builds a random-but-valid query-panel request from drawn primitives.
fn arb_query() -> impl Strategy<Value = ImageQuery> {
    (0u8..16, 0u8..16, 0u8..8, 1u8..8, 0u8..3, -10.0f64..20.0, 37.0f64..60.0, 0u8..3).prop_map(
        |(cbits, sbits, lop, lbits, geo, lon, lat, dates)| {
            let mut q = ImageQuery::all();
            let picked: Vec<Country> = COUNTRIES
                .iter()
                .enumerate()
                .filter(|(i, _)| cbits & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect();
            if !picked.is_empty() {
                q = q.with_countries(picked);
            }
            let seasons: Vec<Season> = Season::ALL
                .iter()
                .enumerate()
                .filter(|(i, _)| sbits & (1 << i) != 0)
                .map(|(_, s)| *s)
                .collect();
            if !seasons.is_empty() {
                q = q.with_seasons(seasons);
            }
            // lop 0..5 → an operator, 5..8 → no label filter; the selection
            // is always non-empty so the query always validates.
            let operator = match lop {
                0 | 1 => Some(LabelOperator::Some),
                2 | 3 => Some(LabelOperator::AtLeastAndMore),
                4 => Some(LabelOperator::Exactly),
                _ => None,
            };
            if let Some(op) = operator {
                let labels: Vec<Label> = LABELS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| lbits & (1 << i) != 0)
                    .map(|(_, l)| *l)
                    .collect();
                q = q.with_labels(LabelFilter::new(op, labels));
            }
            if geo == 1 {
                let bbox = BBox::new(lon, lat, lon + 8.0, lat + 6.0).unwrap();
                q = q.with_shape(GeoShape::Rect(bbox));
            }
            match dates {
                1 => {
                    let from = AcquisitionDate::new(2017, 6, 1).unwrap();
                    let to = AcquisitionDate::new(2018, 5, 31).unwrap();
                    q = q.with_date_range(from, to);
                }
                2 => {
                    let from = AcquisitionDate::new(2017, 1, 1).unwrap();
                    let to = AcquisitionDate::new(2017, 12, 31).unwrap();
                    q = q.with_date_range(from, to);
                }
                _ => {}
            }
            q
        },
    )
}

/// Asserts the three planner modes agree byte-for-byte and returns the
/// bitmap-strategy response for further checks.
fn identical_across_modes(
    run: impl Fn(PrefilterMode) -> FilteredResponse,
) -> Result<FilteredResponse, TestCaseError> {
    let bitmap = run(PrefilterMode::ForceBitmap);
    let scan = run(PrefilterMode::ForcePostFilter);
    let auto = run(PrefilterMode::Auto);
    prop_assert!(
        bitmap.response == scan.response,
        "bitmap and post-filter responses diverge: {:?} vs {:?}",
        bitmap.plan,
        scan.plan
    );
    prop_assert!(auto.response == scan.response, "auto diverges from post-filter");
    prop_assert!(bitmap.plan.matching == scan.plan.matching, "match counts diverge");
    prop_assert!(auto.plan.matching == scan.plan.matching, "auto match count diverges");
    Ok(bitmap)
}

/// Every hit satisfies the query's metadata filter and is not the query
/// image itself.
fn assert_hits_match(
    eq: &EarthQube,
    query: &ImageQuery,
    name: &str,
    got: &FilteredResponse,
) -> Result<(), TestCaseError> {
    let filter = query.to_filter();
    for e in got.response.panel.entries() {
        prop_assert!(e.name != name, "query image leaked into its own results");
        let meta = eq.metadata_of(&e.name).expect("hit refers to an archived patch");
        prop_assert!(
            filter.matches(&metadata_document(meta)),
            "{} does not satisfy the query filter",
            e.name
        );
    }
    prop_assert!(
        got.response.total() <= got.plan.matching,
        "more hits than filter-matching images"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn filtered_knn_is_byte_identical_across_strategies(
        query in arb_query(),
        who in 0usize..PATCHES,
        k in 0usize..12,
    ) {
        let (eq, names) = engine();
        let name = &names[who];
        let got = identical_across_modes(|mode| {
            eq.similar_to_filtered(name, k, &query, mode).unwrap()
        })?;
        prop_assert!(got.response.total() <= k, "k-NN returned more than k hits");
        assert_hits_match(eq, &query, name, &got)?;
    }

    #[test]
    fn filtered_radius_search_is_byte_identical_across_strategies(
        query in arb_query(),
        who in 0usize..PATCHES,
        radius in 0u32..40,
    ) {
        let (eq, names) = engine();
        let name = &names[who];
        let got = identical_across_modes(|mode| {
            eq.similar_within_filtered(name, radius, &query, mode).unwrap()
        })?;
        assert_hits_match(eq, &query, name, &got)?;
    }

    #[test]
    fn unrestricted_filtered_knn_equals_the_plain_cbir_path(
        who in 0usize..PATCHES,
        k in 1usize..10,
    ) {
        let (eq, names) = engine();
        let name = &names[who];
        // With Filter::All the filtered path ranks the same universe as
        // the ordinary similar-to query — responses must coincide.
        let got = identical_across_modes(|mode| {
            eq.similar_to_filtered(name, k, &ImageQuery::all(), mode).unwrap()
        })?;
        let plain = eq.similar_to(name, k).unwrap();
        prop_assert!(got.response.panel.entries() == plain.panel.entries());
        prop_assert!(got.plan.matching == PATCHES);
    }
}
