//! The query-panel model (§3.1 of the paper).
//!
//! Users can restrict a search by a geospatial shape (rectangle, circle or
//! polygon), an acquisition-date range, satellites, seasons, and land-cover
//! labels with three operators: `Some`, `Exactly` and `At least & more`.

use eq_bigearthnet::labels::Label;
use eq_bigearthnet::patch::{AcquisitionDate, Satellite, Season};
use eq_docstore::{Filter, Value};
use eq_geo::GeoShape;

use crate::schema::fields;
use crate::EarthQubeError;

/// The three label-filtering operators of the EarthQube query panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelOperator {
    /// `Some`: the image has **at least one** of the selected labels.
    Some,
    /// `Exactly`: the image has **exactly** the selected labels.
    Exactly,
    /// `At least & more`: the image has **all** the selected labels and
    /// possibly additional ones.
    AtLeastAndMore,
}

/// A label filter: an operator applied to a set of selected CLC labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelFilter {
    /// The operator.
    pub operator: LabelOperator,
    /// The selected Level-3 labels.
    pub labels: Vec<Label>,
}

impl LabelFilter {
    /// Creates a label filter.
    pub fn new(operator: LabelOperator, labels: Vec<Label>) -> Self {
        Self { operator, labels }
    }

    /// Translates the filter into a document-store predicate over the
    /// ASCII-coded label string.
    pub fn to_filter(&self) -> Filter {
        let codes: Vec<Value> =
            self.labels.iter().map(|l| Value::Str(l.ascii_code().to_string())).collect();
        match self.operator {
            LabelOperator::Some => Filter::ContainsAny(fields::LABELS.into(), codes),
            LabelOperator::Exactly => Filter::ContainsExactly(fields::LABELS.into(), codes),
            LabelOperator::AtLeastAndMore => Filter::ContainsAll(fields::LABELS.into(), codes),
        }
    }

    /// Whether a label set satisfies the filter (used for in-memory checks
    /// and tests; must agree with [`to_filter`](Self::to_filter)).
    pub fn matches(&self, labels: eq_bigearthnet::labels::LabelSet) -> bool {
        let selected = eq_bigearthnet::labels::LabelSet::from_labels(self.labels.iter().copied());
        match self.operator {
            LabelOperator::Some => labels.intersects(selected),
            LabelOperator::Exactly => labels == selected,
            LabelOperator::AtLeastAndMore => labels.is_superset(selected),
        }
    }
}

/// A query-panel request: every field is optional and all present fields
/// must hold simultaneously.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImageQuery {
    /// Geospatial restriction (rectangle, circle or polygon drawn on the map).
    pub shape: Option<GeoShape>,
    /// Acquisition-date range (inclusive on both ends).
    pub date_range: Option<(AcquisitionDate, AcquisitionDate)>,
    /// Satellites of interest.  Every BigEarthNet record is a Sentinel-1 +
    /// Sentinel-2 pair, so this field never excludes records; it controls
    /// which modality downstream consumers render.
    pub satellites: Vec<Satellite>,
    /// Seasons of interest (empty = all seasons).
    pub seasons: Vec<Season>,
    /// Countries of interest (empty = all ten).
    pub countries: Vec<eq_bigearthnet::Country>,
    /// Label filter; `None` means the label switch is "on" (no filtering),
    /// as in the UI default.
    pub labels: Option<LabelFilter>,
}

impl ImageQuery {
    /// A query with no restrictions.
    pub fn all() -> Self {
        Self::default()
    }

    /// Builder: restrict to a geospatial shape.
    pub fn with_shape(mut self, shape: GeoShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// Builder: restrict to a date range.
    pub fn with_date_range(mut self, from: AcquisitionDate, to: AcquisitionDate) -> Self {
        self.date_range = Some((from, to));
        self
    }

    /// Builder: restrict to seasons.
    pub fn with_seasons(mut self, seasons: Vec<Season>) -> Self {
        self.seasons = seasons;
        self
    }

    /// Builder: restrict to countries.
    pub fn with_countries(mut self, countries: Vec<eq_bigearthnet::Country>) -> Self {
        self.countries = countries;
        self
    }

    /// Builder: apply a label filter.
    pub fn with_labels(mut self, filter: LabelFilter) -> Self {
        self.labels = Some(filter);
        self
    }

    /// Validates the query (date range ordering, non-empty label selection).
    pub fn validate(&self) -> Result<(), EarthQubeError> {
        if let Some((from, to)) = &self.date_range {
            if from > to {
                return Err(EarthQubeError::BadRequest(format!(
                    "date range is inverted: {from} > {to}"
                )));
            }
        }
        if let Some(lf) = &self.labels {
            if lf.labels.is_empty() {
                return Err(EarthQubeError::BadRequest(
                    "label filter with no labels selected".into(),
                ));
            }
        }
        Ok(())
    }

    /// Translates the query into a document-store filter over the metadata
    /// collection.
    pub fn to_filter(&self) -> Filter {
        let mut filter = Filter::All;
        if let Some(shape) = &self.shape {
            filter = filter.and(Filter::GeoWithin(fields::LOCATION.into(), shape.clone()));
        }
        if let Some((from, to)) = &self.date_range {
            filter = filter
                .and(Filter::Gte(fields::DATE.into(), Value::Date(from.ordinal())))
                .and(Filter::Lte(fields::DATE.into(), Value::Date(to.ordinal())));
        }
        if !self.seasons.is_empty() {
            filter = filter.and(Filter::In(
                fields::SEASON.into(),
                self.seasons.iter().map(|s| Value::Str(s.name().to_string())).collect(),
            ));
        }
        if !self.countries.is_empty() {
            filter = filter.and(Filter::In(
                fields::COUNTRY.into(),
                self.countries.iter().map(|c| Value::Str(c.name().to_string())).collect(),
            ));
        }
        if let Some(lf) = &self.labels {
            filter = filter.and(lf.to_filter());
        }
        filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::metadata_document;
    use eq_bigearthnet::labels::LabelSet;
    use eq_bigearthnet::{ArchiveGenerator, Country, GeneratorConfig};
    use eq_geo::BBox;

    #[test]
    fn label_operator_semantics_match_the_paper() {
        // The paper's example: an image with {Coniferous forest, Beaches,
        // dunes, sands, Sea and ocean, Bare rock}.
        let image = LabelSet::from_labels([
            Label::ConiferousForest,
            Label::BeachesDunesSands,
            Label::SeaAndOcean,
            Label::BareRock,
        ]);
        let selected = vec![Label::ConiferousForest, Label::BeachesDunesSands, Label::SeaAndOcean];

        assert!(LabelFilter::new(LabelOperator::Some, selected.clone()).matches(image));
        assert!(LabelFilter::new(LabelOperator::AtLeastAndMore, selected.clone()).matches(image));
        assert!(!LabelFilter::new(LabelOperator::Exactly, selected.clone()).matches(image));

        // An image with exactly the selected labels matches all three.
        let exact = LabelSet::from_labels(selected.clone());
        assert!(LabelFilter::new(LabelOperator::Exactly, selected.clone()).matches(exact));

        // An image with only one of the selected labels matches only `Some`.
        let partial = LabelSet::from_labels([Label::SeaAndOcean]);
        assert!(LabelFilter::new(LabelOperator::Some, selected.clone()).matches(partial));
        assert!(!LabelFilter::new(LabelOperator::AtLeastAndMore, selected.clone()).matches(partial));
        assert!(!LabelFilter::new(LabelOperator::Exactly, selected).matches(partial));
    }

    #[test]
    fn label_filter_document_predicate_agrees_with_in_memory_matching() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(80, 21)).unwrap().generate_metadata_only();
        let filters = vec![
            LabelFilter::new(
                LabelOperator::Some,
                vec![Label::MixedForest, Label::ConiferousForest],
            ),
            LabelFilter::new(LabelOperator::AtLeastAndMore, vec![Label::MixedForest]),
            LabelFilter::new(LabelOperator::Exactly, vec![Label::MixedForest]),
        ];
        for lf in filters {
            let doc_filter = lf.to_filter();
            for meta in &metas {
                let doc = metadata_document(meta);
                assert_eq!(
                    doc_filter.matches(&doc),
                    lf.matches(meta.labels),
                    "operator {:?} disagreed on {}",
                    lf.operator,
                    meta.name
                );
            }
        }
    }

    #[test]
    fn query_builder_and_validation() {
        let from = AcquisitionDate::new(2017, 6, 1).unwrap();
        let to = AcquisitionDate::new(2018, 5, 31).unwrap();
        let q = ImageQuery::all()
            .with_shape(GeoShape::Rect(BBox::new(-9.5, 36.9, -6.2, 42.2).unwrap()))
            .with_date_range(from, to)
            .with_seasons(vec![Season::Summer])
            .with_countries(vec![Country::Portugal])
            .with_labels(LabelFilter::new(LabelOperator::Some, vec![Label::SeaAndOcean]));
        assert!(q.validate().is_ok());

        let inverted = ImageQuery::all().with_date_range(to, from);
        assert!(matches!(inverted.validate(), Err(EarthQubeError::BadRequest(_))));
        let empty_labels =
            ImageQuery::all().with_labels(LabelFilter::new(LabelOperator::Some, vec![]));
        assert!(matches!(empty_labels.validate(), Err(EarthQubeError::BadRequest(_))));
        assert!(ImageQuery::all().validate().is_ok());
    }

    #[test]
    fn to_filter_composes_all_restrictions() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(120, 22)).unwrap().generate_metadata_only();
        let q = ImageQuery::all()
            .with_countries(vec![Country::Finland, Country::Portugal])
            .with_seasons(vec![Season::Summer, Season::Autumn]);
        let f = q.to_filter();
        for meta in &metas {
            let doc = metadata_document(meta);
            let expected = matches!(meta.country, Country::Finland | Country::Portugal)
                && matches!(meta.season(), Season::Summer | Season::Autumn);
            assert_eq!(f.matches(&doc), expected, "mismatch for {}", meta.name);
        }
    }

    #[test]
    fn unrestricted_query_matches_everything() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(10, 23)).unwrap().generate_metadata_only();
        let f = ImageQuery::all().to_filter();
        assert_eq!(f, Filter::All);
        for meta in &metas {
            assert!(f.matches(&metadata_document(meta)));
        }
    }

    #[test]
    fn date_range_filter_is_inclusive() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(100, 24)).unwrap().generate_metadata_only();
        let target = metas[0].date;
        let q = ImageQuery::all().with_date_range(target, target);
        let f = q.to_filter();
        let matches: Vec<&str> = metas
            .iter()
            .filter(|m| f.matches(&metadata_document(m)))
            .map(|m| m.name.as_str())
            .collect();
        assert!(matches.contains(&metas[0].name.as_str()));
        for m in &metas {
            assert_eq!(matches.contains(&m.name.as_str()), m.date == target);
        }
    }
}
