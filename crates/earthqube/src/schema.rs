//! The metadata document schema (§3.2 of the paper).
//!
//! Metadata documents have a `location` attribute (the patch centre used by
//! the 2-D geohash index, plus the bounding rectangle) and a `properties`
//! attribute with the queryable features: image name, ASCII-coded labels,
//! season, country and acquisition date.

use eq_bigearthnet::labels::LabelSet;
use eq_bigearthnet::patch::{AcquisitionDate, PatchId, PatchMetadata};
use eq_bigearthnet::Country;
use eq_docstore::{Document, Value};
use eq_geo::BBox;

/// The four collection names of the EarthQube data tier.
pub mod collections {
    /// Image metadata (the central collection).
    pub const METADATA: &str = "metadata";
    /// Raw image band data.
    pub const IMAGE_DATA: &str = "image_data";
    /// Rendered RGB images.
    pub const RENDERED: &str = "rendered_images";
    /// Anonymous user feedback.
    pub const FEEDBACK: &str = "feedback";
}

/// Field paths of the metadata document.
pub mod fields {
    /// Primary key: the BigEarthNet patch name.
    pub const NAME: &str = "name";
    /// `[lon, lat]` centre point, target of the 2-D geohash index.
    pub const LOCATION: &str = "location";
    /// Bounding rectangle `[min_lon, min_lat, max_lon, max_lat]`.
    pub const BBOX: &str = "bbox";
    /// Dense patch id (position in feature/code matrices).
    pub const PATCH_ID: &str = "patch_id";
    /// ASCII-coded label string.
    pub const LABELS: &str = "properties.labels";
    /// Country name.
    pub const COUNTRY: &str = "properties.country";
    /// Season name.
    pub const SEASON: &str = "properties.season";
    /// Acquisition date (ordinal).
    pub const DATE: &str = "properties.date";
    /// Acquisition date (ISO string, for display).
    pub const DATE_ISO: &str = "properties.date_iso";
}

/// Builds the metadata document for a patch.
pub fn metadata_document(meta: &PatchMetadata) -> Document {
    let center = meta.bbox.center();
    let mut properties = std::collections::BTreeMap::new();
    properties.insert("labels".to_string(), Value::Str(meta.labels.to_ascii_codes()));
    properties.insert("country".to_string(), Value::Str(meta.country.name().to_string()));
    properties.insert("season".to_string(), Value::Str(meta.season().name().to_string()));
    properties.insert("date".to_string(), Value::Date(meta.date.ordinal()));
    properties.insert("date_iso".to_string(), Value::Str(meta.date.to_iso()));

    Document::new()
        .with(fields::NAME, meta.name.as_str())
        .with(fields::PATCH_ID, meta.id.0)
        .with(
            fields::LOCATION,
            Value::Array(vec![Value::Float(center.lon), Value::Float(center.lat)]),
        )
        .with(
            fields::BBOX,
            Value::Array(vec![
                Value::Float(meta.bbox.min_lon),
                Value::Float(meta.bbox.min_lat),
                Value::Float(meta.bbox.max_lon),
                Value::Float(meta.bbox.max_lat),
            ]),
        )
        .with("properties", Value::Doc(properties))
}

/// Reconstructs patch metadata from a metadata document (the inverse of
/// [`metadata_document`]); returns `None` if the document is malformed.
pub fn metadata_from_document(doc: &Document) -> Option<PatchMetadata> {
    let name = doc.get(fields::NAME)?.as_str()?.to_string();
    let id = doc.get(fields::PATCH_ID)?.as_int()? as u32;
    let bbox = doc.get(fields::BBOX)?.as_array()?;
    if bbox.len() != 4 {
        return None;
    }
    let bbox = BBox::new(
        bbox[0].as_float()?,
        bbox[1].as_float()?,
        bbox[2].as_float()?,
        bbox[3].as_float()?,
    )
    .ok()?;
    let labels = LabelSet::from_ascii_codes(doc.get(fields::LABELS)?.as_str()?);
    let country = Country::from_name(doc.get(fields::COUNTRY)?.as_str()?)?;
    let date = AcquisitionDate::from_iso(doc.get(fields::DATE_ISO)?.as_str()?)?;
    Some(PatchMetadata { id: PatchId(id), name, bbox, labels, country, date })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};

    fn sample_meta() -> Vec<PatchMetadata> {
        ArchiveGenerator::new(GeneratorConfig::tiny(25, 11)).unwrap().generate_metadata_only()
    }

    #[test]
    fn document_roundtrip_preserves_metadata() {
        for meta in sample_meta() {
            let doc = metadata_document(&meta);
            let back = metadata_from_document(&doc).expect("roundtrip");
            assert_eq!(back.id, meta.id);
            assert_eq!(back.name, meta.name);
            assert_eq!(back.labels, meta.labels);
            assert_eq!(back.country, meta.country);
            assert_eq!(back.date, meta.date);
            assert!((back.bbox.min_lon - meta.bbox.min_lon).abs() < 1e-9);
            assert!((back.bbox.max_lat - meta.bbox.max_lat).abs() < 1e-9);
        }
    }

    #[test]
    fn document_has_the_papers_schema_shape() {
        let meta = &sample_meta()[0];
        let doc = metadata_document(meta);
        // location is a [lon, lat] pair inside the patch bbox.
        let loc = doc.get(fields::LOCATION).unwrap().as_array().unwrap();
        assert_eq!(loc.len(), 2);
        let lon = loc[0].as_float().unwrap();
        let lat = loc[1].as_float().unwrap();
        assert!(meta.bbox.contains(eq_geo::Point::new_unchecked(lon, lat)));
        // properties carries labels (ASCII codes), season, country, date.
        assert!(!doc.get(fields::LABELS).unwrap().as_str().unwrap().is_empty());
        assert!(doc.get(fields::SEASON).is_some());
        assert!(doc.get(fields::COUNTRY).is_some());
        assert!(doc.get(fields::DATE).unwrap().as_date().is_some());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(metadata_from_document(&Document::new()).is_none());
        let meta = &sample_meta()[0];
        let mut doc = metadata_document(meta);
        doc.set(fields::BBOX, Value::Array(vec![Value::Float(1.0)]));
        assert!(metadata_from_document(&doc).is_none());
        let mut doc = metadata_document(meta);
        doc.set("properties", Value::Doc(Default::default()));
        assert!(metadata_from_document(&doc).is_none());
    }

    #[test]
    fn collection_names_are_the_papers_four() {
        assert_eq!(collections::METADATA, "metadata");
        assert_eq!(collections::IMAGE_DATA, "image_data");
        assert_eq!(collections::RENDERED, "rendered_images");
        assert_eq!(collections::FEEDBACK, "feedback");
    }
}
