//! The label-statistics view (Figure 2-4 of the paper).
//!
//! EarthQube "summarizes the occurrence of land cover labels in the
//! retrieved images" as a bar chart with one predefined colour per label.
//! This module computes the counts and renders a text bar chart that the
//! examples print in place of the web UI.

use eq_bigearthnet::labels::{Label, LabelSet};

/// Occurrence counts of land-cover labels in a set of retrieved images.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LabelStatistics {
    counts: Vec<usize>,
    images: usize,
}

impl LabelStatistics {
    /// Computes statistics from the label sets of the retrieved images.
    pub fn from_label_sets<I: IntoIterator<Item = LabelSet>>(sets: I) -> Self {
        let mut counts = vec![0usize; Label::COUNT];
        let mut images = 0usize;
        for set in sets {
            images += 1;
            for label in set.iter() {
                counts[label.index()] += 1;
            }
        }
        Self { counts, images }
    }

    /// Reassembles statistics from raw parts — the network-decoding path.
    /// `counts` must be indexed by [`Label::index`] (the layout
    /// [`counts`](Self::counts) exposes); equality with locally computed
    /// statistics requires the canonical [`Label::COUNT`] length.
    pub fn from_parts(counts: Vec<usize>, image_count: usize) -> Self {
        Self { counts, images: image_count }
    }

    /// The raw per-label occurrence counts, indexed by [`Label::index`].
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of images the statistics cover.
    pub fn image_count(&self) -> usize {
        self.images
    }

    /// The occurrence count of one label.
    pub fn count(&self, label: Label) -> usize {
        self.counts.get(label.index()).copied().unwrap_or(0)
    }

    /// All `(label, count)` pairs with a non-zero count, sorted by count
    /// descending then by label index — the order the bar chart displays.
    pub fn ranked(&self) -> Vec<(Label, usize)> {
        let mut out: Vec<(Label, usize)> = Label::ALL
            .iter()
            .copied()
            .filter_map(|l| {
                let c = self.counts[l.index()];
                (c > 0).then_some((l, c))
            })
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        out
    }

    /// The most frequent label, if any images were counted.
    pub fn dominant(&self) -> Option<(Label, usize)> {
        self.ranked().into_iter().next()
    }

    /// Renders a text bar chart (stand-in for Figure 2-4), showing the top
    /// `max_rows` labels with bars scaled to `width` characters and the
    /// label's display colour as an RGB triple.
    pub fn render_bar_chart(&self, max_rows: usize, width: usize) -> String {
        let ranked = self.ranked();
        if ranked.is_empty() {
            return String::from("(no labels in the current retrieval)\n");
        }
        let max = ranked[0].1.max(1);
        let width = width.max(1);
        let mut out = String::new();
        out.push_str(&format!("Label statistics over {} images\n", self.images));
        for (label, count) in ranked.into_iter().take(max_rows) {
            let bar_len = ((count as f64 / max as f64) * width as f64).round().max(1.0) as usize;
            let (r, g, b) = label.color();
            out.push_str(&format!(
                "{:<45} |{:<w$}| {:>6}  rgb({r},{g},{b})\n",
                truncate(label.name(), 45),
                "█".repeat(bar_len),
                count,
                w = width
            ));
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets() -> Vec<LabelSet> {
        vec![
            LabelSet::from_labels([Label::SeaAndOcean, Label::BeachesDunesSands]),
            LabelSet::from_labels([Label::SeaAndOcean]),
            LabelSet::from_labels([Label::SeaAndOcean, Label::ConiferousForest]),
            LabelSet::from_labels([Label::ConiferousForest]),
        ]
    }

    #[test]
    fn counts_and_ranking() {
        let stats = LabelStatistics::from_label_sets(sets());
        assert_eq!(stats.image_count(), 4);
        assert_eq!(stats.count(Label::SeaAndOcean), 3);
        assert_eq!(stats.count(Label::ConiferousForest), 2);
        assert_eq!(stats.count(Label::BeachesDunesSands), 1);
        assert_eq!(stats.count(Label::Airports), 0);
        let ranked = stats.ranked();
        assert_eq!(ranked[0], (Label::SeaAndOcean, 3));
        assert_eq!(ranked.len(), 3);
        assert_eq!(stats.dominant(), Some((Label::SeaAndOcean, 3)));
    }

    #[test]
    fn empty_statistics() {
        let stats = LabelStatistics::from_label_sets(Vec::<LabelSet>::new());
        assert_eq!(stats.image_count(), 0);
        assert!(stats.ranked().is_empty());
        assert!(stats.dominant().is_none());
        assert!(stats.render_bar_chart(10, 30).contains("no labels"));
    }

    #[test]
    fn ties_are_broken_deterministically_by_label_index() {
        let stats = LabelStatistics::from_label_sets(vec![LabelSet::from_labels([
            Label::Airports,
            Label::Vineyards,
        ])]);
        let ranked = stats.ranked();
        assert_eq!(ranked[0].0, Label::Airports); // smaller dense index first
        assert_eq!(ranked[1].0, Label::Vineyards);
    }

    #[test]
    fn bar_chart_contains_labels_counts_and_colours() {
        let stats = LabelStatistics::from_label_sets(sets());
        let chart = stats.render_bar_chart(10, 20);
        assert!(chart.contains("Sea and ocean"));
        assert!(chart.contains("Coniferous forest"));
        assert!(chart.contains('█'));
        assert!(chart.contains("rgb("));
        assert!(chart.contains("4 images"));
        // max_rows truncates the output.
        let one_row = stats.render_bar_chart(1, 20);
        assert!(one_row.contains("Sea and ocean"));
        assert!(!one_row.contains("Coniferous forest"));
    }

    #[test]
    fn long_label_names_are_truncated_in_the_chart() {
        let stats = LabelStatistics::from_label_sets(vec![LabelSet::from_labels([
            Label::LandPrincipallyOccupiedByAgriculture,
        ])]);
        let chart = stats.render_bar_chart(5, 10);
        assert!(chart.contains('…'));
    }
}
