//! The network serving tier: EarthQube over TCP.
//!
//! The paper's EarthQube is a multi-user *service*; everything below this
//! module can only be driven in-process.  This module puts the
//! [`QueryServer`] behind a wire boundary:
//!
//! * [`NetServer`] — a **readiness-driven event loop** multiplexing every
//!   accepted connection over one poller thread (a vendored `poll(2)`
//!   shim), plus a **bounded worker pool** that executes decoded requests
//!   against the shared `&self` read path of the wrapped [`QueryServer`].
//!   One process serves thousands of idle-or-slow sockets over K workers;
//!   a connection no longer pins a thread for its lifetime.  Faults are
//!   isolated per connection: a malformed frame (garbage preamble, torn
//!   payload, checksum mismatch, hostile length prefix) errors *that*
//!   connection — a best-effort error frame, then close — and every other
//!   connection keeps being served.  [`NetServer::shutdown`] stops the
//!   poller, closes live connections and joins every thread.
//! * **Admission control** — per-connection in-flight quotas and a
//!   bounded dispatch queue.  An over-quota request, or one arriving
//!   while the queue is full, is answered immediately with a typed
//!   [`eq_proto::ErrorCode::Overloaded`] error frame instead of stalling
//!   the connection; clients that stop draining their responses (slow
//!   loris) are evicted on a write timeout or when their output backlog
//!   exceeds a cap.  The [`eq_proto::RequestBody::MetricsText`] endpoint
//!   renders the serving counters plus the net-tier counters
//!   ([`NetTierStats`]) as Prometheus-style scrape text.
//! * [`EqClient`] — a blocking client over one reused connection, with
//!   one-shot calls mirroring the [`QueryServer`] API and a **pipelined**
//!   [`run_batch`](EqClient::run_batch) that streams a whole workload of
//!   request frames (from a scoped writer thread) while reading the
//!   responses, amortising round-trip latency without ever risking a
//!   full-duplex deadlock.
//!
//! # Remote equivalence
//!
//! The conversion functions in this module ([`response_to_payload`] /
//! [`payload_to_response`] and friends) are lossless in both directions,
//! so a [`SearchResponse`] received through [`EqClient`] is **equal to the
//! in-process result, byte for byte** — the umbrella crate's
//! `remote_equivalence` test drives the same workload through both paths
//! and compares the `eq_proto` encodings.
//!
//! # Threading model
//!
//! ```text
//!            ┌────────────── poller thread ──────────────┐
//! sockets ──▶ poll(2) → read → FrameDecoder → admission ──▶ job queue
//!            │        ◀─ ordered response write-back ─┐  │     │recv
//!            └────────────────────▲───────────────────┼──┘     ▼
//!                                 │ completions + wake pipe  worker 0..K ──▶ QueryServer (&self)
//! ```
//!
//! The poller owns the listener and the whole connection table (no locks
//! on the socket path); workers own dispatch.  Each complete request
//! frame takes a per-connection sequence number at decode time, and the
//! poller releases response frames **strictly in that order** — so a
//! pipelining client ([`EqClient::run_batch`]) observes exactly the
//! blocking server's ordering even though requests of one connection may
//! execute on different workers.  All workers share the *same*
//! `QueryServer` by reference — the catalog read/write locking, the
//! sharded CBIR index and the result cache behave exactly as they do for
//! in-process threads.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufReader, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd as _;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eq_bigearthnet::patch::Patch;
use eq_docstore::QueryPlan;
use parking_lot::Mutex;
use rand::SeedableRng as _;

use crate::engine::SearchResponse;
use crate::filtered::{FilterStrategy, FilteredPlan, FilteredResponse, PrefilterMode};
use crate::ingest::IngestReport;
use crate::query::{ImageQuery, LabelFilter, LabelOperator};
use crate::replicate::{ReplBatch, ReplState, RetryPolicy};
use crate::results::{ResultEntry, ResultPanel};
use crate::serve::{QueryRequest, QueryServer, ServerStats};
use crate::stats::LabelStatistics;
use crate::EarthQubeError;

fn net_err(context: &str, e: impl std::fmt::Display) -> EarthQubeError {
    EarthQubeError::Net(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Lossless conversions between serving types and protocol payloads
// ---------------------------------------------------------------------------

/// Translates an [`ImageQuery`] into its wire specification (lossless).
pub fn query_to_spec(query: &ImageQuery) -> eq_proto::QuerySpec {
    eq_proto::QuerySpec {
        shape: query.shape.clone(),
        date_range: query.date_range,
        satellites: query.satellites.clone(),
        seasons: query.seasons.clone(),
        countries: query.countries.clone(),
        labels: query.labels.as_ref().map(|filter| eq_proto::LabelFilterSpec {
            op: match filter.operator {
                LabelOperator::Some => eq_proto::LabelOp::Some,
                LabelOperator::Exactly => eq_proto::LabelOp::Exactly,
                LabelOperator::AtLeastAndMore => eq_proto::LabelOp::AtLeastAndMore,
            },
            labels: filter.labels.clone(),
        }),
    }
}

/// Translates a wire specification back into an [`ImageQuery`] (the exact
/// inverse of [`query_to_spec`]).
pub fn spec_to_query(spec: eq_proto::QuerySpec) -> ImageQuery {
    ImageQuery {
        shape: spec.shape,
        date_range: spec.date_range,
        satellites: spec.satellites,
        seasons: spec.seasons,
        countries: spec.countries,
        labels: spec.labels.map(|filter| {
            LabelFilter::new(
                match filter.op {
                    eq_proto::LabelOp::Some => LabelOperator::Some,
                    eq_proto::LabelOp::Exactly => LabelOperator::Exactly,
                    eq_proto::LabelOp::AtLeastAndMore => LabelOperator::AtLeastAndMore,
                },
                filter.labels,
            )
        }),
    }
}

/// Serializes a [`SearchResponse`] into its wire payload (lossless).
pub fn response_to_payload(response: &SearchResponse) -> eq_proto::SearchPayload {
    eq_proto::SearchPayload {
        rows: response
            .panel
            .entries()
            .iter()
            .map(|e| eq_proto::ResultRow {
                name: e.name.clone(),
                country: e.country.clone(),
                date: e.date.clone(),
                labels: e.labels.clone(),
                distance: e.distance,
            })
            .collect(),
        page_size: response.panel.page_size() as u64,
        label_counts: response.statistics.counts().iter().map(|&c| c as u64).collect(),
        image_count: response.statistics.image_count() as u64,
        plan: response.plan.as_ref().map(|p| eq_proto::PlanSpec {
            index_used: p.index_used.clone(),
            scanned: p.scanned as u64,
            matched: p.matched as u64,
        }),
    }
}

/// Reassembles a [`SearchResponse`] from its wire payload (the exact
/// inverse of [`response_to_payload`] — this is what makes remote results
/// byte-identical to in-process ones).
pub fn payload_to_response(payload: eq_proto::SearchPayload) -> SearchResponse {
    let entries: Vec<ResultEntry> = payload
        .rows
        .into_iter()
        .map(|row| ResultEntry {
            name: row.name,
            country: row.country,
            date: row.date,
            labels: row.labels,
            distance: row.distance,
        })
        .collect();
    // A short counts vector (hostile or version-skewed server) would make
    // `LabelStatistics::ranked` index out of bounds on the client; pad to
    // the canonical length.  Honest servers always send exactly
    // `Label::COUNT` entries, so this is a no-op on the equivalence path.
    let mut counts: Vec<usize> = payload.label_counts.into_iter().map(|c| c as usize).collect();
    if counts.len() < eq_bigearthnet::Label::COUNT {
        counts.resize(eq_bigearthnet::Label::COUNT, 0);
    }
    SearchResponse {
        panel: ResultPanel::new(entries, payload.page_size as usize),
        statistics: LabelStatistics::from_parts(counts, payload.image_count as usize),
        plan: payload.plan.map(|p| QueryPlan {
            index_used: p.index_used,
            scanned: p.scanned as usize,
            matched: p.matched as usize,
        }),
    }
}

/// Serializes an [`IngestReport`] into its wire payload.
pub fn report_to_payload(report: &IngestReport) -> eq_proto::IngestPayload {
    eq_proto::IngestPayload {
        metadata_docs: report.metadata_docs as u64,
        image_docs: report.image_docs as u64,
        rendered_docs: report.rendered_docs as u64,
    }
}

/// Reassembles an [`IngestReport`] from its wire payload.
pub fn payload_to_report(payload: eq_proto::IngestPayload) -> IngestReport {
    IngestReport {
        metadata_docs: payload.metadata_docs as usize,
        image_docs: payload.image_docs as usize,
        rendered_docs: payload.rendered_docs as usize,
    }
}

/// Serializes [`ServerStats`] into its wire payload.
pub fn stats_to_payload(stats: &ServerStats) -> eq_proto::StatsPayload {
    eq_proto::StatsPayload {
        queries_served: stats.queries_served,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_entries: stats.cache_entries as u64,
        archive_size: stats.archive_size as u64,
        ingested_images: stats.ingested_images,
        shard_occupancy: stats.shard_occupancy.iter().map(|&n| n as u64).collect(),
    }
}

/// Reassembles [`ServerStats`] from its wire payload.
pub fn payload_to_stats(payload: eq_proto::StatsPayload) -> ServerStats {
    ServerStats {
        queries_served: payload.queries_served,
        cache_hits: payload.cache_hits,
        cache_misses: payload.cache_misses,
        cache_entries: payload.cache_entries as usize,
        archive_size: payload.archive_size as usize,
        ingested_images: payload.ingested_images,
        shard_occupancy: payload.shard_occupancy.iter().map(|&n| n as usize).collect(),
    }
}

/// Maps a server-side error onto the wire so the client can reconstruct
/// the exact [`EarthQubeError`] variant.
pub fn error_to_payload(error: &EarthQubeError) -> eq_proto::ErrorPayload {
    let (code, message) = match error {
        EarthQubeError::UnknownImage(m) => (eq_proto::ErrorCode::UnknownImage, m.clone()),
        EarthQubeError::Store(m) => (eq_proto::ErrorCode::Store, m.clone()),
        EarthQubeError::CbirNotReady => (eq_proto::ErrorCode::CbirNotReady, String::new()),
        EarthQubeError::BadRequest(m) => (eq_proto::ErrorCode::BadRequest, m.clone()),
        EarthQubeError::Persist(m) => (eq_proto::ErrorCode::Persist, m.clone()),
        EarthQubeError::Net(m) => (eq_proto::ErrorCode::Internal, m.clone()),
        EarthQubeError::Overloaded(m) => (eq_proto::ErrorCode::Overloaded, m.clone()),
        EarthQubeError::NotPrimary(m) => (eq_proto::ErrorCode::NotPrimary, m.clone()),
    };
    eq_proto::ErrorPayload { code, message }
}

/// Reconstructs the [`EarthQubeError`] a wire error payload describes.
pub fn payload_to_error(payload: eq_proto::ErrorPayload) -> EarthQubeError {
    match payload.code {
        eq_proto::ErrorCode::UnknownImage => EarthQubeError::UnknownImage(payload.message),
        eq_proto::ErrorCode::Store => EarthQubeError::Store(payload.message),
        eq_proto::ErrorCode::CbirNotReady => EarthQubeError::CbirNotReady,
        eq_proto::ErrorCode::BadRequest => EarthQubeError::BadRequest(payload.message),
        eq_proto::ErrorCode::Persist => EarthQubeError::Persist(payload.message),
        eq_proto::ErrorCode::Internal => EarthQubeError::Net(payload.message),
        eq_proto::ErrorCode::Overloaded => EarthQubeError::Overloaded(payload.message),
        eq_proto::ErrorCode::NotPrimary => EarthQubeError::NotPrimary(payload.message),
    }
}

/// Translates a wire prefilter-mode knob into the serving-tier enum.
pub fn spec_to_mode(mode: eq_proto::PrefilterModeSpec) -> PrefilterMode {
    match mode {
        eq_proto::PrefilterModeSpec::Auto => PrefilterMode::Auto,
        eq_proto::PrefilterModeSpec::ForceBitmap => PrefilterMode::ForceBitmap,
        eq_proto::PrefilterModeSpec::ForcePostFilter => PrefilterMode::ForcePostFilter,
    }
}

/// Translates a serving-tier prefilter mode onto the wire (lossless).
pub fn mode_to_spec(mode: PrefilterMode) -> eq_proto::PrefilterModeSpec {
    match mode {
        PrefilterMode::Auto => eq_proto::PrefilterModeSpec::Auto,
        PrefilterMode::ForceBitmap => eq_proto::PrefilterModeSpec::ForceBitmap,
        PrefilterMode::ForcePostFilter => eq_proto::PrefilterModeSpec::ForcePostFilter,
    }
}

/// Translates a filtered search's response — result panel plus execution
/// plan — onto the wire (lossless).
pub fn filtered_to_payload(filtered: &FilteredResponse) -> eq_proto::FilteredPayload {
    eq_proto::FilteredPayload {
        search: response_to_payload(&filtered.response),
        plan: eq_proto::FilteredPlanSpec {
            strategy: match filtered.plan.strategy {
                FilterStrategy::BitmapPrefilter => eq_proto::FilterStrategySpec::BitmapPrefilter,
                FilterStrategy::PostFilter => eq_proto::FilterStrategySpec::PostFilter,
            },
            candidates: filtered.plan.candidates,
            residual: filtered.plan.residual,
            matching: filtered.plan.matching as u64,
        },
    }
}

/// Reconstructs the [`FilteredResponse`] a wire payload describes.
pub fn payload_to_filtered(payload: eq_proto::FilteredPayload) -> FilteredResponse {
    FilteredResponse {
        response: payload_to_response(payload.search),
        plan: FilteredPlan {
            strategy: match payload.plan.strategy {
                eq_proto::FilterStrategySpec::BitmapPrefilter => FilterStrategy::BitmapPrefilter,
                eq_proto::FilterStrategySpec::PostFilter => FilterStrategy::PostFilter,
            },
            candidates: payload.plan.candidates,
            residual: payload.plan.residual,
            matching: payload.plan.matching as usize,
        },
    }
}

/// Translates a server's replication state onto the wire (lossless).
pub fn repl_state_to_payload(state: &ReplState) -> eq_proto::ReplStatePayload {
    eq_proto::ReplStatePayload {
        primary: state.primary,
        attached: state.attached,
        generation: state.generation,
        first_segment: state.first_segment,
        segment: state.segment,
        offset: state.offset,
    }
}

/// Reconstructs the [`ReplState`] a wire payload describes.
pub fn payload_to_repl_state(payload: eq_proto::ReplStatePayload) -> ReplState {
    ReplState {
        primary: payload.primary,
        attached: payload.attached,
        generation: payload.generation,
        first_segment: payload.first_segment,
        segment: payload.segment,
        offset: payload.offset,
    }
}

/// Translates a replication pull batch onto the wire (lossless).
pub fn batch_to_payload(batch: ReplBatch) -> eq_proto::ReplRecordsPayload {
    eq_proto::ReplRecordsPayload {
        reseed: batch.reseed,
        generation: batch.generation,
        entries: batch.entries,
        rotate: batch.rotate,
        next_segment: batch.next_segment,
        next_offset: batch.next_offset,
        primary_segment: batch.primary_segment,
        primary_offset: batch.primary_offset,
    }
}

/// Reconstructs the [`ReplBatch`] a wire payload describes.
pub fn payload_to_batch(payload: eq_proto::ReplRecordsPayload) -> ReplBatch {
    ReplBatch {
        reseed: payload.reseed,
        generation: payload.generation,
        entries: payload.entries,
        rotate: payload.rotate,
        next_segment: payload.next_segment,
        next_offset: payload.next_offset,
        primary_segment: payload.primary_segment,
        primary_offset: payload.primary_offset,
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Tuning knobs of the event-driven serving tier.
///
/// [`NetServer::bind`] uses [`NetConfig::default`] with only the worker
/// count overridden; [`NetServer::bind_with`] takes the full set.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Dispatch pool size (at least one).  Workers execute requests; the
    /// poller thread owns all sockets, so this bounds CPU concurrency,
    /// not connection count.
    pub workers: usize,
    /// Per-connection cap on requests concurrently at the dispatch tier.
    /// A request arriving over quota is answered immediately with a
    /// typed [`eq_proto::ErrorCode::Overloaded`] error.
    pub max_inflight_per_conn: usize,
    /// Bound of the poller→worker hand-off queue.  A request arriving
    /// while the queue is full is rejected with `Overloaded` instead of
    /// stalling the poller.
    pub queue_capacity: usize,
    /// A connection whose output backlog makes no write progress for
    /// this long is evicted (slow-loris defence).
    pub write_timeout: Duration,
    /// A connection whose unsent output backlog exceeds this many bytes
    /// is evicted regardless of progress, bounding per-connection memory.
    pub write_buffer_cap: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_inflight_per_conn: 64,
            queue_capacity: 256,
            write_timeout: Duration::from_secs(30),
            // Above the 64 MiB frame cap: a single legitimate maximum-size
            // response must never trip the eviction sweep.
            write_buffer_cap: 160 * 1024 * 1024,
        }
    }
}

/// Internal atomic counters of the network tier.
#[derive(Debug, Default)]
struct NetStats {
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    evicted_slow: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_hwm: AtomicU64,
    acceptor_fatal: AtomicU64,
    connections_failed: AtomicU64,
}

/// A snapshot of the network-tier counters ([`NetServer::net_stats`]);
/// the same numbers the `MetricsText` endpoint renders as scrape text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetTierStats {
    /// Connections accepted since bind.
    pub accepted: u64,
    /// Requests rejected with `Overloaded` (quota or full queue).
    pub rejected_overload: u64,
    /// Connections evicted for not draining their responses.
    pub evicted_slow: u64,
    /// Payload bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Requests currently queued for the worker pool.
    pub queue_depth: u64,
    /// High-water mark of the dispatch queue depth.
    pub queue_depth_high_water: u64,
    /// Fatal listener errors (the acceptor stopped; connections live on).
    pub acceptor_fatal: u64,
    /// Connections that ended with a protocol or transport fault.
    pub connections_failed: u64,
}

impl NetStats {
    fn snapshot(&self) -> NetTierStats {
        NetTierStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            evicted_slow: self.evicted_slow.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_high_water: self.queue_depth_hwm.load(Ordering::Relaxed),
            acceptor_fatal: self.acceptor_fatal.load(Ordering::Relaxed),
            connections_failed: self.connections_failed.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the poller, the workers and the [`NetServer`]
/// handle.  The connection table is *not* here: the poller thread owns it
/// exclusively, so the socket path takes no locks.
struct Shared {
    server: Arc<QueryServer>,
    /// Set once by shutdown; checked by the poller and the workers.
    stop: AtomicBool,
    /// Latched when a *mutating* request (ingest, feedback) panicked
    /// mid-dispatch: the write may be half-applied (locks here do not
    /// poison), so the server refuses all further work rather than serve
    /// possibly corrupt state.
    poisoned: AtomicBool,
    stats: NetStats,
}

/// One decoded request frame on its way to the worker pool.
struct Job {
    conn_id: u64,
    /// Per-connection sequence number; the poller releases responses in
    /// this order so pipelined clients see the blocking server's ordering.
    seq: u64,
    payload: Vec<u8>,
}

/// One finished response frame on its way back to the poller.
struct Completion {
    conn_id: u64,
    seq: u64,
    /// The fully framed response bytes, ready for the socket.
    frame: Vec<u8>,
    /// True when the connection must close after this frame (the request
    /// payload was undecodable — a protocol fault).
    fatal: bool,
}

type Completions = Arc<Mutex<Vec<Completion>>>;

/// A response waiting in a connection's reorder buffer.
struct PendingResponse {
    frame: Vec<u8>,
    fatal: bool,
}

/// The poller's per-connection state.
struct Conn {
    stream: TcpStream,
    decoder: eq_wire::frame::FrameDecoder,
    /// Unsent response bytes; `outpos` marks the consumed prefix.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Sequence number assigned to the next decoded request.
    next_seq: u64,
    /// Sequence number whose response goes out next.
    next_to_send: u64,
    /// Out-of-order completions waiting for `next_to_send` to catch up.
    pending: BTreeMap<u64, PendingResponse>,
    /// Requests of this connection currently at the dispatch tier.
    inflight: usize,
    /// Peer closed its write half (clean EOF observed).
    read_closed: bool,
    /// This connection was counted in `connections_failed`.
    failed: bool,
    /// Stop reading; close once the output backlog drains.
    closing: bool,
    /// The write side errored; close without waiting for the backlog.
    write_dead: bool,
    /// Last instant the output backlog shrank (or was empty).
    last_write_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            decoder: eq_wire::frame::FrameDecoder::new(
                eq_proto::REQUEST_MAGIC,
                eq_proto::MAX_FRAME_LEN,
            ),
            outbuf: Vec::new(),
            outpos: 0,
            next_seq: 0,
            next_to_send: 0,
            pending: BTreeMap::new(),
            inflight: 0,
            read_closed: false,
            failed: false,
            closing: false,
            write_dead: false,
            last_write_progress: Instant::now(),
        }
    }

    fn has_backlog(&self) -> bool {
        self.outpos < self.outbuf.len()
    }
}

/// The poll-interest mask for one connection: read while the connection
/// is live, write only while there is a backlog to drain.
fn want_events(conn: &Conn) -> i16 {
    let mut events = 0;
    if !conn.closing && !conn.read_closed {
        events |= polling::POLLIN;
    }
    if conn.has_backlog() && !conn.write_dead {
        events |= polling::POLLOUT;
    }
    events
}

/// Reads the request id out of raw frame-payload bytes (version `u16`,
/// then id `u64`, little-endian) without a full decode — admission-control
/// rejections need the id for the error frame before any worker sees the
/// payload.  Returns 0 (the reserved "unknown request" id) for payloads
/// too short to carry an envelope.
fn peek_request_id(payload: &[u8]) -> u64 {
    match payload.get(2..10) {
        Some(bytes) => {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(bytes);
            u64::from_le_bytes(raw)
        }
        None => 0,
    }
}

/// Classifies an `accept(2)` error: transient per-connection failures
/// (aborted handshakes, resource pressure) are retried on the next
/// readiness event; anything else means the listener itself is broken and
/// retrying forever would spin — the acceptor stops and the fatal counter
/// surfaces it.  `WouldBlock` never reaches this (it ends the accept
/// burst).
fn accept_error_is_fatal(error: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    if matches!(
        error.kind(),
        ErrorKind::WouldBlock
            | ErrorKind::Interrupted
            | ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionReset
            | ErrorKind::TimedOut
    ) {
        return false;
    }
    // Resource exhaustion (EMFILE / ENFILE / ENOBUFS / ENOMEM): pressure,
    // not a broken listener — connections closing will free capacity.
    !matches!(error.raw_os_error(), Some(12) | Some(23) | Some(24) | Some(105))
}

/// The poll-loop tick: bounds eviction-sweep latency and is the fallback
/// wake-up should a wake byte ever be lost.
const POLL_TICK_MS: i32 = 25;

/// Consumed-prefix threshold past which a connection's output buffer is
/// compacted instead of growing unboundedly.
const OUTBUF_COMPACT: usize = 64 * 1024;

/// The event loop: owns the listener, the wake pipe's read end and the
/// whole connection table; runs on the dedicated poller thread.
struct EventLoop {
    shared: Arc<Shared>,
    config: NetConfig,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    tx: mpsc::SyncSender<Job>,
    completions: Completions,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    /// Reused poll set and its parallel connection-id map.
    fds: Vec<polling::PollFd>,
    fd_conns: Vec<u64>,
    readbuf: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        self.readbuf.resize(64 * 1024, 0);
        while !self.shared.stop.load(Ordering::SeqCst) {
            self.build_poll_set();
            if polling::poll_fds(&mut self.fds, POLL_TICK_MS).is_err() {
                // EINVAL/ENOMEM from poll(2) itself: the loop cannot make
                // progress; treat it like a fatal listener error and stop.
                self.shared.stats.acceptor_fatal.fetch_add(1, Ordering::Relaxed);
                break;
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            if self.fds[0].readable_or_closed() {
                self.drain_wake();
            }
            let conn_base = match &self.listener {
                Some(_) => {
                    if self.fds[1].readable_or_closed() {
                        self.accept_ready();
                    }
                    2
                }
                None => 1,
            };
            for i in conn_base..self.fds.len() {
                let fd = self.fds[i];
                let id = self.fd_conns[i - conn_base];
                if fd.has(polling::POLLOUT) {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        flush_conn(&self.shared.stats, conn);
                    }
                }
                if fd.readable_or_closed() {
                    self.read_ready(id);
                }
            }
            self.drain_completions();
            self.sweep();
        }
        // Shutdown: close every socket so blocked clients observe EOF.
        for (_, conn) in self.conns.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // `self.tx` drops on return, which is what terminates the workers.
    }

    fn build_poll_set(&mut self) {
        self.fds.clear();
        self.fd_conns.clear();
        self.fds.push(polling::PollFd::new(self.wake_rx.as_raw_fd(), polling::POLLIN));
        if let Some(listener) = &self.listener {
            self.fds.push(polling::PollFd::new(listener.as_raw_fd(), polling::POLLIN));
        }
        for (&id, conn) in &self.conns {
            self.fds.push(polling::PollFd::new(conn.stream.as_raw_fd(), want_events(conn)));
            self.fd_conns.push(id);
        }
    }

    fn drain_wake(&mut self) {
        let mut scratch = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut scratch) {
                Ok(0) => break, // every writer gone (only during teardown)
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    /// Accepts a bounded burst of pending connections.  Transient errors
    /// are skipped; a fatal listener error stops the acceptor for good
    /// (existing connections keep being served) and is surfaced through
    /// the `acceptor_fatal` counter — retrying a broken listener forever
    /// would turn the event loop into a busy spin.
    fn accept_ready(&mut self) {
        for _ in 0..128 {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // the socket died during the handshake
                    }
                    let _ = stream.set_nodelay(true);
                    self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.conns.insert(id, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if !accept_error_is_fatal(&e) => continue,
                Err(_) => {
                    self.shared.stats.acceptor_fatal.fetch_add(1, Ordering::Relaxed);
                    self.listener = None;
                    return;
                }
            }
        }
    }

    /// Drains a readable connection: reads a bounded burst, feeds the
    /// frame decoder, and admits every completed request frame.
    fn read_ready(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        if conn.closing {
            return;
        }
        // Bound the burst so one firehose connection cannot starve the
        // rest of the poll set; level-triggered poll re-signals leftovers.
        for _ in 0..16 {
            match (&conn.stream).read(&mut self.readbuf) {
                Ok(0) => {
                    conn.read_closed = true;
                    if conn.decoder.has_partial_frame() {
                        // Torn frame: the peer died mid-request.
                        fault_conn(&self.shared.stats, conn, "connection closed mid-frame");
                    }
                    break;
                }
                Ok(n) => {
                    self.shared.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    conn.decoder.extend(&self.readbuf[..n]);
                    pump_decoder(&self.shared, &self.config, &self.tx, conn_id, conn);
                    if conn.closing || n < self.readbuf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transport fault (reset mid-stream): count and close.
                    conn.read_closed = true;
                    fault_conn(&self.shared.stats, conn, "transport error reading the connection");
                    break;
                }
            }
        }
    }

    /// Moves finished responses from the workers into their connections'
    /// reorder buffers, then releases everything that is next in line.
    fn drain_completions(&mut self) {
        let done = std::mem::take(&mut *self.completions.lock());
        for completion in done {
            let Some(conn) = self.conns.get_mut(&completion.conn_id) else {
                continue; // the connection was evicted or died meanwhile
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            if completion.fatal {
                mark_failed(&self.shared.stats, conn);
                conn.closing = true;
            }
            conn.pending.insert(
                completion.seq,
                PendingResponse { frame: completion.frame, fatal: completion.fatal },
            );
        }
        for conn in self.conns.values_mut() {
            pump_out(conn);
            if conn.has_backlog() && !conn.write_dead {
                flush_conn(&self.shared.stats, conn);
            }
        }
    }

    /// Evicts connections that stopped draining their responses and
    /// closes connections that finished (cleanly or after a fault).
    fn sweep(&mut self) {
        let now = Instant::now();
        let stats = &self.shared.stats;
        let config = &self.config;
        self.conns.retain(|_, conn| {
            if conn.write_dead {
                let _ = conn.stream.shutdown(Shutdown::Both);
                return false;
            }
            if conn.has_backlog() {
                let backlog = conn.outbuf.len() - conn.outpos;
                let stalled = now.duration_since(conn.last_write_progress) >= config.write_timeout;
                if stalled || backlog > config.write_buffer_cap {
                    stats.evicted_slow.fetch_add(1, Ordering::Relaxed);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return false;
                }
                return true; // still draining
            }
            let drained = conn.pending.is_empty() && conn.inflight == 0;
            if (conn.closing || conn.read_closed) && drained {
                let _ = conn.stream.shutdown(Shutdown::Both);
                return false;
            }
            true
        });
    }
}

/// Counts a connection in `connections_failed` exactly once.
fn mark_failed(stats: &NetStats, conn: &mut Conn) {
    if !conn.failed {
        conn.failed = true;
        stats.connections_failed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fails a connection on a protocol or transport fault: counts it, queues
/// a best-effort `BadRequest` error frame at the connection's next
/// response slot (so responses to earlier pipelined requests still go out
/// first), and stops reading.
fn fault_conn(stats: &NetStats, conn: &mut Conn, message: &str) {
    mark_failed(stats, conn);
    conn.closing = true;
    let response = eq_proto::Response {
        id: 0,
        body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
            code: eq_proto::ErrorCode::BadRequest,
            message: message.to_string(),
        }),
    };
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.pending
        .insert(seq, PendingResponse { frame: encode_response_frame(&response), fatal: true });
    pump_out(conn);
}

/// Decodes every complete frame buffered on the connection and runs
/// admission control on each: poisoned server → typed internal error;
/// over quota or full queue → typed `Overloaded`; otherwise hand the
/// payload to the worker pool.
fn pump_decoder(
    shared: &Shared,
    config: &NetConfig,
    tx: &mpsc::SyncSender<Job>,
    conn_id: u64,
    conn: &mut Conn,
) {
    loop {
        if conn.closing {
            return;
        }
        match conn.decoder.next_frame() {
            Ok(Some(payload)) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                if shared.poisoned.load(Ordering::SeqCst) {
                    let frame =
                        encode_response_frame(&poisoned_response(peek_request_id(&payload)));
                    conn.pending.insert(seq, PendingResponse { frame, fatal: false });
                    continue;
                }
                if conn.inflight >= config.max_inflight_per_conn {
                    reject_overloaded(
                        &shared.stats,
                        conn,
                        seq,
                        &payload,
                        format!(
                            "per-connection in-flight quota of {} exceeded; \
                             read responses before sending more requests",
                            config.max_inflight_per_conn
                        ),
                    );
                    continue;
                }
                // Count the queue slot *before* the send: the worker's
                // decrement happens-after its recv, so the depth gauge can
                // never underflow.
                let depth = shared.stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                shared.stats.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
                match tx.try_send(Job { conn_id, seq, payload }) {
                    Ok(()) => conn.inflight += 1,
                    Err(mpsc::TrySendError::Full(job)) => {
                        shared.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        reject_overloaded(
                            &shared.stats,
                            conn,
                            seq,
                            &job.payload,
                            "the server's request queue is full; retry later".to_string(),
                        );
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => {
                        // The pool is gone (shutdown tear-down): close.
                        shared.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        conn.closing = true;
                        return;
                    }
                }
            }
            Ok(None) => return,
            Err(e) => {
                // The decoder state is unspecified after an error: fault
                // the connection and never feed the decoder again.
                fault_conn(&shared.stats, conn, &format!("malformed frame: {e}"));
                return;
            }
        }
    }
}

/// Queues a typed `Overloaded` rejection at the request's response slot —
/// the client gets a definite answer instead of a stalled connection.
fn reject_overloaded(stats: &NetStats, conn: &mut Conn, seq: u64, payload: &[u8], message: String) {
    stats.rejected_overload.fetch_add(1, Ordering::Relaxed);
    let response = eq_proto::Response {
        id: peek_request_id(payload),
        body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
            code: eq_proto::ErrorCode::Overloaded,
            message,
        }),
    };
    conn.pending
        .insert(seq, PendingResponse { frame: encode_response_frame(&response), fatal: false });
    pump_out(conn);
}

/// Releases every response that is next in the connection's order into
/// the output buffer.  A fatal response (protocol fault) is the last —
/// later slots are dropped and the connection closes once it is flushed.
fn pump_out(conn: &mut Conn) {
    while let Some(next) = conn.pending.remove(&conn.next_to_send) {
        if !conn.has_backlog() {
            conn.last_write_progress = Instant::now();
        }
        conn.outbuf.extend_from_slice(&next.frame);
        conn.next_to_send += 1;
        if next.fatal {
            conn.pending.clear();
            break;
        }
    }
}

/// Writes as much of the connection's output backlog as the socket
/// accepts right now, tracking progress for the eviction sweep.
fn flush_conn(stats: &NetStats, conn: &mut Conn) {
    while conn.has_backlog() {
        match (&conn.stream).write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => {
                conn.write_dead = true;
                break;
            }
            Ok(n) => {
                conn.outpos += n;
                stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                conn.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.write_dead = true;
                break;
            }
        }
    }
    if !conn.has_backlog() {
        conn.outbuf.clear();
        conn.outpos = 0;
    } else if conn.outpos > OUTBUF_COMPACT {
        conn.outbuf.drain(..conn.outpos);
        conn.outpos = 0;
    }
}

/// Encodes a response as complete frame bytes.  A response over the frame
/// cap is a *request* problem (result set bigger than any reader accepts),
/// not a dead connection: it is replaced by a typed error under the same
/// id, so the connection keeps being served.
fn encode_response_frame(response: &eq_proto::Response) -> Vec<u8> {
    let mut payload = response.encode();
    if payload.len() > eq_proto::MAX_FRAME_LEN as usize {
        let error = eq_proto::Response {
            id: response.id,
            body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
                code: eq_proto::ErrorCode::BadRequest,
                message: format!(
                    "response of {} bytes exceeds the {}-byte frame cap; \
                     narrow the query or ingest in smaller batches",
                    payload.len(),
                    eq_proto::MAX_FRAME_LEN
                ),
            }),
        };
        payload = error.encode();
    }
    let mut frame = Vec::with_capacity(12 + payload.len());
    // Writing into a Vec cannot fail, and the length fits u32 by the cap
    // check above.
    let _ = eq_wire::frame::write_frame(&mut frame, &eq_proto::RESPONSE_MAGIC, &payload);
    frame
}

/// The worker-pool thread body: take jobs, execute them against the
/// shared [`QueryServer`], hand the framed response back to the poller.
fn worker_loop(
    shared: Arc<Shared>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    completions: Completions,
    wake: UnixStream,
) {
    loop {
        // The queue guard is a statement temporary: it drops before the
        // job executes, so workers never serialise on the queue lock.
        let job = rx.lock().recv();
        match job {
            Ok(job) => {
                shared.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                if shared.stop.load(Ordering::SeqCst) {
                    continue; // draining during shutdown: drop unserved
                }
                let (frame, fatal) = process_job(&shared, &job);
                completions.lock().push(Completion {
                    conn_id: job.conn_id,
                    seq: job.seq,
                    frame,
                    fatal,
                });
                // Nonblocking one-byte wake; a full pipe already wakes the
                // poller, so a WouldBlock here loses nothing.
                let _ = (&wake).write(&[1]);
            }
            Err(_) => break, // poller gone: pool drains and exits
        }
    }
}

/// Decodes and dispatches one request payload, isolating panics.
///
/// A panic provoked by one connection's input (a bug this layer's input
/// validation missed) fails that request instead of killing the pool
/// worker — otherwise a hostile client could drain the whole pool one
/// panic at a time.
fn process_job(shared: &Shared, job: &Job) -> (Vec<u8>, bool) {
    let request = match eq_proto::Request::decode(&job.payload) {
        Ok(request) => request,
        Err(e) => {
            // The frame was well-formed but the payload is not a request
            // (wrong version, unknown tag, corrupt fields): a protocol
            // fault — best-effort error frame under id 0, then close.
            let response = eq_proto::Response {
                id: 0,
                body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
                    code: eq_proto::ErrorCode::BadRequest,
                    message: format!("malformed request: {e}"),
                }),
            };
            return (encode_response_frame(&response), true);
        }
    };
    let id = request.id;
    let response = if shared.poisoned.load(Ordering::SeqCst) {
        poisoned_response(id)
    } else {
        let mutating = matches!(
            request.body,
            eq_proto::RequestBody::Ingest { .. } | eq_proto::RequestBody::Feedback { .. }
        );
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch(&shared.server, &shared.stats, request)
        })) {
            Ok(response) => response,
            Err(_) => {
                // A panic in a *read-only* request mutated nothing (the
                // engine read path takes only shared locks); report it
                // and keep serving.  A panic in a mutating request may
                // have left a half-applied write behind — these locks
                // do not poison — so latch the server-wide poison flag:
                // wrong answers forever are worse than refusing work.
                if mutating {
                    shared.poisoned.store(true, Ordering::SeqCst);
                    poisoned_response(id)
                } else {
                    eq_proto::Response {
                        id,
                        body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
                            code: eq_proto::ErrorCode::Internal,
                            message: "internal panic while serving the request".to_string(),
                        }),
                    }
                }
            }
        }
    };
    (encode_response_frame(&response), false)
}

/// The TCP serving tier: an event-loop poller thread multiplexing every
/// connection, plus a bounded worker pool dispatching `eq_proto` requests
/// onto a shared [`QueryServer`].
///
/// Dropping the server performs the same graceful shutdown as
/// [`shutdown`](Self::shutdown).
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    /// Write end of the poller's wake pipe (shutdown signalling).
    wake: UnixStream,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds a listener and starts serving `server` on a pool of
    /// `workers` threads (at least one), with every other knob at its
    /// [`NetConfig`] default.
    ///
    /// Bind to port 0 for an ephemeral port; [`local_addr`](Self::local_addr)
    /// reports the actual address.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] if the address cannot be bound.
    pub fn bind(
        server: Arc<QueryServer>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<Self, EarthQubeError> {
        Self::bind_with(server, addr, NetConfig { workers, ..NetConfig::default() })
    }

    /// Binds a listener and starts serving `server` with explicit
    /// admission-control and eviction settings.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] if the address cannot be bound
    /// or the event loop's wake pipe cannot be created.
    pub fn bind_with(
        server: Arc<QueryServer>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<Self, EarthQubeError> {
        let listener = TcpListener::bind(addr).map_err(|e| net_err("binding the listener", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err("switching the listener to nonblocking", e))?;
        let addr = listener.local_addr().map_err(|e| net_err("resolving the bound address", e))?;
        let (wake_tx, wake_rx) =
            UnixStream::pair().map_err(|e| net_err("creating the wake pipe", e))?;
        wake_rx
            .set_nonblocking(true)
            .map_err(|e| net_err("switching the wake pipe to nonblocking", e))?;
        let _ = wake_tx.set_nonblocking(true);

        let shared = Arc::new(Shared {
            server,
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            stats: NetStats::default(),
        });
        let pool = config.workers.max(1);
        // One warm search scratch per pool worker: a query dispatched by
        // this tier pops pooled top-k state instead of constructing it, so
        // steady-state remote serving never allocates on the search path.
        shared.server.prewarm_scratch(pool);
        // The *bounded* hand-off queue is the backpressure boundary: when
        // it is full the poller rejects with `Overloaded` instead of
        // queueing unboundedly, so a request flood cannot exhaust memory.
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::with_name(rx, "job-queue"));
        let completions: Completions = Arc::new(Mutex::with_name(Vec::new(), "net-completions"));
        let workers = (0..pool)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                let completions = Arc::clone(&completions);
                let wake = wake_tx
                    .try_clone()
                    .map_err(|e| net_err("cloning the wake pipe for a worker", e))?;
                Ok(std::thread::spawn(move || worker_loop(shared, rx, completions, wake)))
            })
            .collect::<Result<Vec<_>, EarthQubeError>>()?;

        let poller = {
            let event_loop = EventLoop {
                shared: Arc::clone(&shared),
                config,
                listener: Some(listener),
                wake_rx,
                tx,
                completions,
                conns: HashMap::new(),
                next_conn_id: 0,
                fds: Vec::new(),
                fd_conns: Vec::new(),
                readbuf: Vec::new(),
            };
            std::thread::spawn(move || event_loop.run())
        };

        Ok(Self { shared, addr, wake: wake_tx, poller: Some(poller), workers })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connections that ended with a protocol or transport
    /// fault (and were closed without affecting any other connection).
    /// Slow-reader evictions are counted separately
    /// ([`NetTierStats::evicted_slow`]).
    pub fn connections_failed(&self) -> u64 {
        self.shared.stats.connections_failed.load(Ordering::Relaxed)
    }

    /// A snapshot of the network-tier counters — the same numbers the
    /// `MetricsText` endpoint renders.
    pub fn net_stats(&self) -> NetTierStats {
        self.shared.stats.snapshot()
    }

    /// Whether a mutating request panicked mid-dispatch, leaving the
    /// engine state suspect.  A poisoned server answers every further
    /// request with a typed internal error; restart (or recover from the
    /// durable tier) to resume serving.
    pub fn poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::SeqCst)
    }

    /// Gracefully shuts down: stops the poller (closing the listener and
    /// every live connection) and joins every serving thread.  In-flight
    /// requests that already reached dispatch complete; their connections
    /// are then closed.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return; // already shut down
        }
        // Wake the poller; if the pipe write fails the poll tick still
        // observes the stop flag within one interval.
        let _ = (&self.wake).write(&[1]);
        if let Some(handle) = self.poller.take() {
            let _ = handle.join();
        }
        // The poller dropped the job sender on exit; workers drain the
        // queue (dropping unserved jobs now that the stop flag is set)
        // and exit on the disconnect.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every serving thread joined, no more writes can arrive:
        // stop the background checkpointer and flush whatever the last
        // requests dirtied, so a graceful shutdown never loses the final
        // WAL-only state to a subsequent unclean stop.  Best-effort — a
        // flush failure leaves the WAL segments, which recovery replays.
        self.shared.server.stop_checkpointer();
        let _ = self.shared.server.checkpoint_if_dirty();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Renders the serving counters and the network-tier counters as
/// Prometheus-style scrape text (one `name value` line per counter,
/// shard occupancy with a `shard` label).
fn render_metrics(stats: &ServerStats, net: &NetTierStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "eq_queries_served_total {}", stats.queries_served);
    let _ = writeln!(out, "eq_cache_hits_total {}", stats.cache_hits);
    let _ = writeln!(out, "eq_cache_misses_total {}", stats.cache_misses);
    let _ = writeln!(out, "eq_cache_entries {}", stats.cache_entries);
    let _ = writeln!(out, "eq_archive_size {}", stats.archive_size);
    let _ = writeln!(out, "eq_ingested_images_total {}", stats.ingested_images);
    for (shard, occupancy) in stats.shard_occupancy.iter().enumerate() {
        let _ = writeln!(out, "eq_shard_occupancy{{shard=\"{shard}\"}} {occupancy}");
    }
    let _ = writeln!(out, "eq_net_accepted_total {}", net.accepted);
    let _ = writeln!(out, "eq_net_rejected_overload_total {}", net.rejected_overload);
    let _ = writeln!(out, "eq_net_evicted_slow_total {}", net.evicted_slow);
    let _ = writeln!(out, "eq_net_bytes_in_total {}", net.bytes_in);
    let _ = writeln!(out, "eq_net_bytes_out_total {}", net.bytes_out);
    let _ = writeln!(out, "eq_net_queue_depth {}", net.queue_depth);
    let _ = writeln!(out, "eq_net_queue_depth_high_water {}", net.queue_depth_high_water);
    let _ = writeln!(out, "eq_net_connections_failed_total {}", net.connections_failed);
    let _ = writeln!(out, "eq_net_acceptor_fatal_total {}", net.acceptor_fatal);
    out
}

/// The answer every request gets once a mutating dispatch has panicked.
fn poisoned_response(id: u64) -> eq_proto::Response {
    eq_proto::Response {
        id,
        body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
            code: eq_proto::ErrorCode::Internal,
            message: "the server is poisoned by a panic during an earlier write; \
                      restart it (or recover from the durable tier)"
                .to_string(),
        }),
    }
}

/// Cap on the neighbour count a remote client may request: far above any
/// UI use, far below values whose `k + 1` arithmetic could overflow in
/// the engine.
const MAX_REMOTE_K: u64 = 1 << 20;

fn clamp_k(k: u64) -> usize {
    k.min(MAX_REMOTE_K) as usize
}

/// Structural validation of a patch decoded off the wire.  `decode_patch`
/// restores whatever band layout the bytes declare; the engine, however,
/// indexes the canonical layout unconditionally (12 Sentinel-2 rasters,
/// 2 polarisations, non-empty pixels), so a short band list from a
/// hostile client must be rejected *here* — reaching the engine with one
/// would panic the serving worker.
fn validate_wire_patch(patch: &Patch) -> Result<(), EarthQubeError> {
    let bad = |message: String| {
        EarthQubeError::BadRequest(format!("invalid patch {:?}: {message}", patch.meta.name))
    };
    if patch.s2_bands.len() != eq_bigearthnet::Band::COUNT {
        return Err(bad(format!(
            "expected {} Sentinel-2 bands, got {}",
            eq_bigearthnet::Band::COUNT,
            patch.s2_bands.len()
        )));
    }
    if patch.s1_bands.len() != 2 {
        return Err(bad(format!(
            "expected 2 Sentinel-1 polarisations, got {}",
            patch.s1_bands.len()
        )));
    }
    if let Some(empty) =
        patch.s2_bands.iter().chain(&patch.s1_bands).position(|b| b.pixels().is_empty())
    {
        return Err(bad(format!("raster {empty} has no pixels")));
    }
    // `Patch::render_rgb` (the ingest path) writes one output buffer sized
    // by B04 from the pixels of all three RGB bands, so their sizes must
    // agree.  (Other engine paths use per-band statistics only, and the
    // canonical per-resolution sizes are deliberately *not* required:
    // uniformly scaled-down archives are legitimate.)
    let rgb = [eq_bigearthnet::Band::B02, eq_bigearthnet::Band::B03, eq_bigearthnet::Band::B04];
    let sizes: Vec<usize> = rgb.iter().map(|&b| patch.band(b).size()).collect();
    if sizes[0] != sizes[2] || sizes[1] != sizes[2] {
        return Err(bad(format!("RGB band sizes {sizes:?} disagree")));
    }
    Ok(())
}

/// Executes one decoded request against the query server, mapping the
/// outcome (including errors) onto the response body.
fn dispatch(
    server: &QueryServer,
    net: &NetStats,
    request: eq_proto::Request,
) -> eq_proto::Response {
    use eq_proto::{RequestBody, ResponseBody};
    let search_outcome = |result: Result<SearchResponse, EarthQubeError>| match result {
        Ok(response) => ResponseBody::Search(response_to_payload(&response)),
        Err(e) => ResponseBody::Error(error_to_payload(&e)),
    };
    let body = match request.body {
        RequestBody::Ping => ResponseBody::Pong,
        RequestBody::Search(spec) => search_outcome(server.search(&spec_to_query(spec))),
        RequestBody::SimilarTo { name, k } => search_outcome(server.similar_to(&name, clamp_k(k))),
        RequestBody::SearchByNewExample { patch, k } => search_outcome(
            validate_wire_patch(&patch)
                .and_then(|()| server.search_by_new_example(&patch, clamp_k(k))),
        ),
        RequestBody::Ingest { patches } => {
            match patches
                .iter()
                .try_for_each(validate_wire_patch)
                .and_then(|()| server.ingest(&patches))
            {
                Ok(report) => ResponseBody::Ingest(report_to_payload(&report)),
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
        RequestBody::Feedback { text, category } => {
            match server.submit_feedback(&text, category.as_deref()) {
                Ok(id) => ResponseBody::Feedback { id },
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
        RequestBody::Stats => ResponseBody::Stats(stats_to_payload(&server.stats())),
        RequestBody::MetricsText => {
            ResponseBody::MetricsText(render_metrics(&server.stats(), &net.snapshot()))
        }
        RequestBody::SimilarToFiltered { name, k, spec, mode } => {
            match server.similar_to_filtered(
                &name,
                clamp_k(k),
                &spec_to_query(spec),
                spec_to_mode(mode),
            ) {
                Ok(filtered) => ResponseBody::Filtered(filtered_to_payload(&filtered)),
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
        RequestBody::SimilarWithinFiltered { name, radius, spec, mode } => {
            match server.similar_within_filtered(
                &name,
                radius,
                &spec_to_query(spec),
                spec_to_mode(mode),
            ) {
                Ok(filtered) => ResponseBody::Filtered(filtered_to_payload(&filtered)),
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
        RequestBody::ReplState => {
            ResponseBody::ReplState(repl_state_to_payload(&server.repl_state()))
        }
        RequestBody::ReplManifest => match server.repl_manifest_bytes() {
            Ok(bytes) => ResponseBody::ReplManifest { bytes },
            Err(e) => ResponseBody::Error(error_to_payload(&e)),
        },
        RequestBody::ReplChunk { file, offset, max_bytes } => {
            match server.repl_chunk_bytes(&file, offset, max_bytes) {
                Ok((total_len, bytes)) => {
                    ResponseBody::ReplChunk(eq_proto::ReplChunkPayload { total_len, bytes })
                }
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
        RequestBody::ReplPull { replica_id, generation, segment, offset, max_bytes } => {
            match server.repl_pull(replica_id, generation, segment, offset, max_bytes) {
                Ok(batch) => ResponseBody::ReplRecords(batch_to_payload(batch)),
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
    };
    eq_proto::Response { id: request.id, body }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking EarthQube client over one reused TCP connection.
///
/// Every call mirrors a [`QueryServer`] entry point and returns the same
/// types — including the same [`EarthQubeError`] variants for server-side
/// failures, reconstructed from the wire.  Transport-level failures
/// surface as [`EarthQubeError::Net`].
///
/// For throughput, [`run_batch`](Self::run_batch) pipelines a whole
/// workload over the connection: all request frames are written before
/// any response is read, so the batch pays one round trip, not one per
/// request.
pub struct EqClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl std::fmt::Debug for EqClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EqClient").field("next_id", &self.next_id).finish_non_exhaustive()
    }
}

impl EqClient {
    /// Connects to a [`NetServer`].
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] if the connection cannot be
    /// established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, EarthQubeError> {
        let stream = TcpStream::connect(addr).map_err(|e| net_err("connecting", e))?;
        let _ = stream.set_nodelay(true);
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| net_err("cloning the connection", e))?);
        Ok(Self { stream, reader, next_id: 1 })
    }

    /// Like [`connect`](Self::connect), but retries connection
    /// establishment under `policy`'s capped, jittered exponential
    /// backoff — the standard way to ride out a server that is still
    /// binding (or briefly restarting) without hammering it.
    ///
    /// # Errors
    /// The last connection error once the retry budget is exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        policy: &RetryPolicy,
    ) -> Result<Self, EarthQubeError> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(policy.jitter_seed);
        let mut last: Option<EarthQubeError> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff_delay(attempt - 1, &mut rng));
            }
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| EarthQubeError::Net("the retry budget is zero".into())))
    }

    fn send(&mut self, body: eq_proto::RequestBody) -> Result<u64, EarthQubeError> {
        let id = self.next_id;
        self.next_id += 1;
        eq_proto::write_request(&mut self.stream, &eq_proto::Request { id, body })
            .map_err(|e| net_err("sending the request", e))?;
        Ok(id)
    }

    /// Like [`send`](Self::send), but for payloads produced by the
    /// borrowed encoders (`encode_ingest_request` & co.), which avoid
    /// cloning raster data into an owned request body.
    fn send_payload(&mut self, encode: impl FnOnce(u64) -> Vec<u8>) -> Result<u64, EarthQubeError> {
        let id = self.next_id;
        self.next_id += 1;
        eq_proto::write_request_payload(&mut self.stream, &encode(id))
            .map_err(|e| net_err("sending the request", e))?;
        Ok(id)
    }

    fn receive(&mut self, expected_id: u64) -> Result<eq_proto::ResponseBody, EarthQubeError> {
        let response = eq_proto::read_response(&mut self.reader)
            .map_err(|e| net_err("reading the response", e))?
            .ok_or_else(|| EarthQubeError::Net("the server closed the connection".to_string()))?;
        if response.id != expected_id {
            return Err(EarthQubeError::Net(format!(
                "response id {} does not match request id {expected_id}",
                response.id
            )));
        }
        Ok(response.body)
    }

    fn call(
        &mut self,
        body: eq_proto::RequestBody,
    ) -> Result<eq_proto::ResponseBody, EarthQubeError> {
        let id = self.send(body)?;
        self.receive(id)
    }

    fn expect_search(body: eq_proto::ResponseBody) -> Result<SearchResponse, EarthQubeError> {
        match body {
            eq_proto::ResponseBody::Search(payload) => Ok(payload_to_response(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!(
                "unexpected response kind {other:?} to a search request"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] on transport faults.
    pub fn ping(&mut self) -> Result<(), EarthQubeError> {
        match self.call(eq_proto::RequestBody::Ping)? {
            eq_proto::ResponseBody::Pong => Ok(()),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to ping"))),
        }
    }

    /// Remote counterpart of [`QueryServer::search`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn search(&mut self, query: &ImageQuery) -> Result<SearchResponse, EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::Search(query_to_spec(query)))?;
        Self::expect_search(body)
    }

    /// Remote counterpart of [`QueryServer::similar_to`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn similar_to(&mut self, name: &str, k: usize) -> Result<SearchResponse, EarthQubeError> {
        let body =
            self.call(eq_proto::RequestBody::SimilarTo { name: name.to_string(), k: k as u64 })?;
        Self::expect_search(body)
    }

    /// Remote counterpart of [`QueryServer::search_by_new_example`]: the
    /// patch is uploaded inside the request frame.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn search_by_new_example(
        &mut self,
        patch: &Patch,
        k: usize,
    ) -> Result<SearchResponse, EarthQubeError> {
        // The borrowed encoder spares a deep copy of the raster data.
        let id =
            self.send_payload(|id| eq_proto::encode_new_example_request(id, patch, k as u64))?;
        Self::expect_search(self.receive(id)?)
    }

    /// Remote counterpart of [`QueryServer::ingest`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn ingest(&mut self, patches: &[Patch]) -> Result<IngestReport, EarthQubeError> {
        // The borrowed encoder spares a deep copy of every patch's rasters.
        let id = self.send_payload(|id| eq_proto::encode_ingest_request(id, patches))?;
        let body = self.receive(id)?;
        match body {
            eq_proto::ResponseBody::Ingest(payload) => Ok(payload_to_report(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to ingest"))),
        }
    }

    /// Remote counterpart of [`QueryServer::submit_feedback`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn submit_feedback(
        &mut self,
        text: &str,
        category: Option<&str>,
    ) -> Result<i64, EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::Feedback {
            text: text.to_string(),
            category: category.map(str::to_string),
        })?;
        match body {
            eq_proto::ResponseBody::Feedback { id } => Ok(id),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to feedback"))),
        }
    }

    /// Remote counterpart of [`QueryServer::stats`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn stats(&mut self) -> Result<ServerStats, EarthQubeError> {
        match self.call(eq_proto::RequestBody::Stats)? {
            eq_proto::ResponseBody::Stats(payload) => Ok(payload_to_stats(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to stats"))),
        }
    }

    /// Fetches the serving and network-tier counters rendered as
    /// Prometheus-style scrape text.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn metrics_text(&mut self) -> Result<String, EarthQubeError> {
        match self.call(eq_proto::RequestBody::MetricsText)? {
            eq_proto::ResponseBody::MetricsText(text) => Ok(text),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to metrics"))),
        }
    }

    fn expect_filtered(body: eq_proto::ResponseBody) -> Result<FilteredResponse, EarthQubeError> {
        match body {
            eq_proto::ResponseBody::Filtered(payload) => Ok(payload_to_filtered(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!(
                "unexpected response kind {other:?} to a filtered search"
            ))),
        }
    }

    /// Remote counterpart of [`QueryServer::similar_to_filtered`]: the
    /// filtered k-nearest search, execution plan included.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn similar_to_filtered(
        &mut self,
        name: &str,
        k: usize,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::SimilarToFiltered {
            name: name.to_string(),
            k: k as u64,
            spec: query_to_spec(query),
            mode: mode_to_spec(mode),
        })?;
        Self::expect_filtered(body)
    }

    /// Remote counterpart of [`QueryServer::similar_within_filtered`]: the
    /// filtered Hamming-radius search, execution plan included.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn similar_within_filtered(
        &mut self,
        name: &str,
        radius: u32,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::SimilarWithinFiltered {
            name: name.to_string(),
            radius,
            spec: query_to_spec(query),
            mode: mode_to_spec(mode),
        })?;
        Self::expect_filtered(body)
    }

    /// Fetches the server's replication role and durable WAL position —
    /// the replication handshake, and how a cluster client discovers the
    /// primary.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn repl_state(&mut self) -> Result<ReplState, EarthQubeError> {
        match self.call(eq_proto::RequestBody::ReplState)? {
            eq_proto::ResponseBody::ReplState(payload) => Ok(payload_to_repl_state(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => {
                Err(EarthQubeError::Net(format!("unexpected response {other:?} to repl_state")))
            }
        }
    }

    /// Fetches the raw bytes of the server's published manifest, for
    /// snapshot seeding.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn repl_manifest(&mut self) -> Result<Vec<u8>, EarthQubeError> {
        match self.call(eq_proto::RequestBody::ReplManifest)? {
            eq_proto::ResponseBody::ReplManifest { bytes } => Ok(bytes),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => {
                Err(EarthQubeError::Net(format!("unexpected response {other:?} to repl_manifest")))
            }
        }
    }

    /// Fetches one slice of a checkpoint chunk file: `(total file length,
    /// bytes at `offset`)`.  The server caps the slice length, so loop
    /// until the accumulated bytes reach the total.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn repl_chunk(
        &mut self,
        file: &str,
        offset: u64,
        max_bytes: u64,
    ) -> Result<(u64, Vec<u8>), EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::ReplChunk {
            file: file.to_string(),
            offset,
            max_bytes,
        })?;
        match body {
            eq_proto::ResponseBody::ReplChunk(payload) => Ok((payload.total_len, payload.bytes)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => {
                Err(EarthQubeError::Net(format!("unexpected response {other:?} to repl_chunk")))
            }
        }
    }

    /// Pulls WAL records at and after `(generation, segment, offset)` —
    /// the replication transport primitive [`crate::replicate::Replica`]
    /// is built on.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn repl_pull(
        &mut self,
        replica_id: u64,
        generation: u32,
        segment: u32,
        offset: u64,
        max_bytes: u64,
    ) -> Result<ReplBatch, EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::ReplPull {
            replica_id,
            generation,
            segment,
            offset,
            max_bytes,
        })?;
        match body {
            eq_proto::ResponseBody::ReplRecords(payload) => Ok(payload_to_batch(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => {
                Err(EarthQubeError::Net(format!("unexpected response {other:?} to repl_pull")))
            }
        }
    }

    /// Executes one workload request remotely — the wire counterpart of
    /// [`QueryServer::execute`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn execute(&mut self, request: &QueryRequest) -> Result<SearchResponse, EarthQubeError> {
        let id = self.send_payload(|id| encode_workload_request(id, request))?;
        Self::expect_search(self.receive(id)?)
    }

    /// Executes a batch of workload requests **pipelined**: request frames
    /// are written by a scoped writer thread while this thread reads the
    /// responses, so the whole batch pays one network round trip instead
    /// of one per request.  Results come back in request order, with
    /// per-request server-side errors in their slots — the remote
    /// counterpart of [`QueryServer::run_workload`].
    ///
    /// Reading concurrently with writing (rather than writing everything
    /// first) keeps arbitrarily large batches deadlock-free: the client
    /// always drains responses, so the server never blocks forever on a
    /// full response direction while requests back up.
    ///
    /// # Errors
    /// A transport failure aborts the whole batch (per-request errors do
    /// not).
    pub fn run_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<Result<SearchResponse, EarthQubeError>>, EarthQubeError> {
        let first_id = self.next_id;
        self.next_id += requests.len() as u64;
        let mut writer = self
            .stream
            .try_clone()
            .map_err(|e| net_err("cloning the connection for the batch writer", e))?;
        std::thread::scope(|scope| {
            let sender = scope.spawn(move || -> Result<(), EarthQubeError> {
                for (i, request) in requests.iter().enumerate() {
                    let payload = encode_workload_request(first_id + i as u64, request);
                    if let Err(e) = eq_proto::write_request_payload(&mut writer, &payload) {
                        // The failure may be purely local (e.g. a payload
                        // over the frame cap, rejected before any byte hit
                        // the socket) with the connection itself healthy —
                        // the reader would then wait forever for a response
                        // that was never requested.  Kill the socket so the
                        // reader unblocks with an error.
                        let _ = writer.shutdown(Shutdown::Both);
                        return Err(net_err("sending a batched request", e));
                    }
                }
                Ok(())
            });
            let mut results = Vec::with_capacity(requests.len());
            let mut receive_error = None;
            for i in 0..requests.len() {
                match self.receive(first_id + i as u64) {
                    Ok(body) => results.push(Self::expect_search(body)),
                    Err(e) => {
                        // Abort the batch: shut the socket down so the
                        // writer thread (possibly blocked mid-write) fails
                        // fast and the join below cannot hang.  The
                        // connection is unusable after a transport error
                        // anyway.
                        let _ = self.stream.shutdown(Shutdown::Both);
                        receive_error = Some(e);
                        break;
                    }
                }
            }
            let sent = sender
                .join()
                .unwrap_or_else(|_| Err(EarthQubeError::Net("batch writer panicked".into())));
            // A writer failure is the root cause when both sides errored
            // (the reader's error is then just the induced socket
            // shutdown), so it takes precedence in the report.
            match (sent, receive_error) {
                (Err(e), _) => Err(e),
                (Ok(()), Some(e)) => Err(e),
                (Ok(()), None) => Ok(results),
            }
        })
    }
}

/// Encodes a [`QueryRequest`] as protocol payload bytes, borrowing the
/// request's data (no raster copies for `NewExample`).
fn encode_workload_request(id: u64, request: &QueryRequest) -> Vec<u8> {
    match request {
        QueryRequest::Metadata(query) => {
            eq_proto::Request { id, body: eq_proto::RequestBody::Search(query_to_spec(query)) }
                .encode()
        }
        QueryRequest::SimilarTo { name, k } => eq_proto::Request {
            id,
            body: eq_proto::RequestBody::SimilarTo { name: name.clone(), k: *k as u64 },
        }
        .encode(),
        QueryRequest::NewExample { patch, k } => {
            eq_proto::encode_new_example_request(id, patch, *k as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EarthQubeConfig;
    use crate::serve::ServeConfig;
    use eq_bigearthnet::{Archive, ArchiveGenerator, GeneratorConfig};

    fn served(n: usize, seed: u64) -> (NetServer, Arc<QueryServer>, Archive) {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
        let mut config = EarthQubeConfig::fast(seed);
        config.train_model = false;
        let server =
            Arc::new(QueryServer::build(&archive, config, ServeConfig::default()).unwrap());
        let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        (net, server, archive)
    }

    #[test]
    fn remote_calls_mirror_the_in_process_server() {
        let (net, server, archive) = served(24, 301);
        let mut client = EqClient::connect(net.local_addr()).unwrap();
        client.ping().unwrap();

        let query = ImageQuery::all();
        assert_eq!(client.search(&query).unwrap(), server.search(&query).unwrap());

        let name = &archive.patches()[2].meta.name;
        assert_eq!(client.similar_to(name, 5).unwrap(), server.similar_to(name, 5).unwrap());

        let external =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 999)).unwrap().generate_patch(0);
        assert_eq!(
            client.search_by_new_example(&external, 4).unwrap(),
            server.search_by_new_example(&external, 4).unwrap()
        );

        // Server-side errors come back as their original variants.
        assert!(matches!(client.similar_to("ghost", 3), Err(EarthQubeError::UnknownImage(_))));

        let id = client.submit_feedback("over the wire", Some("reaction")).unwrap();
        assert!(id >= 0);
        assert_eq!(server.list_feedback().unwrap().len(), 1);

        let stats = client.stats().unwrap();
        assert_eq!(stats, server.stats());
        net.shutdown();
    }

    #[test]
    fn remote_ingest_appends_to_the_live_archive() {
        let (net, server, _) = served(10, 302);
        let mut client = EqClient::connect(net.local_addr()).unwrap();
        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(3, 888)).unwrap().generate();
        let report = client.ingest(extra.patches()).unwrap();
        assert_eq!(report.metadata_docs, 3);
        assert_eq!(server.archive_size(), 13);
        // Duplicate ingest surfaces the server's BadRequest.
        assert!(matches!(client.ingest(&extra.patches()[..1]), Err(EarthQubeError::BadRequest(_))));
        net.shutdown();
    }

    #[test]
    fn pipelined_batch_matches_one_shot_execution() {
        let (net, server, archive) = served(20, 303);
        let mut requests: Vec<QueryRequest> = archive
            .patches()
            .iter()
            .take(6)
            .map(|p| QueryRequest::SimilarTo { name: p.meta.name.clone(), k: 4 })
            .collect();
        requests.push(QueryRequest::Metadata(ImageQuery::all()));
        requests.push(QueryRequest::SimilarTo { name: "ghost".into(), k: 2 });

        let mut client = EqClient::connect(net.local_addr()).unwrap();
        let batched = client.run_batch(&requests).unwrap();
        assert_eq!(batched.len(), requests.len());
        for (got, request) in batched.iter().zip(&requests) {
            match (got, server.execute(request)) {
                (Ok(a), Ok(b)) => assert_eq!(a, &b),
                (Err(a), Err(b)) => assert_eq!(a, &b),
                (a, b) => panic!("batched {a:?} disagrees with in-process {b:?}"),
            }
        }
        net.shutdown();
    }

    #[test]
    fn many_clients_are_served_concurrently() {
        let (net, _, archive) = served(16, 304);
        let addr = net.local_addr();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let names: Vec<String> =
                    archive.patches().iter().map(|p| p.meta.name.clone()).collect();
                scope.spawn(move || {
                    let mut client = EqClient::connect(addr).unwrap();
                    for i in 0..10usize {
                        let name = &names[(t * 7 + i) % names.len()];
                        client.similar_to(name, 3).unwrap();
                    }
                });
            }
        });
        net.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent_under_drop() {
        let (net, server, _) = served(8, 305);
        let addr = net.local_addr();
        let mut client = EqClient::connect(addr).unwrap();
        client.ping().unwrap();
        net.shutdown(); // joins acceptor and workers; kicks the client
        assert!(client.ping().is_err(), "a kicked client observes the close");
        assert!(EqClient::connect(addr).and_then(|mut c| c.ping()).is_err());
        // A second server on a fresh port serves the same QueryServer.
        let net2 = NetServer::bind(server, "127.0.0.1:0", 1).unwrap();
        let mut client2 = EqClient::connect(net2.local_addr()).unwrap();
        client2.ping().unwrap();
        drop(net2); // Drop performs the same shutdown
    }

    /// A structurally invalid patch (decodable bytes, non-canonical band
    /// layout) must be rejected with `BadRequest` — never reach the
    /// engine's unconditional band indexing — and the worker must keep
    /// serving.  Guards the panic-drain hole: one hostile frame per
    /// worker would otherwise kill the whole pool.
    #[test]
    fn malformed_patches_are_rejected_not_panicking() {
        let (net, server, _) = served(10, 306);
        let mut client = EqClient::connect(net.local_addr()).unwrap();

        let mut bad = ArchiveGenerator::new(GeneratorConfig::tiny(1, 1)).unwrap().generate_patch(0);
        bad.meta.name = "band_thief".into();
        bad.s2_bands.truncate(3); // the engine indexes all 12 unconditionally
        assert!(matches!(
            client.search_by_new_example(&bad, 3),
            Err(EarthQubeError::BadRequest(_))
        ));
        assert!(matches!(client.ingest(&[bad.clone()]), Err(EarthQubeError::BadRequest(_))));
        assert_eq!(server.archive_size(), 10, "the bad batch must not partially ingest");

        let mut empty = bad.clone();
        empty.s2_bands = vec![eq_bigearthnet::BandData::from_pixels(0, vec![]); 12];
        assert!(matches!(
            client.search_by_new_example(&empty, 3),
            Err(EarthQubeError::BadRequest(_))
        ));

        // Disagreeing RGB band sizes would overrun `render_rgb`'s output
        // buffer during ingest — must be rejected up front.
        let mut lopsided =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 2)).unwrap().generate_patch(0);
        lopsided.meta.name = "lopsided".into();
        lopsided.s2_bands[eq_bigearthnet::Band::B04.index()] =
            eq_bigearthnet::BandData::from_pixels(1, vec![7]);
        assert!(matches!(client.ingest(&[lopsided]), Err(EarthQubeError::BadRequest(_))));
        assert_eq!(server.archive_size(), 10);

        // A hostile neighbour count is clamped, not overflowed.
        let name = "ghost";
        assert!(matches!(
            client.similar_to(name, usize::MAX),
            Err(EarthQubeError::UnknownImage(_))
        ));

        // The same connection — hence the same pool worker — still serves.
        client.ping().unwrap();
        assert!(client.search(&ImageQuery::all()).is_ok());
        net.shutdown();
    }

    /// A batch whose request fails *locally* (payload over the frame cap,
    /// never sent) must error out, not hang: the reader would otherwise
    /// wait forever for a response to a request the writer never sent.
    #[test]
    fn run_batch_surfaces_local_send_failures_instead_of_hanging() {
        let (net, _, _) = served(6, 307);
        let mut client = EqClient::connect(net.local_addr()).unwrap();
        // One band of 5800² u16 pixels encodes past the 64 MiB frame cap.
        let mut huge =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 3)).unwrap().generate_patch(0);
        huge.s2_bands[0] = eq_bigearthnet::BandData::zeros(5800);
        let requests = vec![QueryRequest::NewExample { patch: Box::new(huge), k: 3 }];
        assert!(matches!(client.run_batch(&requests), Err(EarthQubeError::Net(_))));
        net.shutdown();
    }

    /// The metrics endpoint renders the same numbers `stats()` reports:
    /// parse the Prometheus-style text and reconcile it against a
    /// [`ServerStats`] snapshot and the net-tier counters.
    #[test]
    fn metrics_text_matches_server_stats() {
        let (net, server, archive) = served(18, 308);
        let mut client = EqClient::connect(net.local_addr()).unwrap();

        client.search(&ImageQuery::all()).unwrap();
        client.search(&ImageQuery::all()).unwrap(); // cache hit
        let name = &archive.patches()[0].meta.name;
        client.similar_to(name, 4).unwrap();

        let stats = server.stats();
        let text = client.metrics_text().unwrap();
        let metric = |name: &str| -> u64 {
            text.lines()
                .find_map(|line| {
                    line.strip_prefix(name)
                        .and_then(|rest| rest.strip_prefix(' ').and_then(|v| v.parse().ok()))
                })
                .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
        };
        assert_eq!(metric("eq_queries_served_total"), stats.queries_served);
        assert_eq!(metric("eq_cache_hits_total"), stats.cache_hits);
        assert_eq!(metric("eq_cache_misses_total"), stats.cache_misses);
        assert_eq!(metric("eq_cache_entries"), stats.cache_entries as u64);
        assert_eq!(metric("eq_archive_size"), stats.archive_size as u64);
        assert_eq!(metric("eq_net_accepted_total"), 1, "one client connected");
        assert_eq!(metric("eq_net_rejected_overload_total"), 0);
        assert_eq!(metric("eq_net_evicted_slow_total"), 0);
        assert!(metric("eq_net_bytes_in_total") > 0);
        assert!(metric("eq_net_bytes_out_total") > 0);
        for (shard, &occupancy) in stats.shard_occupancy.iter().enumerate() {
            let label = format!("eq_shard_occupancy{{shard=\"{shard}\"}}");
            assert_eq!(metric(&label), occupancy as u64);
        }

        // The snapshot API reports the same counters the text renders.
        let snap = net.net_stats();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.connections_failed, 0);
        assert!(snap.bytes_out > 0);
        net.shutdown();
    }

    /// Satellite-3 regression: the acceptor classifies listener errors
    /// instead of retrying everything forever.  Readiness and transient
    /// per-connection failures (including fd exhaustion) are retried;
    /// genuine listener breakage is fatal.
    #[test]
    fn accept_errors_are_classified() {
        use std::io::{Error, ErrorKind};
        for transient in [
            Error::from(ErrorKind::WouldBlock),
            Error::from(ErrorKind::Interrupted),
            Error::from(ErrorKind::ConnectionAborted),
            Error::from(ErrorKind::ConnectionReset),
            Error::from(ErrorKind::TimedOut),
            Error::from_raw_os_error(24),  // EMFILE
            Error::from_raw_os_error(23),  // ENFILE
            Error::from_raw_os_error(105), // ENOBUFS
        ] {
            assert!(!accept_error_is_fatal(&transient), "{transient:?} must be retried");
        }
        for fatal in [
            Error::from_raw_os_error(9),  // EBADF: the listener fd is gone
            Error::from_raw_os_error(22), // EINVAL: not listening
            Error::from_raw_os_error(88), // ENOTSOCK
        ] {
            assert!(accept_error_is_fatal(&fatal), "{fatal:?} must stop the acceptor");
        }
    }

    /// The envelope peek used by admission-control rejections reads the
    /// id every `Request::encode` writes.
    #[test]
    fn peeked_request_ids_match_encoded_envelopes() {
        for id in [0u64, 1, 77, u64::MAX] {
            let payload = eq_proto::Request { id, body: eq_proto::RequestBody::Ping }.encode();
            assert_eq!(peek_request_id(&payload), id);
        }
        assert_eq!(peek_request_id(&[0u8; 5]), 0, "short payloads fall back to id 0");
    }

    #[test]
    fn conversions_are_lossless_for_rich_queries() {
        use eq_bigearthnet::patch::{AcquisitionDate, Satellite, Season};
        use eq_bigearthnet::{Country, Label};
        use eq_geo::{BBox, GeoShape};
        let query = ImageQuery::all()
            .with_shape(GeoShape::Rect(BBox::new(-9.0, 37.0, -6.0, 42.0).unwrap()))
            .with_date_range(
                AcquisitionDate::new(2017, 6, 1).unwrap(),
                AcquisitionDate::new(2018, 5, 31).unwrap(),
            )
            .with_seasons(vec![Season::Summer])
            .with_countries(vec![Country::Portugal])
            .with_labels(LabelFilter::new(LabelOperator::Exactly, vec![Label::SeaAndOcean]));
        let mut with_satellites = query.clone();
        with_satellites.satellites = vec![Satellite::Sentinel1, Satellite::Sentinel2];
        for q in [query, with_satellites, ImageQuery::all()] {
            assert_eq!(spec_to_query(query_to_spec(&q)), q);
        }
    }
}
