//! The network serving tier: EarthQube over TCP.
//!
//! The paper's EarthQube is a multi-user *service*; everything below this
//! module can only be driven in-process.  This module puts the
//! [`QueryServer`] behind a wire boundary:
//!
//! * [`NetServer`] — a TCP listener plus a **bounded worker pool**.  Each
//!   accepted connection is handed to one pool thread, which serves the
//!   connection's `eq_proto` request frames in order against the shared
//!   `&self` read path of the wrapped [`QueryServer`].  Faults are
//!   isolated per connection: a malformed frame (garbage preamble, torn
//!   payload, checksum mismatch, hostile length prefix) errors *that*
//!   connection — a best-effort error frame, then close — and every other
//!   connection keeps being served.  [`NetServer::shutdown`] stops the
//!   acceptor, kicks live connections and joins every thread.
//! * [`EqClient`] — a blocking client over one reused connection, with
//!   one-shot calls mirroring the [`QueryServer`] API and a **pipelined**
//!   [`run_batch`](EqClient::run_batch) that streams a whole workload of
//!   request frames (from a scoped writer thread) while reading the
//!   responses, amortising round-trip latency without ever risking a
//!   full-duplex deadlock.
//!
//! # Remote equivalence
//!
//! The conversion functions in this module ([`response_to_payload`] /
//! [`payload_to_response`] and friends) are lossless in both directions,
//! so a [`SearchResponse`] received through [`EqClient`] is **equal to the
//! in-process result, byte for byte** — the umbrella crate's
//! `remote_equivalence` test drives the same workload through both paths
//! and compares the `eq_proto` encodings.
//!
//! # Threading model
//!
//! ```text
//! acceptor thread ──accept──▶ channel ──recv──▶ worker 0 ┐
//!                                            ▶ worker 1 ├─▶ QueryServer (&self)
//!                                            ▶ worker K ┘
//! ```
//!
//! A connection occupies its worker for the connection's lifetime, so the
//! pool size bounds both concurrency and memory; idle clients holding
//! connections open count against the pool (size it accordingly).  All
//! workers share the *same* `QueryServer` by reference — the catalog
//! read/write locking, the sharded CBIR index and the result cache behave
//! exactly as they do for in-process threads.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use eq_bigearthnet::patch::Patch;
use eq_docstore::QueryPlan;
use parking_lot::Mutex;

use crate::engine::SearchResponse;
use crate::ingest::IngestReport;
use crate::query::{ImageQuery, LabelFilter, LabelOperator};
use crate::results::{ResultEntry, ResultPanel};
use crate::serve::{QueryRequest, QueryServer, ServerStats};
use crate::stats::LabelStatistics;
use crate::EarthQubeError;

fn net_err(context: &str, e: impl std::fmt::Display) -> EarthQubeError {
    EarthQubeError::Net(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Lossless conversions between serving types and protocol payloads
// ---------------------------------------------------------------------------

/// Translates an [`ImageQuery`] into its wire specification (lossless).
pub fn query_to_spec(query: &ImageQuery) -> eq_proto::QuerySpec {
    eq_proto::QuerySpec {
        shape: query.shape.clone(),
        date_range: query.date_range,
        satellites: query.satellites.clone(),
        seasons: query.seasons.clone(),
        countries: query.countries.clone(),
        labels: query.labels.as_ref().map(|filter| eq_proto::LabelFilterSpec {
            op: match filter.operator {
                LabelOperator::Some => eq_proto::LabelOp::Some,
                LabelOperator::Exactly => eq_proto::LabelOp::Exactly,
                LabelOperator::AtLeastAndMore => eq_proto::LabelOp::AtLeastAndMore,
            },
            labels: filter.labels.clone(),
        }),
    }
}

/// Translates a wire specification back into an [`ImageQuery`] (the exact
/// inverse of [`query_to_spec`]).
pub fn spec_to_query(spec: eq_proto::QuerySpec) -> ImageQuery {
    ImageQuery {
        shape: spec.shape,
        date_range: spec.date_range,
        satellites: spec.satellites,
        seasons: spec.seasons,
        countries: spec.countries,
        labels: spec.labels.map(|filter| {
            LabelFilter::new(
                match filter.op {
                    eq_proto::LabelOp::Some => LabelOperator::Some,
                    eq_proto::LabelOp::Exactly => LabelOperator::Exactly,
                    eq_proto::LabelOp::AtLeastAndMore => LabelOperator::AtLeastAndMore,
                },
                filter.labels,
            )
        }),
    }
}

/// Serializes a [`SearchResponse`] into its wire payload (lossless).
pub fn response_to_payload(response: &SearchResponse) -> eq_proto::SearchPayload {
    eq_proto::SearchPayload {
        rows: response
            .panel
            .entries()
            .iter()
            .map(|e| eq_proto::ResultRow {
                name: e.name.clone(),
                country: e.country.clone(),
                date: e.date.clone(),
                labels: e.labels.clone(),
                distance: e.distance,
            })
            .collect(),
        page_size: response.panel.page_size() as u64,
        label_counts: response.statistics.counts().iter().map(|&c| c as u64).collect(),
        image_count: response.statistics.image_count() as u64,
        plan: response.plan.as_ref().map(|p| eq_proto::PlanSpec {
            index_used: p.index_used.clone(),
            scanned: p.scanned as u64,
            matched: p.matched as u64,
        }),
    }
}

/// Reassembles a [`SearchResponse`] from its wire payload (the exact
/// inverse of [`response_to_payload`] — this is what makes remote results
/// byte-identical to in-process ones).
pub fn payload_to_response(payload: eq_proto::SearchPayload) -> SearchResponse {
    let entries: Vec<ResultEntry> = payload
        .rows
        .into_iter()
        .map(|row| ResultEntry {
            name: row.name,
            country: row.country,
            date: row.date,
            labels: row.labels,
            distance: row.distance,
        })
        .collect();
    // A short counts vector (hostile or version-skewed server) would make
    // `LabelStatistics::ranked` index out of bounds on the client; pad to
    // the canonical length.  Honest servers always send exactly
    // `Label::COUNT` entries, so this is a no-op on the equivalence path.
    let mut counts: Vec<usize> = payload.label_counts.into_iter().map(|c| c as usize).collect();
    if counts.len() < eq_bigearthnet::Label::COUNT {
        counts.resize(eq_bigearthnet::Label::COUNT, 0);
    }
    SearchResponse {
        panel: ResultPanel::new(entries, payload.page_size as usize),
        statistics: LabelStatistics::from_parts(counts, payload.image_count as usize),
        plan: payload.plan.map(|p| QueryPlan {
            index_used: p.index_used,
            scanned: p.scanned as usize,
            matched: p.matched as usize,
        }),
    }
}

/// Serializes an [`IngestReport`] into its wire payload.
pub fn report_to_payload(report: &IngestReport) -> eq_proto::IngestPayload {
    eq_proto::IngestPayload {
        metadata_docs: report.metadata_docs as u64,
        image_docs: report.image_docs as u64,
        rendered_docs: report.rendered_docs as u64,
    }
}

/// Reassembles an [`IngestReport`] from its wire payload.
pub fn payload_to_report(payload: eq_proto::IngestPayload) -> IngestReport {
    IngestReport {
        metadata_docs: payload.metadata_docs as usize,
        image_docs: payload.image_docs as usize,
        rendered_docs: payload.rendered_docs as usize,
    }
}

/// Serializes [`ServerStats`] into its wire payload.
pub fn stats_to_payload(stats: &ServerStats) -> eq_proto::StatsPayload {
    eq_proto::StatsPayload {
        queries_served: stats.queries_served,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_entries: stats.cache_entries as u64,
        archive_size: stats.archive_size as u64,
        ingested_images: stats.ingested_images,
        shard_occupancy: stats.shard_occupancy.iter().map(|&n| n as u64).collect(),
    }
}

/// Reassembles [`ServerStats`] from its wire payload.
pub fn payload_to_stats(payload: eq_proto::StatsPayload) -> ServerStats {
    ServerStats {
        queries_served: payload.queries_served,
        cache_hits: payload.cache_hits,
        cache_misses: payload.cache_misses,
        cache_entries: payload.cache_entries as usize,
        archive_size: payload.archive_size as usize,
        ingested_images: payload.ingested_images,
        shard_occupancy: payload.shard_occupancy.iter().map(|&n| n as usize).collect(),
    }
}

/// Maps a server-side error onto the wire so the client can reconstruct
/// the exact [`EarthQubeError`] variant.
pub fn error_to_payload(error: &EarthQubeError) -> eq_proto::ErrorPayload {
    let (code, message) = match error {
        EarthQubeError::UnknownImage(m) => (eq_proto::ErrorCode::UnknownImage, m.clone()),
        EarthQubeError::Store(m) => (eq_proto::ErrorCode::Store, m.clone()),
        EarthQubeError::CbirNotReady => (eq_proto::ErrorCode::CbirNotReady, String::new()),
        EarthQubeError::BadRequest(m) => (eq_proto::ErrorCode::BadRequest, m.clone()),
        EarthQubeError::Persist(m) => (eq_proto::ErrorCode::Persist, m.clone()),
        EarthQubeError::Net(m) => (eq_proto::ErrorCode::Internal, m.clone()),
    };
    eq_proto::ErrorPayload { code, message }
}

/// Reconstructs the [`EarthQubeError`] a wire error payload describes.
pub fn payload_to_error(payload: eq_proto::ErrorPayload) -> EarthQubeError {
    match payload.code {
        eq_proto::ErrorCode::UnknownImage => EarthQubeError::UnknownImage(payload.message),
        eq_proto::ErrorCode::Store => EarthQubeError::Store(payload.message),
        eq_proto::ErrorCode::CbirNotReady => EarthQubeError::CbirNotReady,
        eq_proto::ErrorCode::BadRequest => EarthQubeError::BadRequest(payload.message),
        eq_proto::ErrorCode::Persist => EarthQubeError::Persist(payload.message),
        eq_proto::ErrorCode::Internal => EarthQubeError::Net(payload.message),
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Shared state of the serving threads.
struct Shared {
    server: Arc<QueryServer>,
    /// Set once by shutdown; checked by the acceptor and the workers.
    stop: AtomicBool,
    /// Live connection sockets, keyed by connection id, kicked on
    /// shutdown so blocked reads return and workers can be joined.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    connections_failed: AtomicU64,
    /// Latched when a *mutating* request (ingest, feedback) panicked
    /// mid-dispatch: the write may be half-applied (locks here do not
    /// poison), so the server refuses all further work rather than serve
    /// possibly corrupt state.
    poisoned: AtomicBool,
}

impl Shared {
    /// Registers a live connection for the shutdown kick.  Refuses (and
    /// the caller drops the stream) when shutdown already started — the
    /// check runs under the same lock shutdown drains under, so a
    /// registered connection is always either kicked or refused.
    ///
    /// A `try_clone` failure (fd exhaustion — the overload signal an
    /// operator most needs to see) counts as a failed connection; a
    /// shutdown-race refusal does not.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let Ok(clone) = stream.try_clone() else {
            self.connections_failed.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let mut conns = self.conns.lock();
        if self.stop.load(Ordering::SeqCst) {
            return None;
        }
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        conns.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().remove(&id);
    }
}

/// The TCP serving tier: a listener plus a bounded worker pool dispatching
/// `eq_proto` requests onto a shared [`QueryServer`].
///
/// Dropping the server performs the same graceful shutdown as
/// [`shutdown`](Self::shutdown).
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds a listener and starts serving `server` on a pool of
    /// `workers` threads (at least one).
    ///
    /// Bind to port 0 for an ephemeral port; [`local_addr`](Self::local_addr)
    /// reports the actual address.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] if the address cannot be bound.
    pub fn bind(
        server: Arc<QueryServer>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<Self, EarthQubeError> {
        let listener = TcpListener::bind(addr).map_err(|e| net_err("binding the listener", e))?;
        let addr = listener.local_addr().map_err(|e| net_err("resolving the bound address", e))?;
        let shared = Arc::new(Shared {
            server,
            stop: AtomicBool::new(false),
            conns: Mutex::with_name(HashMap::new(), "conns"),
            next_conn_id: AtomicU64::new(0),
            connections_failed: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        });

        let pool = workers.max(1);
        // One warm search scratch per pool worker: a query dispatched by
        // this tier pops pooled top-k state instead of constructing it, so
        // steady-state remote serving never allocates on the search path.
        shared.server.prewarm_scratch(pool);
        // A *bounded* hand-off queue: when every worker is pinned by a
        // live connection and the queue is full, the acceptor blocks in
        // `send` instead of accepting unboundedly — excess connections
        // wait in the OS listen backlog (and are refused beyond it), so a
        // connection flood cannot exhaust file descriptors.  This is what
        // makes "the pool size bounds concurrency and memory" true.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(pool);
        let rx = Arc::new(Mutex::with_name(rx, "accept-queue"));
        let workers = (0..pool)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // The channel guard is a statement temporary: it drops
                    // before the connection is served, so workers never
                    // serialise on the queue lock.
                    let conn = rx.lock().recv();
                    match conn {
                        Ok(stream) if !shared.stop.load(Ordering::SeqCst) => {
                            handle_connection(&shared, stream);
                        }
                        Ok(_) => {}      // draining during shutdown: drop unserved
                        Err(_) => break, // acceptor gone: pool drains and exits
                    }
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            // The listener polls: shutdown must never depend on the
            // process being able to connect to its own bound address (a
            // wildcard bind or a local firewall can make the wake-up
            // connection fail, and a blocking `accept` would then never
            // return).  The wake-up connect in `stop_and_join` remains as
            // a latency optimisation; this poll is the guarantee.
            let _ = listener.set_nonblocking(true);
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Accepted sockets must be blocking regardless
                            // of what they inherit from the listener.
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                    }
                }
                // `tx` drops here, which is what terminates the workers.
            })
        };

        Ok(Self { shared, addr, acceptor: Some(acceptor), workers })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connections that ended with a protocol or transport
    /// fault (and were closed without affecting any other connection).
    pub fn connections_failed(&self) -> u64 {
        self.shared.connections_failed.load(Ordering::Relaxed)
    }

    /// Whether a mutating request panicked mid-dispatch, leaving the
    /// engine state suspect.  A poisoned server answers every further
    /// request with a typed internal error; restart (or recover from the
    /// durable tier) to resume serving.
    pub fn poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::SeqCst)
    }

    /// Gracefully shuts down: stops accepting, kicks live connections so
    /// their workers unblock, and joins every serving thread.  In-flight
    /// requests that already reached dispatch complete; their connections
    /// are then closed.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return; // already shut down
        }
        // Wake the acceptor promptly with a throwaway connection; if this
        // fails the acceptor's poll loop still observes the stop flag
        // within one poll interval.
        let _ = TcpStream::connect(self.addr);
        // Kick every live connection *before* joining the acceptor:
        // blocked reads in the workers return, the workers drain the
        // bounded hand-off queue (dropping unserved sockets now that the
        // stop flag is set), and an acceptor blocked in a full-queue
        // `send` gets unstuck.  Connections registering concurrently are
        // refused under this same lock, so none can slip past the kick.
        for (_, stream) in self.shared.conns.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every serving thread joined, no more writes can arrive:
        // stop the background checkpointer and flush whatever the last
        // requests dirtied, so a graceful shutdown never loses the final
        // WAL-only state to a subsequent unclean stop.  Best-effort — a
        // flush failure leaves the WAL segments, which recovery replays.
        self.shared.server.stop_checkpointer();
        let _ = self.shared.server.checkpoint_if_dirty();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves one connection to completion, isolating its faults.
///
/// Isolation covers panics too: dispatch runs behind `catch_unwind`, so a
/// panic provoked by one connection's input (a bug this layer's input
/// validation missed) fails that connection instead of killing the pool
/// worker — otherwise a hostile client could drain the whole pool one
/// panic at a time.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Some(conn_id) = shared.register(&stream) else {
        return; // shutdown raced the hand-off, or the socket is dead
    };
    let _ = stream.set_nodelay(true);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        serve_connection(shared, &stream)
    }));
    if !matches!(outcome, Ok(Ok(()))) {
        shared.connections_failed.fetch_add(1, Ordering::Relaxed);
    }
    shared.deregister(conn_id);
}

/// The per-connection serving loop: read a request frame, dispatch it on
/// the shared [`QueryServer`], write the response frame; repeat until the
/// peer closes cleanly or faults.
fn serve_connection(shared: &Shared, stream: &TcpStream) -> Result<(), eq_proto::ProtoError> {
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match eq_proto::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // clean close on a frame boundary
            Err(e) => {
                // The frame (and with it any request id) is unrecoverable:
                // send a best-effort error frame under id 0, then close
                // *this* connection.  Other connections are untouched.
                let response = eq_proto::Response {
                    id: 0,
                    body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
                        code: eq_proto::ErrorCode::BadRequest,
                        message: format!("malformed frame: {e}"),
                    }),
                };
                let _ = eq_proto::write_response(&mut writer, &response);
                let _ = writer.flush();
                return Err(e);
            }
        };
        let id = request.id;
        let response = if shared.poisoned.load(Ordering::SeqCst) {
            poisoned_response(id)
        } else {
            let mutating = matches!(
                request.body,
                eq_proto::RequestBody::Ingest { .. } | eq_proto::RequestBody::Feedback { .. }
            );
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dispatch(&shared.server, request)
            })) {
                Ok(response) => response,
                Err(_) => {
                    // A panic in a *read-only* request mutated nothing (the
                    // engine read path takes only shared locks); report it
                    // and keep serving.  A panic in a mutating request may
                    // have left a half-applied write behind — these locks
                    // do not poison — so latch the server-wide poison flag:
                    // wrong answers forever are worse than refusing work.
                    if mutating {
                        shared.poisoned.store(true, Ordering::SeqCst);
                        poisoned_response(id)
                    } else {
                        eq_proto::Response {
                            id,
                            body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
                                code: eq_proto::ErrorCode::Internal,
                                message: "internal panic while serving the request".to_string(),
                            }),
                        }
                    }
                }
            }
        };
        match eq_proto::write_response(&mut writer, &response) {
            Ok(()) => {}
            // A response too large for any reader to accept is a *request*
            // problem (result set bigger than the frame cap), not a dead
            // connection: report it as a typed error under the request's
            // id and keep serving.
            Err(eq_proto::ProtoError::Frame(eq_wire::frame::FrameError::Oversized {
                declared,
                max,
            })) => {
                let error = eq_proto::Response {
                    id: response.id,
                    body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
                        code: eq_proto::ErrorCode::BadRequest,
                        message: format!(
                            "response of {declared} bytes exceeds the {max}-byte frame cap; \
                             narrow the query or ingest in smaller batches"
                        ),
                    }),
                };
                eq_proto::write_response(&mut writer, &error)?;
            }
            Err(e) => return Err(e),
        }
        // Pipelining-aware flushing: when the next request of a batch is
        // already buffered, keep accumulating response frames and flush
        // once the burst is drained — a pipelined batch then pays a few
        // large writes instead of one syscall per response.  The check
        // runs strictly before the next (possibly blocking) read, so the
        // client always receives every response to what it has sent.
        if reader.buffer().is_empty() {
            writer.flush().map_err(|e| eq_proto::ProtoError::Frame(e.into()))?;
        }
    }
}

/// The answer every request gets once a mutating dispatch has panicked.
fn poisoned_response(id: u64) -> eq_proto::Response {
    eq_proto::Response {
        id,
        body: eq_proto::ResponseBody::Error(eq_proto::ErrorPayload {
            code: eq_proto::ErrorCode::Internal,
            message: "the server is poisoned by a panic during an earlier write; \
                      restart it (or recover from the durable tier)"
                .to_string(),
        }),
    }
}

/// Cap on the neighbour count a remote client may request: far above any
/// UI use, far below values whose `k + 1` arithmetic could overflow in
/// the engine.
const MAX_REMOTE_K: u64 = 1 << 20;

fn clamp_k(k: u64) -> usize {
    k.min(MAX_REMOTE_K) as usize
}

/// Structural validation of a patch decoded off the wire.  `decode_patch`
/// restores whatever band layout the bytes declare; the engine, however,
/// indexes the canonical layout unconditionally (12 Sentinel-2 rasters,
/// 2 polarisations, non-empty pixels), so a short band list from a
/// hostile client must be rejected *here* — reaching the engine with one
/// would panic the serving worker.
fn validate_wire_patch(patch: &Patch) -> Result<(), EarthQubeError> {
    let bad = |message: String| {
        EarthQubeError::BadRequest(format!("invalid patch {:?}: {message}", patch.meta.name))
    };
    if patch.s2_bands.len() != eq_bigearthnet::Band::COUNT {
        return Err(bad(format!(
            "expected {} Sentinel-2 bands, got {}",
            eq_bigearthnet::Band::COUNT,
            patch.s2_bands.len()
        )));
    }
    if patch.s1_bands.len() != 2 {
        return Err(bad(format!(
            "expected 2 Sentinel-1 polarisations, got {}",
            patch.s1_bands.len()
        )));
    }
    if let Some(empty) =
        patch.s2_bands.iter().chain(&patch.s1_bands).position(|b| b.pixels().is_empty())
    {
        return Err(bad(format!("raster {empty} has no pixels")));
    }
    // `Patch::render_rgb` (the ingest path) writes one output buffer sized
    // by B04 from the pixels of all three RGB bands, so their sizes must
    // agree.  (Other engine paths use per-band statistics only, and the
    // canonical per-resolution sizes are deliberately *not* required:
    // uniformly scaled-down archives are legitimate.)
    let rgb = [eq_bigearthnet::Band::B02, eq_bigearthnet::Band::B03, eq_bigearthnet::Band::B04];
    let sizes: Vec<usize> = rgb.iter().map(|&b| patch.band(b).size()).collect();
    if sizes[0] != sizes[2] || sizes[1] != sizes[2] {
        return Err(bad(format!("RGB band sizes {sizes:?} disagree")));
    }
    Ok(())
}

/// Executes one decoded request against the query server, mapping the
/// outcome (including errors) onto the response body.
fn dispatch(server: &QueryServer, request: eq_proto::Request) -> eq_proto::Response {
    use eq_proto::{RequestBody, ResponseBody};
    let search_outcome = |result: Result<SearchResponse, EarthQubeError>| match result {
        Ok(response) => ResponseBody::Search(response_to_payload(&response)),
        Err(e) => ResponseBody::Error(error_to_payload(&e)),
    };
    let body = match request.body {
        RequestBody::Ping => ResponseBody::Pong,
        RequestBody::Search(spec) => search_outcome(server.search(&spec_to_query(spec))),
        RequestBody::SimilarTo { name, k } => search_outcome(server.similar_to(&name, clamp_k(k))),
        RequestBody::SearchByNewExample { patch, k } => search_outcome(
            validate_wire_patch(&patch)
                .and_then(|()| server.search_by_new_example(&patch, clamp_k(k))),
        ),
        RequestBody::Ingest { patches } => {
            match patches
                .iter()
                .try_for_each(validate_wire_patch)
                .and_then(|()| server.ingest(&patches))
            {
                Ok(report) => ResponseBody::Ingest(report_to_payload(&report)),
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
        RequestBody::Feedback { text, category } => {
            match server.submit_feedback(&text, category.as_deref()) {
                Ok(id) => ResponseBody::Feedback { id },
                Err(e) => ResponseBody::Error(error_to_payload(&e)),
            }
        }
        RequestBody::Stats => ResponseBody::Stats(stats_to_payload(&server.stats())),
    };
    eq_proto::Response { id: request.id, body }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking EarthQube client over one reused TCP connection.
///
/// Every call mirrors a [`QueryServer`] entry point and returns the same
/// types — including the same [`EarthQubeError`] variants for server-side
/// failures, reconstructed from the wire.  Transport-level failures
/// surface as [`EarthQubeError::Net`].
///
/// For throughput, [`run_batch`](Self::run_batch) pipelines a whole
/// workload over the connection: all request frames are written before
/// any response is read, so the batch pays one round trip, not one per
/// request.
pub struct EqClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl std::fmt::Debug for EqClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EqClient").field("next_id", &self.next_id).finish_non_exhaustive()
    }
}

impl EqClient {
    /// Connects to a [`NetServer`].
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] if the connection cannot be
    /// established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, EarthQubeError> {
        let stream = TcpStream::connect(addr).map_err(|e| net_err("connecting", e))?;
        let _ = stream.set_nodelay(true);
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| net_err("cloning the connection", e))?);
        Ok(Self { stream, reader, next_id: 1 })
    }

    fn send(&mut self, body: eq_proto::RequestBody) -> Result<u64, EarthQubeError> {
        let id = self.next_id;
        self.next_id += 1;
        eq_proto::write_request(&mut self.stream, &eq_proto::Request { id, body })
            .map_err(|e| net_err("sending the request", e))?;
        Ok(id)
    }

    /// Like [`send`](Self::send), but for payloads produced by the
    /// borrowed encoders (`encode_ingest_request` & co.), which avoid
    /// cloning raster data into an owned request body.
    fn send_payload(&mut self, encode: impl FnOnce(u64) -> Vec<u8>) -> Result<u64, EarthQubeError> {
        let id = self.next_id;
        self.next_id += 1;
        eq_proto::write_request_payload(&mut self.stream, &encode(id))
            .map_err(|e| net_err("sending the request", e))?;
        Ok(id)
    }

    fn receive(&mut self, expected_id: u64) -> Result<eq_proto::ResponseBody, EarthQubeError> {
        let response = eq_proto::read_response(&mut self.reader)
            .map_err(|e| net_err("reading the response", e))?
            .ok_or_else(|| EarthQubeError::Net("the server closed the connection".to_string()))?;
        if response.id != expected_id {
            return Err(EarthQubeError::Net(format!(
                "response id {} does not match request id {expected_id}",
                response.id
            )));
        }
        Ok(response.body)
    }

    fn call(
        &mut self,
        body: eq_proto::RequestBody,
    ) -> Result<eq_proto::ResponseBody, EarthQubeError> {
        let id = self.send(body)?;
        self.receive(id)
    }

    fn expect_search(body: eq_proto::ResponseBody) -> Result<SearchResponse, EarthQubeError> {
        match body {
            eq_proto::ResponseBody::Search(payload) => Ok(payload_to_response(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!(
                "unexpected response kind {other:?} to a search request"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] on transport faults.
    pub fn ping(&mut self) -> Result<(), EarthQubeError> {
        match self.call(eq_proto::RequestBody::Ping)? {
            eq_proto::ResponseBody::Pong => Ok(()),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to ping"))),
        }
    }

    /// Remote counterpart of [`QueryServer::search`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn search(&mut self, query: &ImageQuery) -> Result<SearchResponse, EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::Search(query_to_spec(query)))?;
        Self::expect_search(body)
    }

    /// Remote counterpart of [`QueryServer::similar_to`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn similar_to(&mut self, name: &str, k: usize) -> Result<SearchResponse, EarthQubeError> {
        let body =
            self.call(eq_proto::RequestBody::SimilarTo { name: name.to_string(), k: k as u64 })?;
        Self::expect_search(body)
    }

    /// Remote counterpart of [`QueryServer::search_by_new_example`]: the
    /// patch is uploaded inside the request frame.
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn search_by_new_example(
        &mut self,
        patch: &Patch,
        k: usize,
    ) -> Result<SearchResponse, EarthQubeError> {
        // The borrowed encoder spares a deep copy of the raster data.
        let id =
            self.send_payload(|id| eq_proto::encode_new_example_request(id, patch, k as u64))?;
        Self::expect_search(self.receive(id)?)
    }

    /// Remote counterpart of [`QueryServer::ingest`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn ingest(&mut self, patches: &[Patch]) -> Result<IngestReport, EarthQubeError> {
        // The borrowed encoder spares a deep copy of every patch's rasters.
        let id = self.send_payload(|id| eq_proto::encode_ingest_request(id, patches))?;
        let body = self.receive(id)?;
        match body {
            eq_proto::ResponseBody::Ingest(payload) => Ok(payload_to_report(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to ingest"))),
        }
    }

    /// Remote counterpart of [`QueryServer::submit_feedback`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn submit_feedback(
        &mut self,
        text: &str,
        category: Option<&str>,
    ) -> Result<i64, EarthQubeError> {
        let body = self.call(eq_proto::RequestBody::Feedback {
            text: text.to_string(),
            category: category.map(str::to_string),
        })?;
        match body {
            eq_proto::ResponseBody::Feedback { id } => Ok(id),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to feedback"))),
        }
    }

    /// Remote counterpart of [`QueryServer::stats`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn stats(&mut self) -> Result<ServerStats, EarthQubeError> {
        match self.call(eq_proto::RequestBody::Stats)? {
            eq_proto::ResponseBody::Stats(payload) => Ok(payload_to_stats(payload)),
            eq_proto::ResponseBody::Error(e) => Err(payload_to_error(e)),
            other => Err(EarthQubeError::Net(format!("unexpected response {other:?} to stats"))),
        }
    }

    /// Executes one workload request remotely — the wire counterpart of
    /// [`QueryServer::execute`].
    ///
    /// # Errors
    /// Propagates the server-side error, or [`EarthQubeError::Net`].
    pub fn execute(&mut self, request: &QueryRequest) -> Result<SearchResponse, EarthQubeError> {
        let id = self.send_payload(|id| encode_workload_request(id, request))?;
        Self::expect_search(self.receive(id)?)
    }

    /// Executes a batch of workload requests **pipelined**: request frames
    /// are written by a scoped writer thread while this thread reads the
    /// responses, so the whole batch pays one network round trip instead
    /// of one per request.  Results come back in request order, with
    /// per-request server-side errors in their slots — the remote
    /// counterpart of [`QueryServer::run_workload`].
    ///
    /// Reading concurrently with writing (rather than writing everything
    /// first) keeps arbitrarily large batches deadlock-free: the client
    /// always drains responses, so the server never blocks forever on a
    /// full response direction while requests back up.
    ///
    /// # Errors
    /// A transport failure aborts the whole batch (per-request errors do
    /// not).
    pub fn run_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<Result<SearchResponse, EarthQubeError>>, EarthQubeError> {
        let first_id = self.next_id;
        self.next_id += requests.len() as u64;
        let mut writer = self
            .stream
            .try_clone()
            .map_err(|e| net_err("cloning the connection for the batch writer", e))?;
        std::thread::scope(|scope| {
            let sender = scope.spawn(move || -> Result<(), EarthQubeError> {
                for (i, request) in requests.iter().enumerate() {
                    let payload = encode_workload_request(first_id + i as u64, request);
                    if let Err(e) = eq_proto::write_request_payload(&mut writer, &payload) {
                        // The failure may be purely local (e.g. a payload
                        // over the frame cap, rejected before any byte hit
                        // the socket) with the connection itself healthy —
                        // the reader would then wait forever for a response
                        // that was never requested.  Kill the socket so the
                        // reader unblocks with an error.
                        let _ = writer.shutdown(Shutdown::Both);
                        return Err(net_err("sending a batched request", e));
                    }
                }
                Ok(())
            });
            let mut results = Vec::with_capacity(requests.len());
            let mut receive_error = None;
            for i in 0..requests.len() {
                match self.receive(first_id + i as u64) {
                    Ok(body) => results.push(Self::expect_search(body)),
                    Err(e) => {
                        // Abort the batch: shut the socket down so the
                        // writer thread (possibly blocked mid-write) fails
                        // fast and the join below cannot hang.  The
                        // connection is unusable after a transport error
                        // anyway.
                        let _ = self.stream.shutdown(Shutdown::Both);
                        receive_error = Some(e);
                        break;
                    }
                }
            }
            let sent = sender
                .join()
                .unwrap_or_else(|_| Err(EarthQubeError::Net("batch writer panicked".into())));
            // A writer failure is the root cause when both sides errored
            // (the reader's error is then just the induced socket
            // shutdown), so it takes precedence in the report.
            match (sent, receive_error) {
                (Err(e), _) => Err(e),
                (Ok(()), Some(e)) => Err(e),
                (Ok(()), None) => Ok(results),
            }
        })
    }
}

/// Encodes a [`QueryRequest`] as protocol payload bytes, borrowing the
/// request's data (no raster copies for `NewExample`).
fn encode_workload_request(id: u64, request: &QueryRequest) -> Vec<u8> {
    match request {
        QueryRequest::Metadata(query) => {
            eq_proto::Request { id, body: eq_proto::RequestBody::Search(query_to_spec(query)) }
                .encode()
        }
        QueryRequest::SimilarTo { name, k } => eq_proto::Request {
            id,
            body: eq_proto::RequestBody::SimilarTo { name: name.clone(), k: *k as u64 },
        }
        .encode(),
        QueryRequest::NewExample { patch, k } => {
            eq_proto::encode_new_example_request(id, patch, *k as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EarthQubeConfig;
    use crate::serve::ServeConfig;
    use eq_bigearthnet::{Archive, ArchiveGenerator, GeneratorConfig};

    fn served(n: usize, seed: u64) -> (NetServer, Arc<QueryServer>, Archive) {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
        let mut config = EarthQubeConfig::fast(seed);
        config.train_model = false;
        let server =
            Arc::new(QueryServer::build(&archive, config, ServeConfig::default()).unwrap());
        let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        (net, server, archive)
    }

    #[test]
    fn remote_calls_mirror_the_in_process_server() {
        let (net, server, archive) = served(24, 301);
        let mut client = EqClient::connect(net.local_addr()).unwrap();
        client.ping().unwrap();

        let query = ImageQuery::all();
        assert_eq!(client.search(&query).unwrap(), server.search(&query).unwrap());

        let name = &archive.patches()[2].meta.name;
        assert_eq!(client.similar_to(name, 5).unwrap(), server.similar_to(name, 5).unwrap());

        let external =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 999)).unwrap().generate_patch(0);
        assert_eq!(
            client.search_by_new_example(&external, 4).unwrap(),
            server.search_by_new_example(&external, 4).unwrap()
        );

        // Server-side errors come back as their original variants.
        assert!(matches!(client.similar_to("ghost", 3), Err(EarthQubeError::UnknownImage(_))));

        let id = client.submit_feedback("over the wire", Some("reaction")).unwrap();
        assert!(id >= 0);
        assert_eq!(server.list_feedback().unwrap().len(), 1);

        let stats = client.stats().unwrap();
        assert_eq!(stats, server.stats());
        net.shutdown();
    }

    #[test]
    fn remote_ingest_appends_to_the_live_archive() {
        let (net, server, _) = served(10, 302);
        let mut client = EqClient::connect(net.local_addr()).unwrap();
        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(3, 888)).unwrap().generate();
        let report = client.ingest(extra.patches()).unwrap();
        assert_eq!(report.metadata_docs, 3);
        assert_eq!(server.archive_size(), 13);
        // Duplicate ingest surfaces the server's BadRequest.
        assert!(matches!(client.ingest(&extra.patches()[..1]), Err(EarthQubeError::BadRequest(_))));
        net.shutdown();
    }

    #[test]
    fn pipelined_batch_matches_one_shot_execution() {
        let (net, server, archive) = served(20, 303);
        let mut requests: Vec<QueryRequest> = archive
            .patches()
            .iter()
            .take(6)
            .map(|p| QueryRequest::SimilarTo { name: p.meta.name.clone(), k: 4 })
            .collect();
        requests.push(QueryRequest::Metadata(ImageQuery::all()));
        requests.push(QueryRequest::SimilarTo { name: "ghost".into(), k: 2 });

        let mut client = EqClient::connect(net.local_addr()).unwrap();
        let batched = client.run_batch(&requests).unwrap();
        assert_eq!(batched.len(), requests.len());
        for (got, request) in batched.iter().zip(&requests) {
            match (got, server.execute(request)) {
                (Ok(a), Ok(b)) => assert_eq!(a, &b),
                (Err(a), Err(b)) => assert_eq!(a, &b),
                (a, b) => panic!("batched {a:?} disagrees with in-process {b:?}"),
            }
        }
        net.shutdown();
    }

    #[test]
    fn many_clients_are_served_concurrently() {
        let (net, _, archive) = served(16, 304);
        let addr = net.local_addr();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let names: Vec<String> =
                    archive.patches().iter().map(|p| p.meta.name.clone()).collect();
                scope.spawn(move || {
                    let mut client = EqClient::connect(addr).unwrap();
                    for i in 0..10usize {
                        let name = &names[(t * 7 + i) % names.len()];
                        client.similar_to(name, 3).unwrap();
                    }
                });
            }
        });
        net.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent_under_drop() {
        let (net, server, _) = served(8, 305);
        let addr = net.local_addr();
        let mut client = EqClient::connect(addr).unwrap();
        client.ping().unwrap();
        net.shutdown(); // joins acceptor and workers; kicks the client
        assert!(client.ping().is_err(), "a kicked client observes the close");
        assert!(EqClient::connect(addr).and_then(|mut c| c.ping()).is_err());
        // A second server on a fresh port serves the same QueryServer.
        let net2 = NetServer::bind(server, "127.0.0.1:0", 1).unwrap();
        let mut client2 = EqClient::connect(net2.local_addr()).unwrap();
        client2.ping().unwrap();
        drop(net2); // Drop performs the same shutdown
    }

    /// A structurally invalid patch (decodable bytes, non-canonical band
    /// layout) must be rejected with `BadRequest` — never reach the
    /// engine's unconditional band indexing — and the worker must keep
    /// serving.  Guards the panic-drain hole: one hostile frame per
    /// worker would otherwise kill the whole pool.
    #[test]
    fn malformed_patches_are_rejected_not_panicking() {
        let (net, server, _) = served(10, 306);
        let mut client = EqClient::connect(net.local_addr()).unwrap();

        let mut bad = ArchiveGenerator::new(GeneratorConfig::tiny(1, 1)).unwrap().generate_patch(0);
        bad.meta.name = "band_thief".into();
        bad.s2_bands.truncate(3); // the engine indexes all 12 unconditionally
        assert!(matches!(
            client.search_by_new_example(&bad, 3),
            Err(EarthQubeError::BadRequest(_))
        ));
        assert!(matches!(client.ingest(&[bad.clone()]), Err(EarthQubeError::BadRequest(_))));
        assert_eq!(server.archive_size(), 10, "the bad batch must not partially ingest");

        let mut empty = bad.clone();
        empty.s2_bands = vec![eq_bigearthnet::BandData::from_pixels(0, vec![]); 12];
        assert!(matches!(
            client.search_by_new_example(&empty, 3),
            Err(EarthQubeError::BadRequest(_))
        ));

        // Disagreeing RGB band sizes would overrun `render_rgb`'s output
        // buffer during ingest — must be rejected up front.
        let mut lopsided =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 2)).unwrap().generate_patch(0);
        lopsided.meta.name = "lopsided".into();
        lopsided.s2_bands[eq_bigearthnet::Band::B04.index()] =
            eq_bigearthnet::BandData::from_pixels(1, vec![7]);
        assert!(matches!(client.ingest(&[lopsided]), Err(EarthQubeError::BadRequest(_))));
        assert_eq!(server.archive_size(), 10);

        // A hostile neighbour count is clamped, not overflowed.
        let name = "ghost";
        assert!(matches!(
            client.similar_to(name, usize::MAX),
            Err(EarthQubeError::UnknownImage(_))
        ));

        // The same connection — hence the same pool worker — still serves.
        client.ping().unwrap();
        assert!(client.search(&ImageQuery::all()).is_ok());
        net.shutdown();
    }

    /// A batch whose request fails *locally* (payload over the frame cap,
    /// never sent) must error out, not hang: the reader would otherwise
    /// wait forever for a response to a request the writer never sent.
    #[test]
    fn run_batch_surfaces_local_send_failures_instead_of_hanging() {
        let (net, _, _) = served(6, 307);
        let mut client = EqClient::connect(net.local_addr()).unwrap();
        // One band of 5800² u16 pixels encodes past the 64 MiB frame cap.
        let mut huge =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 3)).unwrap().generate_patch(0);
        huge.s2_bands[0] = eq_bigearthnet::BandData::zeros(5800);
        let requests = vec![QueryRequest::NewExample { patch: Box::new(huge), k: 3 }];
        assert!(matches!(client.run_batch(&requests), Err(EarthQubeError::Net(_))));
        net.shutdown();
    }

    #[test]
    fn conversions_are_lossless_for_rich_queries() {
        use eq_bigearthnet::patch::{AcquisitionDate, Satellite, Season};
        use eq_bigearthnet::{Country, Label};
        use eq_geo::{BBox, GeoShape};
        let query = ImageQuery::all()
            .with_shape(GeoShape::Rect(BBox::new(-9.0, 37.0, -6.0, 42.0).unwrap()))
            .with_date_range(
                AcquisitionDate::new(2017, 6, 1).unwrap(),
                AcquisitionDate::new(2018, 5, 31).unwrap(),
            )
            .with_seasons(vec![Season::Summer])
            .with_countries(vec![Country::Portugal])
            .with_labels(LabelFilter::new(LabelOperator::Exactly, vec![Label::SeaAndOcean]));
        let mut with_satellites = query.clone();
        with_satellites.satellites = vec![Satellite::Sentinel1, Satellite::Sentinel2];
        for q in [query, with_satellites, ImageQuery::all()] {
            assert_eq!(spec_to_query(query_to_spec(&q)), q);
        }
    }
}
