//! The durable storage tier: snapshot and write-ahead-log formats.
//!
//! EarthQube in the paper serves a continuously growing archive; losing the
//! docstore, the CBIR index and the trained MiLaN codes on every restart
//! would mean re-ingesting and re-encoding from scratch.  This module
//! defines the two on-disk artefacts that prevent that (the public entry
//! points are [`QueryServer::checkpoint`], [`QueryServer::recover`] and
//! [`QueryServer::open`](crate::serve::QueryServer::open)):
//!
//! * **Snapshot** (`snapshot.eqs`) — a versioned, CRC-32-checksummed binary
//!   image of the whole serving state: engine + serve configuration, the
//!   trained MiLaN model, the document database, the per-image metadata and
//!   binary codes, and the sharded Hamming index (with its shard layout
//!   verbatim, so the flat/sharded search equivalence survives a restart).
//!
//!   ```text
//!   snapshot := "EQSNAP01" version:u16 body_len:u64 body crc32(body):u32
//!   body     := engine_config serve_config milan_model database
//!               images:u32 (patch_metadata code)*   (in dense-id order)
//!               sharded_index
//!   ```
//!
//! * **Write-ahead log** (`wal.eqw`) — an append-only record stream of
//!   every write applied after the snapshot.  Records are framed with a
//!   length and a per-record CRC-32, so a torn tail (the crash happened
//!   mid-`write`) is detected and cleanly discarded on recovery:
//!
//!   ```text
//!   wal      := "EQWAL001" generation:u32 record*
//!   record   := len:u32 crc32(payload):u32 payload[len]
//!   payload  := 1 patch_metadata code image_doc rendered_doc   (ingest)
//!             | 2 text:string category:u8 [string]             (feedback)
//!   ```
//!
//!   The `generation` field is the CRC-32 of the snapshot the log extends
//!   (see [`snapshot_generation`]); it is what makes checkpointing
//!   crash-atomic across the two files.  Appends are made durable with
//!   `fdatasync` (one per write-path lock section), and a published
//!   snapshot is `fsync`ed before its rename — `flush` alone would not
//!   survive a power loss.
//!
//! Recovery = decode snapshot, replay every intact WAL record of the
//! matching generation through the same apply path live ingest uses,
//! truncate the WAL to its last intact record.  Replaying is idempotent
//! from the snapshot base, so recovering a recovered directory yields the
//! same state again.
//!
//! [`QueryServer::checkpoint`]: crate::serve::QueryServer::checkpoint
//! [`QueryServer::recover`]: crate::serve::QueryServer::recover

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::Path;

use eq_bigearthnet::patch::PatchMetadata;
use eq_bigearthnet::wire::{decode_patch_metadata, encode_patch_metadata};
use eq_docstore::{wire, Database, Document};
use eq_hashindex::{BinaryCode, ShardedHashIndex};
use eq_milan::persist::{
    decode_config as decode_milan_config, encode_config as encode_milan_config,
};
use eq_milan::Milan;
use eq_wire::{crc32, Reader, WireError, Writer};

use crate::cbir::CbirConfig;
use crate::engine::EarthQubeConfig;
use crate::serve::ServeConfig;
use crate::EarthQubeError;

/// Snapshot file name inside a persistence directory.
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.eqs";
/// Write-ahead-log file name inside a persistence directory.
pub(crate) const WAL_FILE: &str = "wal.eqw";

const SNAPSHOT_MAGIC: &[u8; 8] = b"EQSNAP01";
const SNAPSHOT_VERSION: u16 = 1;
const WAL_MAGIC: &[u8; 8] = b"EQWAL001";
/// WAL header: magic plus the generation tag of the snapshot it extends.
const WAL_HEADER_LEN: u64 = 12;

/// The generation tag of a snapshot: its stored body CRC-32, i.e. the
/// file's trailing four bytes (no second full-buffer scan is needed — the
/// CRC was computed when the snapshot was encoded and is verified when it
/// is decoded).  The WAL header stores the tag of the snapshot it extends,
/// which makes checkpointing crash-atomic across the two files: if the
/// crash lands between publishing a new snapshot and resetting the WAL,
/// recovery sees a WAL tagged with the *old* generation and discards it —
/// correct, because the new snapshot already contains everything that log
/// held.
pub(crate) fn snapshot_generation(snapshot_bytes: &[u8]) -> u32 {
    snapshot_bytes.last_chunk::<4>().map_or(0, |tail| u32::from_le_bytes(*tail))
}

const RECORD_INGEST: u8 = 1;
const RECORD_FEEDBACK: u8 = 2;

/// Maps a wire-format error into the crate error type.
pub(crate) fn corrupt(e: WireError) -> EarthQubeError {
    EarthQubeError::Persist(format!("corrupt persistent state: {e}"))
}

/// Maps an I/O error into the crate error type.
pub(crate) fn io_error(context: &str, e: std::io::Error) -> EarthQubeError {
    EarthQubeError::Persist(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Shared field encoders
// ---------------------------------------------------------------------------
// The `PatchMetadata` codec lives in `eq_bigearthnet::wire` (it is shared
// with the `eq_proto` network protocol); the snapshot and WAL layouts
// import it so both byte formats stay identical by construction.

fn encode_engine_config(config: &EarthQubeConfig, w: &mut Writer) {
    encode_milan_config(&config.milan, w);
    w.u32(config.cbir.default_radius);
    w.u64(config.cbir.default_k as u64);
    w.u64(config.page_size as u64);
    w.bool(config.train_model);
}

fn decode_engine_config(r: &mut Reader<'_>) -> Result<EarthQubeConfig, WireError> {
    let milan = decode_milan_config(r)?;
    let cbir = CbirConfig { default_radius: r.u32()?, default_k: r.u64()? as usize };
    let page_size = r.u64()? as usize;
    let train_model = r.bool()?;
    Ok(EarthQubeConfig { milan, cbir, page_size, train_model })
}

fn encode_serve_config(serve: ServeConfig, w: &mut Writer) {
    w.u64(serve.shards as u64);
    w.u64(serve.cache_capacity as u64);
}

fn decode_serve_config(r: &mut Reader<'_>) -> Result<ServeConfig, WireError> {
    let shards = r.u64()? as usize;
    let cache_capacity = r.u64()? as usize;
    if shards == 0 {
        return Err(WireError::Corrupt("serve configuration with zero shards".into()));
    }
    Ok(ServeConfig { shards, cache_capacity })
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Everything a snapshot restores, decoded and validated.
pub(crate) struct SnapshotState {
    pub config: EarthQubeConfig,
    pub serve: ServeConfig,
    pub model: Milan,
    pub database: Database,
    /// Per-image metadata and binary code, in dense-id order.
    pub images: Vec<(PatchMetadata, BinaryCode)>,
    pub index: ShardedHashIndex,
}

/// Serializes the full serving state into snapshot bytes (header, body,
/// trailing CRC-32 over the body).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_snapshot(
    config: &EarthQubeConfig,
    serve: ServeConfig,
    model: &Milan,
    database: &Database,
    metadata: &[PatchMetadata],
    codes_in_id_order: &[&BinaryCode],
    index: &ShardedHashIndex,
) -> Vec<u8> {
    debug_assert_eq!(metadata.len(), codes_in_id_order.len());
    let mut body = Writer::new();
    encode_engine_config(config, &mut body);
    encode_serve_config(serve, &mut body);
    model.encode(&mut body);
    wire::encode_database(database, &mut body);
    body.seq_len(metadata.len());
    for (meta, code) in metadata.iter().zip(codes_in_id_order) {
        encode_patch_metadata(meta, &mut body);
        code.encode(&mut body);
    }
    index.encode(&mut body);
    let body = body.into_bytes();

    let mut out = Writer::with_capacity(body.len() + 32);
    out.raw(SNAPSHOT_MAGIC);
    out.u16(SNAPSHOT_VERSION);
    out.u64(body.len() as u64);
    out.raw(&body);
    out.u32(crc32(&body));
    out.into_bytes()
}

/// Decodes and validates snapshot bytes.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotState, EarthQubeError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(SNAPSHOT_MAGIC.len()).map_err(corrupt)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(EarthQubeError::Persist("not an EarthQube snapshot (bad magic)".into()));
    }
    let version = r.u16().map_err(corrupt)?;
    if version != SNAPSHOT_VERSION {
        return Err(EarthQubeError::Persist(format!(
            "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let body_len = r.u64().map_err(corrupt)?;
    // Compare in u64 (`body_len` is attacker-controlled; adding to it could
    // overflow) against the remaining bytes minus the trailing CRC.
    if r.remaining() < 4 || body_len != (r.remaining() - 4) as u64 {
        return Err(EarthQubeError::Persist(format!(
            "snapshot body length {body_len} disagrees with file size"
        )));
    }
    let body_len = body_len as usize;
    let body = r.take(body_len).map_err(corrupt)?;
    let stored_crc = r.u32().map_err(corrupt)?;
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(EarthQubeError::Persist(format!(
            "snapshot checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }

    let mut r = Reader::new(body);
    let config = decode_engine_config(&mut r).map_err(corrupt)?;
    let serve = decode_serve_config(&mut r).map_err(corrupt)?;
    let model = Milan::decode(&mut r).map_err(corrupt)?;
    let database = wire::decode_database(&mut r).map_err(corrupt)?;
    let n_images = r.seq_len(1).map_err(corrupt)?;
    let mut images = Vec::with_capacity(n_images);
    for i in 0..n_images {
        let meta = decode_patch_metadata(&mut r).map_err(corrupt)?;
        if meta.id.0 as usize != i {
            return Err(EarthQubeError::Persist(format!(
                "image {i} carries dense id {} (snapshot images must be id-ordered)",
                meta.id.0
            )));
        }
        let code = BinaryCode::decode(&mut r).map_err(corrupt)?;
        images.push((meta, code));
    }
    let index = ShardedHashIndex::decode(&mut r).map_err(corrupt)?;
    if !r.is_empty() {
        return Err(EarthQubeError::Persist(format!(
            "{} trailing bytes after the snapshot body",
            r.remaining()
        )));
    }
    if index.len() != images.len() {
        return Err(EarthQubeError::Persist(format!(
            "index holds {} items but the snapshot lists {} images",
            index.len(),
            images.len()
        )));
    }
    Ok(SnapshotState { config, serve, model, database, images, index })
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// One decoded WAL record.
pub(crate) enum WalRecord {
    /// A patch applied by [`QueryServer::ingest`](crate::serve::QueryServer::ingest):
    /// the dense-id-assigned metadata, the binary code, and the two
    /// pre-serialized documents.
    Ingest { meta: PatchMetadata, code: BinaryCode, image_doc: Document, rendered_doc: Document },
    /// A feedback comment stored through the write path.
    Feedback { text: String, category: Option<String> },
}

/// Encodes the payload of an ingest record.
pub(crate) fn encode_ingest_record(
    meta: &PatchMetadata,
    code: &BinaryCode,
    image_doc: &Document,
    rendered_doc: &Document,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(RECORD_INGEST);
    encode_patch_metadata(meta, &mut w);
    code.encode(&mut w);
    wire::encode_document(image_doc, &mut w);
    wire::encode_document(rendered_doc, &mut w);
    w.into_bytes()
}

/// Encodes the payload of a feedback record.
pub(crate) fn encode_feedback_record(text: &str, category: Option<&str>) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(RECORD_FEEDBACK);
    w.str(text);
    match category {
        Some(c) => {
            w.u8(1);
            w.str(c);
        }
        None => w.u8(0),
    }
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, WireError> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        RECORD_INGEST => WalRecord::Ingest {
            meta: decode_patch_metadata(&mut r)?,
            code: BinaryCode::decode(&mut r)?,
            image_doc: wire::decode_document(&mut r)?,
            rendered_doc: wire::decode_document(&mut r)?,
        },
        RECORD_FEEDBACK => {
            let text = r.str()?.to_string();
            let category = match r.u8()? {
                0 => None,
                1 => Some(r.str()?.to_string()),
                other => return Err(WireError::Corrupt(format!("invalid category flag {other}"))),
            };
            WalRecord::Feedback { text, category }
        }
        other => return Err(WireError::Corrupt(format!("unknown WAL record type {other}"))),
    };
    if !r.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes inside a WAL record",
            r.remaining()
        )));
    }
    Ok(record)
}

/// The outcome of scanning a WAL file against the recovered snapshot.
pub(crate) enum WalScan {
    /// No usable log: the file is missing, its header is torn, or its
    /// generation tag names a different snapshot (a crash landed between
    /// snapshot publication and WAL reset — the stale records are already
    /// contained in the newer snapshot).  Recovery starts a fresh log.
    Fresh,
    /// A log matching the snapshot generation: the intact records plus the
    /// byte offset of the end of the last intact record.
    Valid {
        /// Every fully-written record, front to back.
        records: Vec<WalRecord>,
        /// End offset of the last intact record (the torn-tail boundary).
        valid_len: u64,
    },
}

/// Reads a WAL file, validating its generation tag against the recovered
/// snapshot.  A torn or corrupt record tail — truncated length field,
/// short payload, CRC mismatch, undecodable payload — ends the scan
/// without an error: durability recovers exactly the records that were
/// fully written.
///
/// A present file with a wrong magic is an error (it is not an EarthQube
/// WAL at all); every crash-shaped state maps to [`WalScan::Fresh`].
pub(crate) fn read_wal(path: &Path, generation: u32) -> Result<WalScan, EarthQubeError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::Fresh),
        Err(e) => return Err(io_error("reading the write-ahead log", e)),
    };
    let magic_len = bytes.len().min(WAL_MAGIC.len());
    if bytes[..magic_len] != WAL_MAGIC[..magic_len] {
        return Err(EarthQubeError::Persist("not an EarthQube write-ahead log (bad magic)".into()));
    }
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        return Ok(WalScan::Fresh); // torn header: the crash hit WAL creation
    }
    // lint:allow(panic) infallible: the WAL_HEADER_LEN check above guarantees 12 header bytes
    let tag = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if tag != generation {
        return Ok(WalScan::Fresh); // stale log from before the last snapshot
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut valid_end = pos as u64;
    while bytes.len() - pos >= 8 {
        // lint:allow(panic) infallible: the loop condition guarantees 8 remaining bytes
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        // lint:allow(panic) infallible: the loop condition guarantees 8 remaining bytes
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // torn tail: the payload was never fully written
        };
        if crc32(payload) != stored_crc {
            break; // torn or bit-flipped tail
        }
        let Ok(record) = decode_record(payload) else {
            break; // CRC collides with corruption only astronomically rarely,
                   // but a framing bug must still fail safe
        };
        records.push(record);
        pos += 8 + len;
        valid_end = pos as u64;
    }
    Ok(WalScan::Valid { records, valid_len: valid_end })
}

/// The append handle of a live WAL.
pub(crate) struct WalWriter {
    file: File,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter").finish_non_exhaustive()
    }
}

/// Takes the advisory exclusive lock on the WAL file, failing fast if
/// another live server instance holds it.  Two writers appending framed
/// records at independent offsets would corrupt the log; the OS releases
/// the lock automatically when the holder's handle closes (including on a
/// crash), so a dead server never wedges its directory.
fn lock_exclusive(file: &File) -> Result<(), EarthQubeError> {
    file.try_lock().map_err(|e| {
        EarthQubeError::Persist(format!(
            "the write-ahead log is held by another live server instance \
             (drop it before recovering the same directory): {e}"
        ))
    })
}

impl WalWriter {
    /// Creates (or resets) a WAL file for the given snapshot generation,
    /// writing and syncing the header.  The file is locked *before* it is
    /// truncated, so a concurrent holder's log is never destroyed.
    pub(crate) fn create(path: &Path, generation: u32) -> Result<Self, EarthQubeError> {
        // Deliberately `truncate(false)`: the reset happens via `set_len`
        // *after* the lock is held, so a concurrent holder's log is never
        // destroyed by merely attempting to open it.
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_error("creating the write-ahead log", e))?;
        lock_exclusive(&file)?;
        file.set_len(0).map_err(|e| io_error("resetting the write-ahead log", e))?;
        file.write_all(WAL_MAGIC).map_err(|e| io_error("writing the WAL header", e))?;
        file.write_all(&generation.to_le_bytes())
            .map_err(|e| io_error("writing the WAL generation tag", e))?;
        file.sync_data().map_err(|e| io_error("syncing the WAL header", e))?;
        Ok(Self { file })
    }

    /// Opens an existing WAL for appending, first truncating it to
    /// `valid_len` bytes so a torn tail from a previous crash can never
    /// corrupt the framing of future records.  Locks before truncating,
    /// like [`create`](Self::create).
    pub(crate) fn open_truncated(path: &Path, valid_len: u64) -> Result<Self, EarthQubeError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_error("opening the write-ahead log", e))?;
        lock_exclusive(&file)?;
        file.set_len(valid_len).map_err(|e| io_error("truncating the WAL torn tail", e))?;
        file.sync_data().map_err(|e| io_error("syncing the WAL truncation", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_error("seeking the WAL end", e))?;
        Ok(Self { file })
    }

    /// Appends one framed record (length, CRC-32, payload).  The bytes are
    /// written but not yet synced — callers finish their lock section with
    /// one [`sync`](Self::sync), so a multi-patch ingest pays one disk
    /// flush, not one per patch.
    pub(crate) fn append(&mut self, payload: &[u8]) -> Result<(), EarthQubeError> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .map_err(|_| EarthQubeError::Persist("WAL record exceeds u32::MAX bytes".into()))?
                .to_le_bytes(),
        );
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame).map_err(|e| io_error("appending a WAL record", e))
    }

    /// Forces appended records to stable storage (`fdatasync`); `flush`
    /// alone is a no-op for [`File`] and would not survive a power loss.
    pub(crate) fn sync(&mut self) -> Result<(), EarthQubeError> {
        self.file.sync_data().map_err(|e| io_error("syncing the WAL", e))
    }
}

/// Opens `dir` and syncs it, making freshly created/renamed directory
/// entries (the published snapshot, the reset WAL) durable on filesystems
/// that require an explicit directory fsync.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), EarthQubeError> {
    let handle = File::open(dir).map_err(|e| io_error("opening the persistence directory", e))?;
    handle.sync_all().map_err(|e| io_error("syncing the persistence directory", e))
}
